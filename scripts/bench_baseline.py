#!/usr/bin/env python
"""Measure the perf baseline and write BENCH_BASELINE.json.

Records the wall-clock of the acceptance workload —
``fig12_heterogeneity(preset="bench", workload_name="cnn")`` — plus
microbenchmarks of the conv/pool kernels, alongside the frozen numbers
measured at the seed commit on the same class of machine.  Future PRs
rerun this script and compare against ``current`` to keep a perf
trajectory (regressions show up as a shrinking ``speedup_vs_seed``).

Usage::

    PYTHONPATH=src python scripts/bench_baseline.py [--output BENCH_BASELINE.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.harness.figures import fig12_heterogeneity
from repro.harness.parallel import default_jobs
from repro.ml.layers import Conv2D, MaxPool2D

#: Measured at the seed commit (46021bc) on the 1-CPU reference
#: container, sequential figures, float64 conv path with np.add.at
#: col2im recomputing im2col indices every call.
SEED_BASELINE = {
    "fig12_bench_cnn_seconds": 8.41,
    "conv_forward_us": 158.6,
    "conv_backward_us": 562.0,
    "maxpool_forward_us": 171.3,
    "maxpool_backward_us": 37.8,
}

# Bench-preset CNN first-block shapes, matching the profile hot spot.
CONV_SHAPE = dict(n=32, c=3, h=8, filters=4, k=3, pad=1)
POOL_SHAPE = dict(n=32, c=4, h=8, size=2)


def _time_us(fn, reps: int = 2000) -> float:
    fn()  # warm caches (index plans, BLAS init)
    start = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - start) / reps * 1e6


def conv_microbench() -> dict:
    rng = np.random.default_rng(0)
    s = CONV_SHAPE
    layer = Conv2D(s["c"], s["filters"], s["k"], rng, pad=s["pad"])
    layer.W.data = layer.W.data.astype(np.float32)
    layer.b.data = layer.b.data.astype(np.float32)
    layer.W.grad = np.zeros_like(layer.W.data)
    layer.b.grad = np.zeros_like(layer.b.data)
    x = rng.normal(size=(s["n"], s["c"], s["h"], s["h"])).astype(np.float32)
    out = layer.forward(x, training=True)
    dout = rng.normal(size=out.shape).astype(np.float32)
    forward_us = _time_us(lambda: layer.forward(x, training=True))
    backward_us = _time_us(lambda: layer.backward(dout))
    return {"conv_forward_us": forward_us, "conv_backward_us": backward_us}


def pool_microbench() -> dict:
    rng = np.random.default_rng(0)
    s = POOL_SHAPE
    layer = MaxPool2D(s["size"])
    x = rng.normal(size=(s["n"], s["c"], s["h"], s["h"])).astype(np.float32)
    out = layer.forward(x, training=True)
    dout = rng.normal(size=out.shape).astype(np.float32)
    forward_us = _time_us(lambda: layer.forward(x, training=True))
    backward_us = _time_us(lambda: layer.backward(dout))
    return {"maxpool_forward_us": forward_us, "maxpool_backward_us": backward_us}


def figure_bench() -> dict:
    start = time.perf_counter()
    result = fig12_heterogeneity(preset="bench", workload_name="cnn")
    elapsed = time.perf_counter() - start
    if not result.passed():
        raise SystemExit(
            f"fig12 shape checks failed: {result.failures()}"
        )
    return {"fig12_bench_cnn_seconds": round(elapsed, 3)}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_BASELINE.json"),
    )
    args = parser.parse_args(argv)

    current = {}
    current.update(figure_bench())
    current.update(conv_microbench())
    current.update(pool_microbench())
    current = {key: round(value, 2) for key, value in current.items()}

    report = {
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "default_jobs": default_jobs(),
        },
        "workload": "fig12_heterogeneity(preset='bench', workload_name='cnn')"
                    " + bench-preset conv/pool kernel shapes (float32)",
        "seed": SEED_BASELINE,
        "current": current,
        "speedup_vs_seed": {
            key: round(SEED_BASELINE[key] / value, 2)
            for key, value in current.items()
            if key in SEED_BASELINE and value > 0
        },
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
