#!/usr/bin/env python
"""Measure the perf baseline and update BENCH_BASELINE.json.

Records wall-clock numbers for the repository's standing perf
workloads:

* ``fig12_heterogeneity(preset="bench", workload_name="cnn")`` — the
  ML-heavy acceptance figure (min over ``--repeats`` runs),
* the ``fig24`` 64-worker hop scaling cell (svm/bench, 40 iterations,
  light tracing — min of 3),
* the bare-engine sim-core microbenchmark (events/sec, best of 3),
* the experiment-service load benchmark (4 concurrent HTTP clients
  against an in-process ``repro serve`` stack: a cold round computing
  every cell, then a warm round served entirely from the result
  cache),
* conv/pool kernel microbenchmarks (bench-preset shapes, float32),

alongside two frozen reference points: the seed commit (``seed``) and
the measurement taken immediately before PR 4's simulator-core
refactor (``pr4_pre_refactor``, same-machine alternating A/B).  Every
run *appends* a dated entry to the ``history`` list, so the perf
trajectory accumulates instead of being overwritten.

This container's CPU throughput oscillates between fast and slow
epochs (~1.5-2x over minutes); min-of-N per metric plus the recorded
alternating pre/post A/B keeps ratios meaningful.

Usage::

    PYTHONPATH=src python scripts/bench_baseline.py \
        [--output BENCH_BASELINE.json] [--repeats 2] [--label "..."]
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.graphs import ring_based
from repro.harness.figures import fig12_heterogeneity
from repro.harness.io import atomic_write_json
from repro.harness.parallel import default_jobs, default_shards
from repro.harness.profiling import (
    sharded_events_per_sec,
    sim_core_events_per_sec,
)
from repro.harness.spec import ExperimentSpec, run_spec
from repro.harness.workloads import svm_workload
from repro.ml.layers import Conv2D, MaxPool2D
from repro.protocols.base import LIGHT_TRACE

#: Measured at the seed commit (46021bc) on the 1-CPU reference
#: container, sequential figures, float64 conv path with np.add.at
#: col2im recomputing im2col indices every call.
SEED_BASELINE = {
    "fig12_bench_cnn_seconds": 8.41,
    "conv_forward_us": 158.6,
    "conv_backward_us": 562.0,
    "maxpool_forward_us": 171.3,
    "maxpool_backward_us": 37.8,
}

#: Measured at the start of PR 4 (commit 6986d1d, pre-refactor code) on
#: the same container via alternating pre/post A/B subprocess rounds
#: (min over rounds, warm process; fig24 cell without light tracing —
#: the feature did not exist yet).
PR4_PRE_REFACTOR = {
    "fig12_bench_cnn_seconds": 4.04,
    "fig24_hop64_seconds": 0.52,
    "sim_core_events_per_sec": 625_000,
}

# Bench-preset CNN first-block shapes, matching the profile hot spot.
CONV_SHAPE = dict(n=32, c=3, h=8, filters=4, k=3, pad=1)
POOL_SHAPE = dict(n=32, c=4, h=8, size=2)


def _time_us(fn, reps: int = 2000) -> float:
    fn()  # warm caches (index plans, BLAS init)
    start = time.perf_counter()
    for _ in range(reps):
        fn()
    return (time.perf_counter() - start) / reps * 1e6


def conv_microbench() -> dict:
    rng = np.random.default_rng(0)
    s = CONV_SHAPE
    layer = Conv2D(s["c"], s["filters"], s["k"], rng, pad=s["pad"])
    layer.W.data = layer.W.data.astype(np.float32)
    layer.b.data = layer.b.data.astype(np.float32)
    layer.W.grad = np.zeros_like(layer.W.data)
    layer.b.grad = np.zeros_like(layer.b.data)
    x = rng.normal(size=(s["n"], s["c"], s["h"], s["h"])).astype(np.float32)
    out = layer.forward(x, training=True)
    dout = rng.normal(size=out.shape).astype(np.float32)
    forward_us = _time_us(lambda: layer.forward(x, training=True))
    backward_us = _time_us(lambda: layer.backward(dout))
    return {"conv_forward_us": forward_us, "conv_backward_us": backward_us}


def pool_microbench() -> dict:
    rng = np.random.default_rng(0)
    s = POOL_SHAPE
    layer = MaxPool2D(s["size"])
    x = rng.normal(size=(s["n"], s["c"], s["h"], s["h"])).astype(np.float32)
    out = layer.forward(x, training=True)
    dout = rng.normal(size=out.shape).astype(np.float32)
    forward_us = _time_us(lambda: layer.forward(x, training=True))
    backward_us = _time_us(lambda: layer.backward(dout))
    return {"maxpool_forward_us": forward_us, "maxpool_backward_us": backward_us}


def figure_bench(repeats: int) -> dict:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        result = fig12_heterogeneity(preset="bench", workload_name="cnn")
        best = min(best, time.perf_counter() - start)
        if not result.passed():
            raise SystemExit(f"fig12 shape checks failed: {result.failures()}")
    return {"fig12_bench_cnn_seconds": round(best, 3)}


def fig25_bench() -> dict:
    """The fig25 churn study (the membership-plane acceptance number)."""
    from repro.harness.figures import fig25_churn

    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        result = fig25_churn(preset="bench", workload_name="svm")
        best = min(best, time.perf_counter() - start)
        if not result.passed():
            raise SystemExit(
                f"fig25 shape checks failed: {result.failures()}"
            )
    return {"fig25_bench_seconds": round(best, 3)}


def fig24_cell_bench() -> dict:
    """The fig24 64-worker hop cell (the scaling acceptance number)."""
    spec = ExperimentSpec(
        name="scale/hop/64",
        workload=svm_workload("bench"),
        topology=ring_based(64),
        protocol="hop",
        max_iter=40,
        seed=0,
        trace_channels=LIGHT_TRACE,
    )
    run_spec(spec)  # warm (index plans, imports)
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        run = run_spec(spec)
        best = min(best, time.perf_counter() - start)
    if any(c != 40 for c in run.iterations_completed):
        raise SystemExit("fig24 cell did not complete all iterations")
    return {"fig24_hop64_seconds": round(best, 3)}


def sim_core_bench() -> dict:
    return {"sim_core_events_per_sec": round(sim_core_events_per_sec())}


def _visible_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux
        return os.cpu_count() or 1


def sharded_bench(shards: int = 2) -> dict:
    """Sharded-engine events/sec, annotated with shard + CPU counts.

    Runs the windowed ticker workload at one shard (the honest
    baseline: same engine, same windows, no fabric) and at ``shards``.
    A multi-core speedup is asserted only when more than one CPU is
    actually visible to this process — on a single-core container the
    multi-shard number legitimately reports the coordination tax, and
    the recorded ``sharded_bench_visible_cpus`` tells readers which
    regime the row was measured in.
    """
    visible = _visible_cpus()
    single = sharded_events_per_sec(n_shards=1)
    multi = sharded_events_per_sec(n_shards=shards)
    if visible > 1 and multi <= single:
        raise SystemExit(
            f"sharded engine shows no speedup on {visible} visible "
            f"CPUs: {multi:,.0f}/s at {shards} shards vs "
            f"{single:,.0f}/s at 1"
        )
    return {
        "sharded_events_per_sec": round(multi),
        "sharded_1shard_events_per_sec": round(single),
        "sharded_bench_shards": shards,
        "sharded_bench_visible_cpus": visible,
    }


def service_load_bench() -> dict:
    """Concurrent-client load against an in-process experiment service.

    Four clients each submit a one-cell sweep over HTTP and wait for
    completion; the cold round computes every cell through the process
    pool, the warm round replays the identical sweeps and must be
    served entirely from the verified result cache.
    """
    import tempfile
    import threading

    from repro.service.client import ServiceClient
    from repro.service.server import ExperimentService, make_server

    specs = [
        {"workers": 4, "max_iter": 5, "seed": seed} for seed in range(4)
    ]
    with tempfile.TemporaryDirectory() as state:
        service = ExperimentService(state, pool_workers=2)
        httpd = make_server(service, port=0)
        server_thread = threading.Thread(
            target=httpd.serve_forever, daemon=True
        )
        server_thread.start()
        url = f"http://127.0.0.1:{httpd.server_address[1]}"

        def one_client(spec: dict) -> None:
            client = ServiceClient(url, timeout=60.0)
            ticket = client.submit([spec])
            client.wait_for_sweep(ticket["sweep_id"], timeout=300)

        def round_seconds() -> float:
            threads = [
                threading.Thread(target=one_client, args=(spec,))
                for spec in specs
            ]
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            return time.perf_counter() - start

        cold = round_seconds()
        warm = round_seconds()
        stats = service.stats()
        if stats["runs_computed"] != len(specs):
            raise SystemExit(
                "service warm round recomputed: "
                f"{stats['runs_computed']} runs for {len(specs)} specs"
            )
        httpd.shutdown()
        httpd.server_close()
        service.scheduler.shutdown(timeout=30)
    return {
        "service_cold_sweep_seconds": round(cold, 3),
        "service_warm_sweep_seconds": round(warm, 3),
    }


def _load_history(path: Path) -> list:
    """Existing history (synthesizing one entry from a legacy snapshot)."""
    if not path.exists():
        return []
    previous = json.loads(path.read_text())
    history = previous.get("history")
    if history is not None:
        return history
    # Legacy single-snapshot layout: preserve it as the first entry.
    return [
        {
            "date": "2026-07-01",
            "label": "PR 1-3 snapshot (legacy single-entry layout)",
            "current": previous.get("current", {}),
        }
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_BASELINE.json"),
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="fig12 timing runs (min is recorded)",
    )
    parser.add_argument(
        "--label", default="",
        help="history-entry label (e.g. the PR being measured)",
    )
    args = parser.parse_args(argv)
    output = Path(args.output)

    current = {}
    current.update(figure_bench(args.repeats))
    current.update(fig24_cell_bench())
    current.update(fig25_bench())
    current.update(sim_core_bench())
    current.update(sharded_bench())
    current.update(service_load_bench())
    current.update(conv_microbench())
    current.update(pool_microbench())
    current = {key: round(value, 2) for key, value in current.items()}

    history = _load_history(output)
    history.append(
        {
            "date": datetime.date.today().isoformat(),
            "label": args.label or "bench_baseline run",
            "current": current,
        }
    )

    def ratios(reference: dict, invert_keys=("sim_core_events_per_sec",)):
        out = {}
        for key, ref in reference.items():
            value = current.get(key)
            if not value or not ref:
                continue
            # Throughput metrics improve upward; times improve downward.
            out[key] = round(
                value / ref if key in invert_keys else ref / value, 2
            )
        return out

    report = {
        "machine": {
            "cpu_count": os.cpu_count(),
            "affinity_cpus": _visible_cpus(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "default_jobs": default_jobs(),
            "default_shards": default_shards(),
        },
        "workload": "fig12_heterogeneity(preset='bench', workload_name='cnn')"
                    " + fig24 hop/64 scaling cell (svm bench, 40 iters,"
                    " light trace) + sim-core events/sec"
                    " + sharded-engine events/sec (1 shard vs"
                    " sharded_bench_shards shards; speedup asserted only"
                    " when >1 CPU is visible)"
                    " + service load bench (4 concurrent HTTP clients,"
                    " cold compute round then warm cache round)"
                    " + bench-preset conv/pool kernel shapes (float32)",
        "methodology": "min-of-N per metric (N: fig12 --repeats, fig24 3,"
                       " sim-core 3); this container's CPU oscillates"
                       " ~1.5-2x between throughput epochs, so ratios"
                       " against the recorded pre-refactor numbers were"
                       " validated with alternating same-epoch A/B runs",
        "seed": SEED_BASELINE,
        "pr4_pre_refactor": PR4_PRE_REFACTOR,
        "current": current,
        "speedup_vs_seed": ratios(SEED_BASELINE),
        "speedup_vs_pre_refactor": ratios(PR4_PRE_REFACTOR),
        "history": history,
    }
    atomic_write_json(output, report)
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
