#!/usr/bin/env bash
# CI gate: tier-1 tests plus a quick benchmark smoke figure.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: unit/property tests =="
python -m pytest -x -q

echo "== bench smoke: fig21 (instant) + fig16 at smoke preset =="
python -m pytest -x -q benchmarks/test_fig21_spectral_gaps.py
python -m repro figures --preset smoke --only fig16

echo "CI OK"
