#!/usr/bin/env bash
# CI gate: tier-1 tests, a benchmark smoke figure, and the docs check.
# `ci.sh --protocols` additionally smoke-runs the protocol-comparison
# figure (Hop vs partial-allreduce vs momentum-tracking vs baselines).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: unit/property tests =="
python -m pytest -x -q

echo "== bench smoke: fig21 (instant) + fig16 at smoke preset =="
python -m pytest -x -q benchmarks/test_fig21_spectral_gaps.py
python -m repro figures --preset smoke --only fig16

echo "== docs: README / ARCHITECTURE code blocks =="
python scripts/check_docs.py

if [[ "${1:-}" == "--protocols" ]]; then
    echo "== protocols smoke: fig22 (hop vs partial-allreduce vs" \
         "momentum-tracking vs baselines) =="
    python -m repro figures --preset smoke --only fig22
    python -m repro ablations --preset smoke --only partial_groups
fi

echo "CI OK"
