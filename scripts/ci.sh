#!/usr/bin/env bash
# CI gate: the invariant lint, tier-1 tests (with coverage when
# available), benchmark smoke figures, the REPRO_SANITIZE smoke, and
# the docs check.
# `ci.sh --protocols` additionally smoke-runs the protocol-comparison
# figure (Hop vs partial-allreduce vs momentum-tracking vs baselines).
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# Recorded line-coverage floor for the tier-1 suite over src/repro
# (measured 94.8% at adoption; the stdlib gate is slightly conservative
# vs coverage.py).  Raise it as subsystems gain tests; never lower it
# to paper over debt.  CI=fast skips the coverage run (plain pytest).
COVERAGE_FLOOR=90

echo "== lint: simulator-invariant static analysis =="
# Determinism, zero-copy aliasing, DES perf and registry contracts
# (repro.analysis).  The checked-in baseline is empty, so any finding
# fails the gate outright.
python -m repro lint

echo "== tier-1: unit/property tests =="
if [[ "${CI:-}" == "fast" ]]; then
    echo "   (CI=fast: coverage gate skipped, floor on record:" \
         "${COVERAGE_FLOOR}%)"
    python -m pytest -x -q
elif python -c "import pytest_cov" 2>/dev/null; then
    echo "   (pytest-cov; floor ${COVERAGE_FLOOR}%)"
    python -m pytest -x -q --cov=repro --cov-report=term-missing:skip-covered \
        --cov-fail-under="${COVERAGE_FLOOR}"
else
    echo "   (pytest-cov not installed; using the stdlib settrace gate," \
         "floor ${COVERAGE_FLOOR}%)"
    python scripts/coverage_gate.py --floor "${COVERAGE_FLOOR}"
fi

echo "== bench smoke: fig21 (instant) + fig16 at smoke preset =="
python -m pytest -x -q benchmarks/test_fig21_spectral_gaps.py
python -m repro figures --preset smoke --only fig16

echo "== scaling smoke: fig24 smallest cells (8/16 workers) =="
python -m repro figures --preset smoke --only fig24

echo "== membership smoke: fig25 churn study + golden-stats drift check =="
# fig25 exercises the whole membership plane (leave/join/rewire across
# the elastic protocols); the conformance matrix then asserts every
# golden cell — the 90 pre-membership recordings AND the churn cells —
# bit-for-bit, so a membership change can never silently shift a
# static-run result.
python -m repro figures --preset smoke --only fig25
python -m pytest -x -q tests/scenarios/test_conformance_matrix.py

echo "== full-grid churn smoke: every protocol survives churn =="
# One pinned churn cell per protocol (families rotate so all three —
# scripted, Poisson, trace-replay — stay exercised): no deadlock, no
# stalled survivor.  The registry's elastic flags are the loop bound,
# so a protocol silently dropping its elastic=True breaks this gate.
python - <<'PY'
from repro.harness.golden import (
    ELASTIC_PROTOCOLS,
    MAX_ITER,
    churn_conformance_spec,
)
from repro.harness.spec import run_spec
from repro.protocols import registered_protocols

assert tuple(registered_protocols()) == tuple(sorted(ELASTIC_PROTOCOLS)), (
    "the full grid must stay elastic"
)
families = ("churn", "churn-poisson", "churn-trace")
for index, protocol in enumerate(ELASTIC_PROTOCOLS):
    family = families[index % len(families)]
    run = run_spec(churn_conformance_spec(protocol, family))
    leavers = {
        event["worker"]
        for event in run.membership_events
        if event["kind"] == "leave"
    }
    stalled = [
        worker
        for worker, completed in enumerate(run.iterations_completed)
        if completed != MAX_ITER and worker not in leavers
    ]
    assert not stalled, f"{protocol}/{family}: stalled {stalled}"
    print(
        f"{protocol:18s} x {family:13s} OK "
        f"(membership_events={len(run.membership_events)}, "
        f"dropped={run.messages_dropped})"
    )
print(f"full grid elastic: all {len(ELASTIC_PROTOCOLS)} protocols")
PY

echo "== compression smoke: fig26 ablation + compressed golden cells =="
# fig26 exercises the compression plane end-to-end (top-k/int8 error
# feedback, payload-accurate pricing on constrained links); the
# conformance run above already replayed the compressed golden cells
# bit-for-bit, so a compressor change can never silently shift a
# dense-run result either.
python -m repro figures --preset smoke --only fig26

echo "== sim-core microbenchmark: generous events/sec floor =="
# ~1.0M events/sec on the reference container after the PR 4 engine
# fast path (625k before it).  The 200k floor is ~5x headroom: it only
# trips on a real regression (an accidental O(n^2), a de-inlined hot
# loop), never on machine noise.
python - <<'PY'
from repro.harness.profiling import sim_core_events_per_sec

rate = sim_core_events_per_sec()
floor = 200_000
assert rate > floor, (
    f"sim-core regressed: {rate:,.0f} events/sec (floor {floor:,})"
)
print(f"sim-core OK: {rate:,.0f} events/sec (floor {floor:,})")
PY

echo "== sharded smoke: 2-shard golden cell bitwise + events/sec floor =="
# The sharded engine's headline contract: a 2-shard run of the golden
# hop/none conformance cell must be *bitwise* equal to the 1-shard run
# (same fingerprint dict, same final params), in the real
# process-per-shard mode.  Then the bare sharded engine must clear a
# generous events/sec floor — single-core containers pay a real
# coordination tax (parent-mediated lockstep rounds), so the floor is
# set ~5x under the measured single-core number and only trips on a
# real fabric regression.
python - <<'PY'
import numpy as np

from repro.harness.golden import conformance_spec, golden_fingerprint
from repro.harness.profiling import sharded_events_per_sec
from repro.harness.sharded import run_spec_sharded
from repro.harness.spec import run_spec

spec = conformance_spec("hop", "none")
base = run_spec(spec)
sharded = run_spec_sharded(spec, shards=2, processes=True)
assert golden_fingerprint(sharded) == golden_fingerprint(base), (
    "2-shard golden cell diverged from the 1-shard fingerprint"
)
assert np.array_equal(sharded.final_params, base.final_params), (
    "2-shard final parameters are not bitwise-equal"
)
print("sharded golden cell OK: 2 shards == 1 shard, bit-for-bit")

rate = sharded_events_per_sec(n_shards=2)
floor = 15_000
assert rate > floor, (
    f"sharded engine regressed: {rate:,.0f} events/sec (floor {floor:,})"
)
print(f"sharded engine OK: {rate:,.0f} events/sec (floor {floor:,})")
PY

echo "== sanitizer smoke: REPRO_SANITIZE=1 conformance cell =="
# The runtime half of the aliasing rules: parameter buffers are
# read-only outside set_params' sanctioned window, and one conformance
# cell must still match its golden fingerprint bit-for-bit.
REPRO_SANITIZE=1 python -m pytest -x -q tests/analysis/test_sanitizer.py

echo "== service smoke: serve/submit, golden-verified cache, drain =="
# The fault-tolerant experiment service end-to-end: a real `repro
# serve` subprocess computes the golden-pinned hop/none cell (asserted
# bit-for-bit against golden_stats.json), serves the second identical
# submit as a fingerprint-verified cache hit, and drains on SIGTERM
# with exit 0.  The chaos suite (tests/service/test_chaos.py, part of
# tier-1 above) covers kill -9 resume, cache corruption and worker
# crashes.
python scripts/service_smoke.py

echo "== docs: README / ARCHITECTURE code blocks =="
python scripts/check_docs.py

if [[ "${1:-}" == "--protocols" ]]; then
    echo "== protocols smoke: fig22 (hop vs partial-allreduce vs" \
         "momentum-tracking vs baselines) =="
    python -m repro figures --preset smoke --only fig22
    python -m repro ablations --preset smoke --only partial_groups
fi

if [[ "${1:-}" == "--scenarios" ]]; then
    echo "== scenarios smoke: fig23 (protocol x scenario-family grid) =="
    python -m repro figures --preset smoke --only fig23
fi

echo "CI OK"
