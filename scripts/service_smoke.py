#!/usr/bin/env python
"""CI smoke for the experiment service (``repro serve``).

Spawns a real server subprocess on an OS-assigned port, submits the
golden-pinned conformance spec twice, and asserts the contract:

1. the first submit computes and its fingerprint equals the recorded
   ``hop/none`` golden-stats cell bit-for-bit,
2. the second identical submit is served as a fingerprint-verified
   cache hit (zero recomputation),
3. SIGTERM drains the server cleanly (exit code 0).

Usage::

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: The service spelling of ``conformance_spec("hop", "none", seed=1)``
#: — the same cell ``tests/scenarios/golden_stats.json`` pins.
GOLDEN_SPEC = {
    "workload": "svm",
    "preset": "smoke",
    "graph": "ring_based",
    "workers": 4,
    "protocol": "hop",
    "max_iter": 5,
    "seed": 1,
}


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    from repro.service.client import ServiceClient
    from repro.service.specio import spec_hash

    golden = json.loads(
        (REPO / "tests" / "scenarios" / "golden_stats.json").read_text()
    )
    golden_cell = golden["cells"]["hop/none"]
    digest = spec_hash(GOLDEN_SPEC)

    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO / "src"), env.get("PYTHONPATH")) if p
    )
    with tempfile.TemporaryDirectory() as state_dir:
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--state-dir", state_dir,
                "--port", "0",
                "--pool-workers", "1",
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            match = re.search(r"listening on http://[\d.]+:(\d+)", line)
            assert match, f"no listen line: {line!r}"
            client = ServiceClient(
                f"http://127.0.0.1:{match.group(1)}", timeout=30.0
            )

            first = client.submit([GOLDEN_SPEC])
            snap = client.wait_for_sweep(first["sweep_id"], timeout=120)
            cell = snap["cells"][digest]
            assert cell["status"] == "done" and not cell["cache_hit"], cell
            entry = client.result(digest)
            assert entry["fingerprint"] == golden_cell, (
                "service run diverged from the golden hop/none cell:\n"
                f"  got   : {entry['fingerprint']}\n"
                f"  golden: {golden_cell}"
            )
            print(f"service smoke: computed {digest[:12]} == golden hop/none")

            second = client.submit([GOLDEN_SPEC])
            snap = client.wait_for_sweep(second["sweep_id"], timeout=60)
            cell = snap["cells"][digest]
            assert cell["cache_hit"] is True, cell
            stats = client.stats()
            assert stats["runs_computed"] == 1, stats
            print("service smoke: second submit was a verified cache hit")

            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=60)
            assert code == 0, f"drain exited {code}"
            print("service smoke: SIGTERM drained cleanly (exit 0)")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
    print("service smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
