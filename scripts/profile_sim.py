#!/usr/bin/env python
"""Profile the simulator's hot path (thin wrapper over ``repro profile``).

Runs one training configuration under cProfile, prints the hot-function
table plus real-time throughput, and finishes with the bare-engine
events/sec microbenchmark.  The same functionality is available as
``python -m repro profile``; this script exists so perf work has a
stable, greppable entry point next to the other perf tooling
(``bench_baseline.py``).

Usage::

    PYTHONPATH=src python scripts/profile_sim.py [repro profile args...]

    # e.g. the 64-worker scaling cell, sorted by own-time:
    PYTHONPATH=src python scripts/profile_sim.py --workers 64 --sort tottime
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["profile", *sys.argv[1:]]))
