#!/usr/bin/env python3
"""Docs check: the code in README.md and docs/ARCHITECTURE.md must run.

Two kinds of fenced code blocks are verified:

* ``python`` blocks are executed for real (they are written against the
  ``smoke`` preset, so the whole check stays fast).  A failure means
  the documented API drifted from the implementation.
* ``console`` blocks: every ``$ python -m repro ...`` line is passed
  through the real CLI argument parser (without executing the command),
  so documented flags that no longer exist fail the check.

Usage::

    PYTHONPATH=src python scripts/check_docs.py
"""

from __future__ import annotations

import re
import shlex
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOCS = [REPO / "README.md", REPO / "docs" / "ARCHITECTURE.md"]

FENCE = re.compile(r"^```(\w*)\s*$")


def extract_blocks(path: Path):
    """Yield ``(language, first_line_no, source)`` for fenced blocks."""
    language = None
    start = 0
    lines: list = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        match = FENCE.match(line)
        if match and language is None:
            language = match.group(1) or "text"
            start = lineno + 1
            lines = []
        elif line.strip() == "```" and language is not None:
            yield language, start, "\n".join(lines)
            language = None
        elif language is not None:
            lines.append(line)


def run_python_block(label: str, source: str) -> None:
    print(f"  exec {label}")
    namespace: dict = {"__name__": "__docs__"}
    exec(compile(source, label, "exec"), namespace)  # noqa: S102


def parse_console_block(label: str, source: str) -> None:
    from repro.cli import build_parser

    parser = build_parser()
    for line in source.splitlines():
        line = line.strip()
        if not line.startswith("$ python -m repro "):
            continue
        argv = shlex.split(line[len("$ python -m repro ") :], comments=True)
        print(f"  parse {label}: repro {' '.join(argv)}")
        parser.parse_args(argv)  # SystemExit on unknown flags


def main() -> int:
    failures = 0
    for doc in DOCS:
        print(f"== {doc.relative_to(REPO)} ==")
        for language, lineno, source in extract_blocks(doc):
            label = f"{doc.name}:{lineno}"
            try:
                if language == "python":
                    run_python_block(label, source)
                elif language == "console":
                    parse_console_block(label, source)
            except SystemExit as error:
                print(f"FAIL {label}: CLI rejected documented command "
                      f"({error})")
                failures += 1
            except Exception as error:  # noqa: BLE001
                print(f"FAIL {label}: {type(error).__name__}: {error}")
                failures += 1
    if failures:
        print(f"docs check FAILED ({failures} block(s))")
        return 1
    print("docs check OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
