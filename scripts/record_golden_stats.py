#!/usr/bin/env python
"""Record pinned-seed golden TrainingRun stats for the determinism gate.

Runs every registered protocol under every universal scenario family on
a small cluster (see :mod:`repro.harness.golden`) and writes the
exactly-comparable run stats (floats as IEEE-754 hex, parameter vectors
as SHA-256 of their raw bytes) to ``tests/scenarios/golden_stats.json``.

The recorded file is the bitwise-determinism contract for simulator
refactors: ``tests/scenarios/test_conformance_matrix.py`` replays every
cell and asserts equality, so a perf PR that changes event ordering or
floating-point accumulation order fails loudly instead of silently
shifting every figure.

Re-record (and review the diff!) only when a PR *intentionally* changes
simulation semantics::

    PYTHONPATH=src python scripts/record_golden_stats.py
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.harness.golden import (  # noqa: E402
    CHURN_CELLS,
    COMPRESSION_CELLS,
    ELASTIC_PROTOCOLS,
    churn_conformance_spec,
    compression_conformance_spec,
    conformance_spec,
    golden_fingerprint,
)
from repro.harness.io import atomic_write_json  # noqa: E402
from repro.harness.spec import run_spec  # noqa: E402
from repro.protocols import registered_protocols  # noqa: E402
from repro.scenarios import registered_scenarios  # noqa: E402


def _replayed_keys() -> set:
    keys = {
        f"{protocol}/{family}"
        for protocol in registered_protocols()
        for family in registered_scenarios(universal_only=True)
    }
    keys.update(
        f"{protocol}/{family}"
        for protocol in ELASTIC_PROTOCOLS
        for family in CHURN_CELLS
    )
    keys.update(
        f"{protocol}/compressed-{scheme}"
        for protocol in registered_protocols()
        for scheme in COMPRESSION_CELLS
    )
    return keys


def _check_cell(key, fingerprint, recorded, drifted) -> None:
    if recorded.get(key) != fingerprint:
        drifted.append(key)
        print(f"replayed {key}: MISMATCH")
    else:
        print(f"replayed {key}: ok")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(REPO / "tests" / "scenarios" / "golden_stats.json"),
    )
    parser.add_argument(
        "--only-missing",
        action="store_true",
        help="keep every cell already in the output file and record "
        "only cells it lacks (the additive mode for new protocols or "
        "families: existing recordings stay byte-identical)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="write nothing: replay every cell and fail (exit 1) unless "
        "each fingerprint is bitwise identical to the recorded file "
        "(the post-refactor drift check)",
    )
    args = parser.parse_args(argv)
    if args.check and args.only_missing:
        parser.error("--check and --only-missing are mutually exclusive")

    existing = {}
    if args.only_missing:
        existing = json.loads(Path(args.output).read_text())["cells"]

    if args.check:
        recorded = json.loads(Path(args.output).read_text())["cells"]
        drifted = []
        for protocol in registered_protocols():
            for family in registered_scenarios(universal_only=True):
                key = f"{protocol}/{family}"
                run = run_spec(conformance_spec(protocol, family))
                _check_cell(key, golden_fingerprint(run), recorded, drifted)
        for protocol in ELASTIC_PROTOCOLS:
            for family in sorted(CHURN_CELLS):
                key = f"{protocol}/{family}"
                run = run_spec(churn_conformance_spec(protocol, family))
                _check_cell(key, golden_fingerprint(run), recorded, drifted)
        for protocol in registered_protocols():
            for scheme in sorted(COMPRESSION_CELLS):
                key = f"{protocol}/compressed-{scheme}"
                run = run_spec(
                    compression_conformance_spec(protocol, scheme)
                )
                _check_cell(key, golden_fingerprint(run), recorded, drifted)
        replayed = (
            len(registered_protocols())
            * len(registered_scenarios(universal_only=True))
            + len(ELASTIC_PROTOCOLS) * len(CHURN_CELLS)
            + len(registered_protocols()) * len(COMPRESSION_CELLS)
        )
        missing = sorted(set(recorded) - _replayed_keys())
        if drifted or missing:
            for key in drifted:
                print(f"DRIFT: {key}")
            for key in missing:
                print(f"STALE RECORDING (no longer replayed): {key}")
            return 1
        print(
            f"{replayed} cells replayed, all bitwise identical to "
            f"{args.output}"
        )
        return 0

    cells = {}
    for protocol in registered_protocols():
        for family in registered_scenarios(universal_only=True):
            key = f"{protocol}/{family}"
            if key in existing:
                cells[key] = existing[key]
                continue
            run = run_spec(conformance_spec(protocol, family))
            cells[key] = golden_fingerprint(run)
            print(f"recorded {key}")
    # Churn cells: elastic protocols only (the membership-plane gate).
    for protocol in ELASTIC_PROTOCOLS:
        for family in sorted(CHURN_CELLS):
            key = f"{protocol}/{family}"
            if key in existing:
                cells[key] = existing[key]
                continue
            run = run_spec(churn_conformance_spec(protocol, family))
            cells[key] = golden_fingerprint(run)
            print(f"recorded {key}")
    # Compressed cells: the compression-plane gate (every protocol x
    # registered scheme, quiet scenario).
    for protocol in registered_protocols():
        for scheme in sorted(COMPRESSION_CELLS):
            key = f"{protocol}/compressed-{scheme}"
            if key in existing:
                cells[key] = existing[key]
                continue
            run = run_spec(compression_conformance_spec(protocol, scheme))
            cells[key] = golden_fingerprint(run)
            print(f"recorded {key}")

    payload = {
        "comment": (
            "Pinned-seed golden TrainingRun stats (floats as IEEE-754 "
            "hex). Regenerate with scripts/record_golden_stats.py only "
            "for intentional semantic changes."
        ),
        "cells": cells,
    }
    atomic_write_json(args.output, payload, indent=1)
    print(f"{len(cells)} cells -> {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
