#!/usr/bin/env python
"""Record pinned-seed golden TrainingRun stats for the determinism gate.

Runs every registered protocol under every universal scenario family on
a small cluster (see :mod:`repro.harness.golden`) and writes the
exactly-comparable run stats (floats as IEEE-754 hex, parameter vectors
as SHA-256 of their raw bytes) to ``tests/scenarios/golden_stats.json``.

The recorded file is the bitwise-determinism contract for simulator
refactors: ``tests/scenarios/test_conformance_matrix.py`` replays every
cell and asserts equality, so a perf PR that changes event ordering or
floating-point accumulation order fails loudly instead of silently
shifting every figure.

Re-record (and review the diff!) only when a PR *intentionally* changes
simulation semantics::

    PYTHONPATH=src python scripts/record_golden_stats.py
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.harness.golden import (  # noqa: E402
    CHURN_CELLS,
    ELASTIC_PROTOCOLS,
    churn_conformance_spec,
    conformance_spec,
    golden_fingerprint,
)
from repro.harness.spec import run_spec  # noqa: E402
from repro.protocols import registered_protocols  # noqa: E402
from repro.scenarios import registered_scenarios  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        default=str(REPO / "tests" / "scenarios" / "golden_stats.json"),
    )
    parser.add_argument(
        "--only-missing",
        action="store_true",
        help="keep every cell already in the output file and record "
        "only cells it lacks (the additive mode for new protocols or "
        "families: existing recordings stay byte-identical)",
    )
    args = parser.parse_args(argv)

    existing = {}
    if args.only_missing:
        existing = json.loads(Path(args.output).read_text())["cells"]

    cells = {}
    for protocol in registered_protocols():
        for family in registered_scenarios(universal_only=True):
            key = f"{protocol}/{family}"
            if key in existing:
                cells[key] = existing[key]
                continue
            run = run_spec(conformance_spec(protocol, family))
            cells[key] = golden_fingerprint(run)
            print(f"recorded {key}")
    # Churn cells: elastic protocols only (the membership-plane gate).
    for protocol in ELASTIC_PROTOCOLS:
        for family in sorted(CHURN_CELLS):
            key = f"{protocol}/{family}"
            if key in existing:
                cells[key] = existing[key]
                continue
            run = run_spec(churn_conformance_spec(protocol, family))
            cells[key] = golden_fingerprint(run)
            print(f"recorded {key}")

    payload = {
        "comment": (
            "Pinned-seed golden TrainingRun stats (floats as IEEE-754 "
            "hex). Regenerate with scripts/record_golden_stats.py only "
            "for intentional semantic changes."
        ),
        "cells": cells,
    }
    Path(args.output).write_text(json.dumps(payload, indent=1) + "\n")
    print(f"{len(cells)} cells -> {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
