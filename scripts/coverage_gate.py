#!/usr/bin/env python3
"""Line-coverage gate for the tier-1 suite, stdlib-only.

``scripts/ci.sh`` prefers ``pytest --cov=repro`` when pytest-cov is
installed; this script is the fallback so the recorded coverage floor
is *enforced* either way, not just written down.  It installs a
``sys.settrace`` collector scoped to ``src/repro`` (non-repro frames
opt out of line tracing, keeping the overhead tolerable), runs pytest
in-process, then compares executed lines against each module's
executable lines (derived from ``code.co_lines()`` over the compiled
module).

The measurement is slightly conservative versus coverage.py — e.g.
docstring lines count as executable — so treat the floor as calibrated
*for this tool*.

Usage::

    PYTHONPATH=src python scripts/coverage_gate.py --floor 80 [pytest args]
"""

from __future__ import annotations

import argparse
import sys
import threading
from collections import defaultdict
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"


def executable_lines(path: Path) -> set:
    """All line numbers the compiler can attribute code to."""
    lines: set = set()
    try:
        code = compile(path.read_text(), str(path), "exec")
    except SyntaxError:  # pragma: no cover - repo must always compile
        return lines
    stack = [code]
    while stack:
        obj = stack.pop()
        for _, _, line in obj.co_lines():
            if line is not None:
                lines.add(line)
        stack.extend(
            const for const in obj.co_consts if hasattr(const, "co_lines")
        )
    return lines


class Collector:
    """settrace hook recording executed lines of src/repro files."""

    def __init__(self) -> None:
        self.hits = defaultdict(set)
        self._prefix = str(SRC)

    def _local(self, frame, event, arg):
        if event == "line":
            self.hits[frame.f_code.co_filename].add(frame.f_lineno)
        return self._local

    def global_trace(self, frame, event, arg):
        if event == "call" and frame.f_code.co_filename.startswith(
            self._prefix
        ):
            return self._local
        return None

    def install(self) -> None:
        sys.settrace(self.global_trace)
        threading.settrace(self.global_trace)

    def uninstall(self) -> None:
        sys.settrace(None)
        threading.settrace(None)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--floor", type=float, required=True,
        help="minimum total line coverage percent",
    )
    parser.add_argument(
        "pytest_args", nargs="*", default=[],
        help="extra arguments forwarded to pytest",
    )
    args = parser.parse_args()

    import pytest

    collector = Collector()
    collector.install()
    try:
        exit_code = pytest.main(["-x", "-q", *args.pytest_args])
    finally:
        collector.uninstall()
    if exit_code != 0:
        print(f"coverage gate: tests failed (exit {exit_code})")
        return int(exit_code)

    total_executable = total_hit = 0
    rows = []
    for path in sorted(SRC.rglob("*.py")):
        possible = executable_lines(path)
        if not possible:
            continue
        hit = collector.hits.get(str(path), set()) & possible
        total_executable += len(possible)
        total_hit += len(hit)
        rows.append(
            (
                str(path.relative_to(REPO / "src")),
                len(hit),
                len(possible),
            )
        )

    print()
    print("coverage (stdlib settrace gate; conservative vs coverage.py):")
    for name, hit, possible in rows:
        percent = 100.0 * hit / possible
        marker = "  " if percent >= args.floor else "! "
        print(f"  {marker}{name:<45} {hit:>5}/{possible:<5} {percent:5.1f}%")
    total = 100.0 * total_hit / max(total_executable, 1)
    print(
        f"TOTAL: {total_hit}/{total_executable} lines = {total:.1f}% "
        f"(floor {args.floor:.0f}%)"
    )
    if total < args.floor:
        print("coverage gate FAILED")
        return 1
    print("coverage gate OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
