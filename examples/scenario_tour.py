#!/usr/bin/env python3
"""Scenario tour: the scenario engine end to end.

Walks the scenario registry's main tricks on one Hop deployment:

1. sweep the slowdown families (random, bursty Markov stragglers,
   tiered hardware, diurnal interference) and compare degradation,
2. inject a crash-restart fault and read the recovery lifecycle out of
   the run's stats (Section 3.4's "accidental node crashes"),
3. record a bursty run's slowdown factors to a JSON trace and replay
   them bit-exactly — trace-driven heterogeneity for regression work.

Usage::

    python examples/scenario_tour.py [--preset smoke|bench|paper]
"""

import argparse
import tempfile
from pathlib import Path

from repro.core.config import backup_config
from repro.graphs import ring_based
from repro.harness import (
    ExperimentSpec,
    render_table,
    run_spec,
    svm_workload,
)
from repro.scenarios import (
    MarkovSlowdown,
    ScenarioSpec,
    record_run_factors,
    registered_scenarios,
)
from repro.sim import RngStreams


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--preset", default="smoke", choices=("smoke", "bench", "paper")
    )
    args = parser.parse_args()

    workload = svm_workload(args.preset)
    n = 8 if args.preset == "smoke" else 16
    iters = {"smoke": 16, "bench": 40, "paper": 120}[args.preset]
    base = ExperimentSpec(
        name="tour",
        workload=workload,
        topology=ring_based(n),
        protocol="hop",
        config=backup_config(n_backup=1, max_ig=4),
        max_iter=iters,
        seed=0,
    )

    print("registered scenario families:", ", ".join(registered_scenarios()))
    print()

    # 1. Slowdown-family sweep -----------------------------------------
    rows = []
    clean_wall = None
    for family in ("none", "random", "bursty", "tiered", "diurnal"):
        run = run_spec(base.with_(scenario=ScenarioSpec(family)))
        if family == "none":
            clean_wall = run.wall_time
        rows.append(
            {
                "scenario": family,
                "wall_time": run.wall_time,
                "degradation": run.wall_time / clean_wall,
                "final_loss": run.final_loss,
            }
        )
    print("Scenario sweep (hop/backup):")
    print(render_table(rows))
    print()

    # 2. Crash-restart fault injection ---------------------------------
    crash = base.with_(
        scenario=ScenarioSpec(
            "crash-restart",
            {"worker": 2, "at": iters // 3, "downtime_iters": 6.0},
        )
    )
    run = run_spec(crash)
    print("Crash-restart lifecycle (worker 2 goes dark, then re-syncs):")
    for event in run.fault_events:
        print(
            f"  t={event['time']:.2f}s  {event['kind']:<10} "
            f"worker {event['worker']} (iteration {event['iteration']})"
        )
    print(
        f"  all workers completed {min(run.iterations_completed)}/"
        f"{iters} iterations; max gap {run.gap.max_observed():g}"
    )
    print()

    # 3. Trace record -> replay ----------------------------------------
    bursty = MarkovSlowdown(RngStreams(0).spawn("slowdown"), factor=6.0)
    trace = record_run_factors(bursty, n_workers=n, max_iter=iters)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bursty-trace.json"
        trace.save(path)
        replayed = run_spec(
            base.with_(scenario=ScenarioSpec("trace", {"path": str(path)}))
        )
    print(
        "Trace replay: recorded the bursty factors to JSON and replayed "
        "them bit-exactly."
    )
    print(
        f"  replay wall_time={replayed.wall_time:.3f}s "
        f"final_loss={replayed.final_loss:.4f}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
