#!/usr/bin/env python3
"""A guided tour of the paper's iteration-gap theory (Theorems 1 & 2).

The paper's analytical core is that decentralized workers drift apart
in iteration space, and how far is governed by graph structure and the
synchronization mechanism. This example makes the theory tangible:

1. prints Table 1's bounds for a concrete graph,
2. runs each protocol setting with a straggler and compares the
   *observed* maximum gaps against the bounds,
3. demonstrates the crash blast-radius corollary: when a worker dies,
   its neighbors advance exactly ``max_ig`` more iterations.

Usage::

    python examples/gap_theory_tour.py
"""

import numpy as np

from repro.core import (
    HopCluster,
    HopConfig,
    STANDARD,
    backup_config,
    gap_bound_matrix,
    staleness_config,
)
from repro.graphs import chain, ring_based
from repro.harness import (
    ExperimentSpec,
    deterministic_straggler,
    render_table,
    run_spec,
    svm_workload,
)
from repro.hetero import ComputeModel
from repro.ml import build_svm, synthetic_webspam
from repro.ml.optim import SGD


def part1_table1_bounds() -> None:
    print("== Part 1: Table 1's bounds on a chain of 5 workers ==\n")
    topology = chain(5)
    interesting_pair = (4, 0)  # the two endpoints
    rows = []
    for setting, kwargs in (
        ("standard", {}),
        ("notify_ack", {}),
        ("standard+tokens", {"max_ig": 2}),
        ("backup+tokens", {"max_ig": 3}),
        ("staleness+tokens", {"max_ig": 4, "staleness": 2}),
    ):
        bounds = gap_bound_matrix(topology, setting, **kwargs)
        i, j = interesting_pair
        rows.append(
            {
                "setting": setting,
                "bound Iter(4)-Iter(0)": bounds[i, j],
                "max bound any pair": float(
                    np.max(bounds[np.isfinite(bounds)])
                ),
            }
        )
    print(render_table(rows))
    print()


def part2_observed_vs_theory() -> None:
    print("== Part 2: observed gaps vs theory (6x straggler at worker 0) ==\n")
    workload = svm_workload("smoke")
    topology = chain(5)
    settings = {
        "standard (no tokens)": (HopConfig(use_token_queues=False), "hop",
                                 ("standard", {})),
        "standard+tokens(2)": (HopConfig(max_ig=2), "hop",
                               ("standard+tokens", {"max_ig": 2})),
        "notify_ack": (STANDARD, "notify_ack", ("notify_ack", {})),
        "backup+tokens(3)": (backup_config(1, 3), "hop",
                             ("backup+tokens", {"max_ig": 3})),
        "staleness+tokens(2,4)": (
            staleness_config(2, 4),
            "hop",
            ("staleness+tokens", {"max_ig": 4, "staleness": 2}),
        ),
    }
    rows = []
    for label, (config, protocol, (setting, kwargs)) in settings.items():
        run = run_spec(
            ExperimentSpec(
                label,
                workload,
                topology,
                protocol=protocol,
                config=config,
                slowdown=deterministic_straggler(0, 6.0),
                max_iter=24,
                seed=0,
            )
        )
        bounds = gap_bound_matrix(topology, setting, **kwargs)
        finite = bounds[np.isfinite(bounds)]
        rows.append(
            {
                "setting": label,
                "observed_max_gap": run.gap.max_observed(),
                "theory_max": float(finite.max()),
                "violations": len(run.gap.violations(bounds)),
            }
        )
    print(render_table(rows))
    print("\nEvery observed gap is within its bound; looser settings")
    print("visibly exploit their slack to outrun the straggler.\n")


def part3_crash_blast_radius() -> None:
    print("== Part 3: crash blast radius == \n")
    max_ig, crash_at = 3, 5
    n = 6
    dataset = synthetic_webspam(
        np.random.default_rng(0), n_train=256, n_test=64, n_features=16
    )
    cluster = HopCluster(
        topology=ring_based(n),
        config=backup_config(n_backup=1, max_ig=max_ig),
        model_factory=lambda rng: build_svm(rng, 16),
        dataset=dataset,
        optimizer=SGD(lr=0.5, momentum=0.9),
        compute_model=ComputeModel(base_time=0.05, n_workers=n),
        max_iter=50,
        seed=0,
        crash_at={0: crash_at},
    )
    run = cluster.run()
    print(f"worker 0 crashed at iteration {crash_at}; max_ig = {max_ig}")
    print(f"iterations completed per worker: {run.iterations_completed}")
    print(
        f"neighbors stopped at exactly crash + max_ig = {crash_at + max_ig} "
        "(Theorem 2's containment guarantee)"
    )


def main() -> None:
    part1_table1_bounds()
    part2_observed_vs_theory()
    part3_crash_blast_radius()


if __name__ == "__main__":
    main()
