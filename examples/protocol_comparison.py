#!/usr/bin/env python3
"""Protocol shoot-out: every protocol in the registry, head to head.

Runs the SVM workload under identical conditions on:

* Hop (standard, and backup-worker variants),
* NOTIFY-ACK (the serial + ACK-gated protocol Hop improves on),
* a BSP parameter server (with its NIC hotspot),
* an async parameter server and SSP,
* synchronous ring all-reduce,
* AD-PSGD (bipartite asynchronous gossip),
* Prague-style partial all-reduce (randomized conflict-free groups,
  arXiv:1909.08029) plus its static-group ablation,
* momentum-tracking gossip (arXiv:2209.15505) and its quasi-global
  momentum variant (arXiv:2102.04761),

in both a homogeneous cluster and one with the paper's 6x random
slowdown, and prints the full comparison table.

Usage::

    python examples/protocol_comparison.py [--preset smoke|bench|paper]
"""

import argparse

from repro.core.config import STANDARD, backup_config
from repro.graphs import bipartite_ring, ring_based
from repro.harness import (
    RANDOM_6X,
    ExperimentSpec,
    SlowdownSpec,
    render_table,
    run_spec,
    svm_workload,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--preset", default="smoke", choices=("smoke", "bench", "paper")
    )
    args = parser.parse_args()

    workload = svm_workload(args.preset)
    n = 16 if args.preset != "smoke" else 8
    iters = {"smoke": 20, "bench": 40, "paper": 120}[args.preset]
    topology = ring_based(n)

    contenders = [
        ("hop/standard", dict(protocol="hop", config=STANDARD)),
        (
            "hop/backup(1)",
            dict(protocol="hop", config=backup_config(n_backup=1, max_ig=4)),
        ),
        ("notify_ack", dict(protocol="notify_ack")),
        ("ps-bsp", dict(protocol="ps-bsp")),
        ("ps-async", dict(protocol="ps-async")),
        ("ps-ssp(3)", dict(protocol="ps-ssp", ps_staleness=3)),
        ("allreduce", dict(protocol="allreduce")),
        (
            "adpsgd",
            dict(protocol="adpsgd", topology_override=bipartite_ring(n)),
        ),
        ("partial-allreduce", dict(protocol="partial-allreduce")),
        (
            "partial-allreduce/static",
            dict(protocol="partial-allreduce", static_groups=True),
        ),
        (
            "momentum-tracking",
            dict(
                protocol="momentum-tracking",
                topology_override=bipartite_ring(n),
            ),
        ),
        (
            "momentum-tracking/qg",
            dict(
                protocol="momentum-tracking",
                momentum_mode="quasi-global",
                topology_override=bipartite_ring(n),
            ),
        ),
    ]

    for env_label, slowdown in (
        ("homogeneous", SlowdownSpec()),
        ("random 6x slowdown", RANDOM_6X),
    ):
        rows = []
        for label, options in contenders:
            options = dict(options)
            topo = options.pop("topology_override", topology)
            spec = ExperimentSpec(
                name=label,
                workload=workload,
                topology=topo,
                slowdown=slowdown,
                max_iter=iters,
                seed=5,
                **options,
            )
            run = run_spec(spec)
            rows.append(
                {
                    "protocol": label,
                    "wall_time": run.wall_time,
                    "iter_rate": run.iteration_rate(),
                    "time_to_target": run.time_to_loss(workload.target_loss),
                    "final_loss": run.final_loss,
                    "accuracy": run.final_accuracy,
                    "max_gap": run.gap.max_observed(),
                }
            )
            print(f"  done: {label} ({env_label})")
        rows.sort(key=lambda row: row["wall_time"])
        print()
        print(render_table(rows, title=f"== {env_label} =="))
        print()


if __name__ == "__main__":
    main()
