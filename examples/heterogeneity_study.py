#!/usr/bin/env python3
"""Heterogeneity study: how each Hop mechanism handles each slowdown.

Sweeps the paper's two heterogeneity recipes (random 6x, deterministic
4x straggler) across four protocol variants (standard, backup workers,
bounded staleness, backup + skipping) on the CNN workload, and prints a
matrix of wall-clock times, iteration rates and loss curves.

This is the scenario the paper's introduction motivates: you have a
cluster where machines intermittently slow down (resource sharing) or
one machine is persistently slower (older hardware), and you need to
pick a protocol.

Usage::

    python examples/heterogeneity_study.py [--preset smoke|bench|paper]
"""

import argparse

from repro.core.config import STANDARD, SkipConfig, backup_config, staleness_config
from repro.graphs import ring_based
from repro.harness import (
    RANDOM_6X,
    ExperimentSpec,
    SlowdownSpec,
    binned_loss_curve,
    cnn_workload,
    deterministic_straggler,
    render_series_table,
    render_table,
    run_spec,
)


CONFIGS = {
    "standard": STANDARD,
    "backup(1)": backup_config(n_backup=1, max_ig=4),
    "staleness(5)": staleness_config(staleness=5, max_ig=8),
    "backup+skip(10)": backup_config(
        n_backup=1, max_ig=5, skip=SkipConfig(max_skip=10, trigger_lag=2)
    ),
}

SLOWDOWNS = {
    "none": SlowdownSpec(),
    "random 6x": RANDOM_6X,
    "straggler 4x": deterministic_straggler(worker=0, factor=4.0),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--preset", default="smoke", choices=("smoke", "bench", "paper")
    )
    args = parser.parse_args()

    workload = cnn_workload(args.preset)
    n = 16 if args.preset != "smoke" else 8
    iters = {"smoke": 20, "bench": 40, "paper": 120}[args.preset]
    topology = ring_based(n)

    rows = []
    curves = {}
    for slow_label, slowdown in SLOWDOWNS.items():
        for config_label, config in CONFIGS.items():
            spec = ExperimentSpec(
                name=f"{config_label}/{slow_label}",
                workload=workload,
                topology=topology,
                config=config,
                slowdown=slowdown,
                max_iter=iters,
                seed=11,
            )
            run = run_spec(spec)
            rows.append(
                {
                    "slowdown": slow_label,
                    "config": config_label,
                    "wall_time": run.wall_time,
                    "iter_rate": run.iteration_rate(),
                    "max_gap": run.gap.max_observed(),
                    "skipped": sum(run.iterations_skipped),
                    "accuracy": run.final_accuracy,
                }
            )
            if slow_label != "none":
                curves[f"{config_label}/{slow_label}"] = binned_loss_curve(run)
            print(f"  done: {config_label:16s} under {slow_label}")

    print()
    print(render_table(rows, title="Protocol x heterogeneity matrix (CNN)"))
    print()
    print("Loss-vs-time curves under heterogeneity:")
    print(render_series_table(curves, n_points=6))
    print()
    print(
        "Reading guide: under 'random 6x', backup workers and staleness\n"
        "recover most of the lost iteration rate; under 'straggler 4x',\n"
        "only skipping keeps the straggler from gating the whole graph."
    )


if __name__ == "__main__":
    main()
