#!/usr/bin/env python3
"""Topology design: spectral gaps vs wall-clock in a real deployment.

Reproduces the paper's Section 7.3.6 insight at example scale: the
textbook guidance "maximize the spectral gap" can lose to machine-aware
graph design once the physical network is heterogeneous, because
iteration *duration* depends on which edges cross machines.

The script:

1. builds a menu of communication graphs for 8 workers spread 3/3/2
   over three machines (including the paper's Figure 21 settings),
2. reports each graph's spectral gap, diameter, and cross-machine
   edge count,
3. trains the CNN workload on each over a two-tier network (fast
   intra-machine, 1 Gb/s shared uplinks) and compares wall-clock.

Usage::

    python examples/topology_design.py [--preset smoke|bench|paper]
"""

import argparse

from repro.graphs import (
    FIG21_MACHINE_OF_WORKER,
    complete,
    fig21_setting1,
    fig21_setting2,
    fig21_setting3,
    ring,
    spectral_gap,
)
from repro.harness import (
    ExperimentSpec,
    SlowdownSpec,
    cnn_workload,
    render_table,
    run_spec,
)
from repro.net.links import Link, cluster_links


def cross_machine_edges(topology, machine_of):
    return sum(
        1
        for (a, b) in topology.edges
        if a != b and machine_of[a] != machine_of[b]
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--preset", default="smoke", choices=("smoke", "bench", "paper")
    )
    args = parser.parse_args()

    workload = cnn_workload(args.preset)
    iters = {"smoke": 16, "bench": 40, "paper": 120}[args.preset]
    machine_of = FIG21_MACHINE_OF_WORKER
    links = cluster_links(
        machine_of,
        intra=Link(latency=2e-5, bandwidth=10_000.0),
        inter=Link(latency=2e-4, bandwidth=125.0),
    )
    # Machines hosting 3 workers are more contended than the 2-worker one.
    load = SlowdownSpec(
        kind="deterministic",
        workers={w: 1.5 for w in range(8) if machine_of[w] in (0, 1)},
    )

    graphs = {
        "ring(8)": ring(8),
        "complete(8)": complete(8),
        "fig21_setting1": fig21_setting1(),
        "fig21_setting2 (machine-aware)": fig21_setting2(),
        "fig21_setting3 (machine-aware)": fig21_setting3(),
    }

    rows = []
    for label, topology in graphs.items():
        run = run_spec(
            ExperimentSpec(
                name=label,
                workload=workload,
                topology=topology,
                slowdown=load,
                max_iter=iters,
                seed=3,
                links=links,
                machines=machine_of,
            )
        )
        rows.append(
            {
                "graph": label,
                "spectral_gap": spectral_gap(topology),
                "diameter": topology.diameter(),
                "cross_edges": cross_machine_edges(topology, machine_of),
                "wall_time": run.wall_time,
                "iter_rate": run.iteration_rate(),
                "final_accuracy": run.final_accuracy,
            }
        )
        print(f"  trained on {label}")

    rows.sort(key=lambda row: row["wall_time"])
    print()
    print(
        render_table(
            rows,
            title="Graphs ranked by wall-clock (8 workers on 3 machines)",
        )
    )
    print()
    print(
        "Reading guide: the all-reduce graph has the best spectral gap but\n"
        "the most cross-machine edges; the machine-aware designs trade a\n"
        "worse gap for cheap iterations and win on wall-clock — the paper's\n"
        "Figure 20 conclusion."
    )


if __name__ == "__main__":
    main()
