#!/usr/bin/env python3
"""Quickstart: train a model with Hop on a simulated 16-worker cluster.

Runs standard decentralized training on a ring-based graph, then the
same workload with one backup worker under the paper's random-slowdown
recipe, and prints the comparison.

Usage::

    python examples/quickstart.py
"""

import numpy as np

from repro.core import HopCluster, STANDARD, backup_config
from repro.graphs import ring_based
from repro.hetero import ComputeModel, RandomSlowdown
from repro.ml import build_svm, synthetic_webspam
from repro.ml.optim import SGD
from repro.sim import RngStreams


def main() -> None:
    n_workers = 16
    topology = ring_based(n_workers)
    dataset = synthetic_webspam(
        np.random.default_rng(0), n_train=2048, n_test=512, n_features=128
    )

    def make_cluster(config, with_slowdown):
        slowdown = (
            RandomSlowdown(RngStreams(7), factor=6.0, probability=1 / n_workers)
            if with_slowdown
            else None
        )
        return HopCluster(
            topology=topology,
            config=config,
            model_factory=lambda rng: build_svm(rng, 128),
            dataset=dataset,
            optimizer=SGD(lr=1.0, momentum=0.9, weight_decay=1e-7),
            compute_model=ComputeModel(
                base_time=0.2, n_workers=n_workers, slowdown=slowdown
            ),
            batch_size=128,
            max_iter=100,
            seed=7,
        )

    print("== Hop quickstart: SVM on synthetic webspam, 16 workers ==\n")

    print("1) Standard decentralized training (homogeneous cluster)")
    clean = make_cluster(STANDARD, with_slowdown=False).run()
    print(clean.summary(), "\n")

    print("2) Standard decentralized training + 6x random slowdown")
    slow = make_cluster(STANDARD, with_slowdown=True).run()
    print(slow.summary(), "\n")

    print("3) Hop with one backup worker + the same slowdown")
    backup = make_cluster(backup_config(n_backup=1, max_ig=4),
                          with_slowdown=True).run()
    print(backup.summary(), "\n")

    speedup = slow.wall_time / backup.wall_time
    print(
        f"Backup workers recover {speedup:.2f}x of the wall-clock time lost "
        "to stragglers\n"
        f"(clean={clean.wall_time:.1f}s, slowed={slow.wall_time:.1f}s, "
        f"hop-backup={backup.wall_time:.1f}s; all runs: {clean.max_iter} "
        "iterations/worker)"
    )


if __name__ == "__main__":
    main()
