"""The DES engine fast paths: slotted events, deliveries, lazy tracing.

PR 4's second tentpole front inlined the engine's hottest operations
(timeout scheduling, succeed/fail, message delivery) and made tracer
channels lazy.  These tests pin that the fast paths behave exactly
like the generic machinery they bypass.
"""

import numpy as np
import pytest

from repro.harness.profiling import sim_core_events_per_sec
from repro.net.links import Link, LinkModel
from repro.net.message import Message
from repro.net.network import Delivery, Network
from repro.sim.engine import Environment
from repro.sim.events import Event, Timeout
from repro.sim.process import Process
from repro.sim.trace import Tracer, _noop_log


class TestSlots:
    def test_event_types_have_no_instance_dict(self):
        env = Environment()
        for obj in (
            Event(env),
            env.timeout(1.0),
            env.event(),
            env.all_of([]),
        ):
            assert not hasattr(obj, "__dict__"), type(obj)

    def test_process_is_slotted(self):
        env = Environment()

        def gen():
            yield env.timeout(1)

        assert not hasattr(env.process(gen()), "__dict__")


class TestTimeoutFastPath:
    def test_factory_matches_direct_construction(self):
        env = Environment()
        fast = env.timeout(2.5, value="v")
        slow = Timeout(env, 2.5, value="v")
        assert type(fast) is Timeout
        assert fast.delay == slow.delay == 2.5
        assert fast._value == slow._value == "v"
        # Both scheduled: creation order == firing order at equal times.
        fired = []
        fast.callbacks.append(lambda e: fired.append("fast"))
        slow.callbacks.append(lambda e: fired.append("slow"))
        env.run()
        assert fired == ["fast", "slow"]
        assert env.now == 2.5

    def test_negative_delay_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_step_and_run_agree(self):
        """The inlined run loop is semantically step() in a loop."""
        env = Environment()
        order = []

        def proc(env, name, delay):
            yield env.timeout(delay)
            order.append(name)

        env.process(proc(env, "b", 2.0))
        env.process(proc(env, "a", 1.0))
        while True:
            try:
                env.step()
            except Exception:
                break
        assert order == ["a", "b"]

        env2 = Environment()
        order2 = []

        def proc2(env, name, delay):
            yield env.timeout(delay)
            order2.append(name)

        env2.process(proc2(env2, "b", 2.0))
        env2.process(proc2(env2, "a", 1.0))
        env2.run()
        assert order2 == order


class TestDelivery:
    def test_delivers_payload_after_transfer_time(self):
        env = Environment()
        network = Network(env, LinkModel(default=Link(latency=0.5, bandwidth=2.0)))
        received = []
        message = Message(src=0, dst=1, kind="update", payload="p", size=4.0)
        event = network.send(message, deliver=lambda m: received.append(m))
        assert isinstance(event, Delivery)
        env.run()
        assert received == [message]
        assert env.now == pytest.approx(0.5 + 4.0 / 2.0)
        assert network.messages_sent == 1
        assert network.bytes_sent.total == pytest.approx(4.0)

    def test_push_matches_send_timing_and_counters(self):
        results = {}
        for mode in ("send", "push"):
            env = Environment()
            network = Network(
                env, LinkModel(default=Link(latency=0.25, bandwidth=8.0))
            )
            got = []
            if mode == "send":
                network.send(
                    Message(src=0, dst=1, kind="update", payload="x", size=2.0),
                    deliver=lambda m: got.append(m.payload),
                )
            else:
                network.push(0, 1, 2.0, "x", got.append)
            env.run()
            results[mode] = (env.now, got, network.messages_sent,
                             network.bytes_sent.total)
        assert results["send"] == results["push"]

    def test_uniform_link_fast_path_matches_link_model(self):
        link = Link(latency=0.1, bandwidth=5.0)
        env = Environment()
        network = Network(env, LinkModel(default=link))
        assert network._uniform_link is link
        event = network.push(0, 3, 10.0, None, lambda p: None)
        env.run()
        assert env.now == pytest.approx(link.transfer_time(10.0))
        # Per-edge overrides disable the shortcut.
        network2 = Network(
            env,
            LinkModel(default=link, overrides={(0, 1): Link(latency=9.9)}),
        )
        assert network2._uniform_link is None

    def test_nic_egress_still_uses_process(self):
        from repro.net.network import SharedNic

        env = Environment()
        nic = SharedNic(env, bandwidth=1.0, latency=0.0)
        network = Network(env, egress_nics={0: nic}, machine_of=[0, 1])
        got = []
        event = network.send(
            Message(src=0, dst=1, kind="update", payload="y", size=3.0),
            deliver=lambda m: got.append(m.payload),
        )
        assert isinstance(event, Process)
        env.run()
        assert got == ["y"]
        # push() falls back to the same NIC machinery.
        env2 = Environment()
        nic2 = SharedNic(env2, bandwidth=1.0, latency=0.0)
        network2 = Network(env2, egress_nics={0: nic2}, machine_of=[0, 1])
        got2 = []
        network2.push(0, 1, 3.0, "y", got2.append)
        env2.run()
        assert got2 == ["y"] and env2.now == env.now


class TestLazyTracer:
    def test_records_everything_by_default(self):
        tracer = Tracer()
        tracer.log("iter/0", 1.0, 7)
        channel = tracer.channel("loss/0")
        channel(2.0, 0.5)
        assert tracer.raw("iter/0") == [(1.0, 7)]
        assert tracer.raw("loss/0") == [(2.0, 0.5)]

    def test_allowlist_disables_unconsumed_channels(self):
        tracer = Tracer(channels=("loss",))
        assert tracer.enabled("loss/3") and not tracer.enabled("iter/3")
        assert tracer.channel("iter/3") is _noop_log
        tracer.log("iter/3", 1.0, 1)
        tracer.channel("iter/3")(2.0, 2)
        assert tracer.count("iter/3") == 0
        tracer.channel("loss/3")(1.0, 0.1)
        assert tracer.count("loss/3") == 1

    def test_channel_and_log_share_storage(self):
        tracer = Tracer()
        channel = tracer.channel("duration/1")
        channel(1.0, 0.25)
        tracer.log("duration/1", 2.0, 0.5)
        assert tracer.raw("duration/1") == [(1.0, 0.25), (2.0, 0.5)]

    def test_merge_still_sorts(self):
        a, b = Tracer(), Tracer()
        a.log("k", 2.0, "late")
        b.log("k", 1.0, "early")
        a.merge(b)
        assert [v for _, v in a.raw("k")] == ["early", "late"]

    def test_light_trace_run_keeps_losses_and_durations(self):
        from repro.graphs import ring_based
        from repro.harness import ExperimentSpec, run_spec, svm_workload
        from repro.protocols.base import LIGHT_TRACE

        spec = ExperimentSpec(
            name="light",
            workload=svm_workload("smoke"),
            topology=ring_based(4),
            max_iter=4,
            seed=0,
            trace_channels=LIGHT_TRACE,
        )
        light = run_spec(spec)
        full = run_spec(spec.with_(trace_channels=None))
        # Identical results; only diagnostic channels are dropped.
        assert light.wall_time == full.wall_time
        assert light.final_params.tobytes() == full.final_params.tobytes()
        _, light_losses = light.loss_series()
        _, full_losses = full.loss_series()
        np.testing.assert_array_equal(light_losses, full_losses)
        assert light.tracer.count("iter/0") == 0
        assert full.tracer.count("iter/0") > 0


class TestSimCoreMicrobench:
    def test_reports_positive_rate(self):
        rate = sim_core_events_per_sec(
            n_processes=8, events_per_process=200, repeats=1
        )
        assert rate > 0


class TestBatcherPrefetch:
    def test_prefetch_matches_sequential_draws(self):
        from repro.ml.data import Batcher

        x = np.arange(100, dtype=float).reshape(50, 2)
        y = np.arange(50)
        a = Batcher(x, y, 8, np.random.default_rng(11))
        rng = np.random.default_rng(11)
        for _ in range(2 * Batcher._PREFETCH + 3):  # cross block refills
            xb, yb = a.next_batch()
            idx = rng.integers(0, 50, size=8)
            np.testing.assert_array_equal(xb, x[idx])
            np.testing.assert_array_equal(yb, y[idx])


class TestProfileSpec:
    def test_profiles_a_small_run(self):
        from repro.graphs import ring_based
        from repro.harness import ExperimentSpec, svm_workload
        from repro.harness.profiling import profile_spec

        spec = ExperimentSpec(
            name="profiled",
            workload=svm_workload("smoke"),
            topology=ring_based(4),
            max_iter=3,
            seed=0,
        )
        report = profile_spec(spec, sort="tottime", limit=5, warmup=False)
        assert report.iterations == 12
        assert report.messages > 0
        assert report.elapsed_seconds > 0
        assert report.iterations_per_second > 0
        rendered = report.render()
        assert "simulated time" in rendered and "tottime" in rendered

    def test_cli_profile_engine_only(self, capsys):
        from repro.cli import main

        assert main(["profile", "--engine-only"]) == 0
        out = capsys.readouterr().out
        assert "events/sec" in out
