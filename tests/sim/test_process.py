"""Tests for process semantics: chaining, return values, interrupts."""

import pytest

from repro.sim import Environment, Interrupt


def test_process_return_value_is_event_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return 99

    p = env.process(proc(env))
    env.run()
    assert p.value == 99


def test_process_is_alive_until_done():
    env = Environment()

    def proc(env):
        yield env.timeout(5)

    p = env.process(proc(env))
    env.run(until=2)
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_waiting_on_another_process_gets_its_return():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(2)
        return "child-result"

    def parent(env):
        value = yield env.process(child(env))
        results.append((env.now, value))

    env.process(parent(env))
    env.run()
    assert results == [(2.0, "child-result")]


def test_waiting_on_already_finished_process():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(1)
        return "early"

    def parent(env, child_proc):
        yield env.timeout(10)
        value = yield child_proc  # already processed by now
        results.append((env.now, value))

    child_proc = env.process(child(env))
    env.process(parent(env, child_proc))
    env.run()
    assert results == [(10.0, "early")]


def test_yielding_non_event_fails_process():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="non-event"):
        env.run()


def test_rejects_non_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))

    def attacker(env, target):
        yield env.timeout(3)
        target.interrupt(cause="preempted")

    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run()
    assert log == [(3.0, "preempted")]


def test_interrupted_process_can_rewait():
    """A process can catch an interrupt and resume waiting."""
    env = Environment()
    log = []

    def victim(env):
        deadline = env.timeout(10)
        try:
            yield deadline
        except Interrupt:
            log.append(("interrupted", env.now))
            yield env.timeout(1)
            log.append(("recovered", env.now))

    def attacker(env, target):
        yield env.timeout(4)
        target.interrupt()

    target = env.process(victim(env))
    env.process(attacker(env, target))
    env.run()
    assert log == [("interrupted", 4.0), ("recovered", 5.0)]


def test_interrupt_finished_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError, match="finished"):
        p.interrupt()


def test_interrupt_unstarted_process_raises():
    env = Environment()

    def proc(env):
        yield env.timeout(1)

    p = env.process(proc(env))
    # The engine has not run yet, so the process never started.
    with pytest.raises(RuntimeError, match="not started"):
        p.interrupt()


def test_uncaught_interrupt_fails_the_process():
    env = Environment()

    def victim(env):
        yield env.timeout(100)

    def attacker(env, target):
        yield env.timeout(1)
        target.interrupt(cause="fatal")

    target = env.process(victim(env))
    env.process(attacker(env, target))
    with pytest.raises(Interrupt):
        env.run()


def test_nested_process_chain():
    env = Environment()

    def level3(env):
        yield env.timeout(1)
        return 3

    def level2(env):
        value = yield env.process(level3(env))
        return value + 2

    def level1(env):
        value = yield env.process(level2(env))
        return value + 1

    p = env.process(level1(env))
    env.run()
    assert p.value == 6
    assert env.now == 1.0


def test_exception_propagates_through_waiters():
    env = Environment()
    caught = []

    def child(env):
        yield env.timeout(1)
        raise KeyError("inner")

    def parent(env):
        try:
            yield env.process(child(env))
        except KeyError as exc:
            caught.append(str(exc))

    env.process(parent(env))
    env.run()
    assert caught == ["'inner'"]


def test_active_process_tracking():
    env = Environment()
    seen = []

    def proc(env):
        seen.append(env.active_process)
        yield env.timeout(1)

    p = env.process(proc(env))
    env.run()
    assert seen == [p]
    assert env.active_process is None
