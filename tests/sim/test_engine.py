"""Tests for the simulation engine: clock, scheduling, run modes."""

import pytest

from repro.sim import EmptySchedule, Environment


def test_initial_time_defaults_to_zero():
    assert Environment().now == 0.0


def test_initial_time_can_be_set():
    assert Environment(initial_time=42.5).now == 42.5


def test_run_empty_schedule_returns_none():
    env = Environment()
    assert env.run() is None
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(3.0)
    env.run()
    assert env.now == 3.0


def test_step_raises_on_empty_schedule():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_run_until_time_stops_exactly_there():
    env = Environment()
    env.timeout(10.0)
    env.run(until=4.0)
    assert env.now == 4.0


def test_run_until_time_in_past_raises():
    env = Environment()
    env.timeout(5.0)
    env.run()
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_run_until_event_returns_its_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return "finished"

    p = env.process(proc(env))
    assert env.run(until=p) == "finished"
    assert env.now == 2.0


def test_run_until_never_triggered_event_raises_deadlock():
    env = Environment()
    blocked = env.event()
    with pytest.raises(RuntimeError, match="deadlock"):
        env.run(until=blocked)


def test_events_at_same_time_fire_in_creation_order():
    env = Environment()
    order = []

    def proc(env, name, delay):
        yield env.timeout(delay)
        order.append(name)

    env.process(proc(env, "a", 1.0))
    env.process(proc(env, "b", 1.0))
    env.process(proc(env, "c", 1.0))
    env.run()
    assert order == ["a", "b", "c"]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    env.timeout(3.0)
    assert env.peek() == 3.0


def test_peek_on_empty_schedule_is_inf():
    assert Environment().peek() == float("inf")


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_determinism_two_identical_runs():
    def build_and_run():
        env = Environment()
        log = []

        def proc(env, name):
            for i in range(3):
                yield env.timeout(0.5 + 0.1 * i)
                log.append((env.now, name, i))

        for name in ("x", "y", "z"):
            env.process(proc(env, name))
        env.run()
        return log

    assert build_and_run() == build_and_run()


def test_clock_is_monotonic_across_many_events():
    env = Environment()
    times = []

    def proc(env, delays):
        for d in delays:
            yield env.timeout(d)
            times.append(env.now)

    env.process(proc(env, [0.3, 0.1, 0.7]))
    env.process(proc(env, [0.2, 0.2, 0.2]))
    env.run()
    assert times == sorted(times)


def test_unhandled_process_failure_surfaces_in_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    env.process(bad(env))
    with pytest.raises(ValueError, match="boom"):
        env.run()
