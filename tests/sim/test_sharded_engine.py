"""The bare sharded DES engine: windows, merge order, determinism.

The headline contract: the process-per-shard mode and the in-process
serial mode replay the *identical* window/merge schedule, and a
window-driven environment is bitwise-equivalent to an uninterrupted
``env.run()``.
"""

import pytest

from repro.sim.engine import Environment
from repro.sim.sharded import (
    ShardContext,
    ShardedEngine,
    drive_windows,
    merge_order,
)


def ticker(env, delay, count, log, tag):
    for _ in range(count):
        yield env.timeout(delay)
        log.append((tag, env.now))


def build_tickers(ctx):
    ctx.result = []
    for i in range(3):
        ctx.env.process(
            ticker(ctx.env, 1.0 + ctx.shard * 0.1 + i * 0.01, 20,
                   ctx.result, f"s{ctx.shard}t{i}")
        )


def build_with_cross_traffic(ctx):
    ctx.result = {"ticks": [], "received": []}

    def on_message(context, payload):
        context.result["received"].append((context.env.now, payload))

    ctx.on_message = on_message

    def courier(ctx):
        dst = (ctx.shard + 1) % ctx.n_shards
        for k in range(10):
            ctx.send(dst, ctx.lookahead + 0.25, payload=(ctx.shard, k))
            yield ctx.env.timeout(1.0)

    ctx.env.process(
        ticker(ctx.env, 0.7 + ctx.shard * 0.05, 15, ctx.result["ticks"],
               f"s{ctx.shard}")
    )
    ctx.env.process(courier(ctx))


# ----------------------------------------------------------------------
# drive_windows: windowed drive == uninterrupted run
# ----------------------------------------------------------------------
def test_windowed_drive_is_bitwise_equivalent_to_run():
    def workload(env, log):
        for i in range(4):
            env.process(ticker(env, 1.0 + i * 0.01, 25, log, f"t{i}"))

    plain_env, plain_log = Environment(), []
    workload(plain_env, plain_log)
    plain_env.run()

    for lookahead in (0.1, 1.0, 7.5, float("inf")):
        windowed_env, windowed_log = Environment(), []
        workload(windowed_env, windowed_log)
        stats = drive_windows(windowed_env, lookahead)
        assert windowed_log == plain_log
        assert windowed_env.now == plain_env.now
        assert stats.events > 0
        if lookahead == float("inf"):
            assert stats.windows == 1


def test_drive_windows_counts_sync_boundaries():
    env, log = Environment(), []
    env.process(ticker(env, 1.0, 10, log, "t"))
    boundaries = []
    stats = drive_windows(env, 2.5, sync=boundaries.append)
    assert stats.windows == len(boundaries)
    assert boundaries == sorted(boundaries)


def test_drive_windows_rejects_nonpositive_lookahead():
    with pytest.raises(ValueError):
        drive_windows(Environment(), 0.0)
    with pytest.raises(ValueError):
        drive_windows(Environment(), -1.0)


# ----------------------------------------------------------------------
# Merge order and the lookahead contract
# ----------------------------------------------------------------------
def test_merge_key_shape():
    message = (1, 3.5, 0, 7, 2, "payload")
    assert merge_order(message) == (3.5, 0, 7, 2)


def test_send_enforces_conservative_lookahead():
    ctx = ShardContext(Environment(), shard=0, n_shards=2, lookahead=1.0)
    with pytest.raises(ValueError):
        ctx.send(1, 0.5)
    ctx.send(1, 1.0)  # exactly the lookahead is legal
    ctx.send(0, 0.0)  # local sends may be immediate
    with pytest.raises(ValueError):
        ctx.send(5, 2.0)  # out of range


def test_inject_orders_batch_deterministically():
    received = []
    ctx = ShardContext(Environment(), shard=0, n_shards=2, lookahead=1.0)
    ctx.on_message = lambda _ctx, payload: received.append(payload)
    # Arrival order scrambled; merge key (time, priority, seq, shard)
    # must decide the dispatch order.
    batch = [
        (0, 2.0, 1, 5, 1, "late"),
        (0, 1.0, 1, 9, 1, "early-b"),
        (0, 1.0, 0, 9, 1, "early-urgent"),
        (0, 1.0, 1, 2, 0, "early-a"),
    ]
    ctx._inject(batch)
    ctx.env.run()
    assert received == ["early-urgent", "early-a", "early-b", "late"]
    assert ctx.cross_received == 4


# ----------------------------------------------------------------------
# Engine: serial == processes, bit for bit
# ----------------------------------------------------------------------
def _normalized(report):
    return {
        "rounds": report.rounds,
        "shards": [
            (r.shard, r.events, r.windows, r.cross_sent, r.cross_received,
             r.result)
            for r in report.shards
        ],
    }


def test_serial_and_process_modes_agree_without_cross_traffic():
    serial = ShardedEngine(3, 1.0, build_tickers).run_serial()
    procs = ShardedEngine(3, 1.0, build_tickers).run(processes=True)
    assert _normalized(serial) == _normalized(procs)
    assert serial.total_events == procs.total_events


def test_serial_and_process_modes_agree_with_cross_traffic():
    serial = ShardedEngine(3, 0.5, build_with_cross_traffic).run_serial()
    procs = ShardedEngine(3, 0.5, build_with_cross_traffic).run(
        processes=True
    )
    assert _normalized(serial) == _normalized(procs)
    assert serial.cross_messages == 30
    assert procs.mode in ("processes", "serial")  # serial iff no fork


def test_serial_mode_is_deterministic_across_repeats():
    first = ShardedEngine(2, 0.5, build_with_cross_traffic).run_serial()
    second = ShardedEngine(2, 0.5, build_with_cross_traffic).run_serial()
    assert _normalized(first) == _normalized(second)


def test_single_shard_uses_serial_path():
    report = ShardedEngine(1, 1.0, build_tickers).run(processes=True)
    assert report.mode == "serial"
    assert report.n_shards == 1


def test_engine_rejects_bad_parameters():
    with pytest.raises(ValueError):
        ShardedEngine(0, 1.0, build_tickers)
    with pytest.raises(ValueError):
        ShardedEngine(2, 0.0, build_tickers)
