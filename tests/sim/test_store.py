"""Tests for Store / FilterStore / PriorityStore blocking semantics."""

import pytest

from repro.sim import (
    Environment,
    FilterStore,
    PriorityItem,
    PriorityStore,
    Store,
)


class TestStore:
    def test_put_then_get_fifo(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env, store):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        for item in ("a", "b", "c"):
            store.put(item)
        env.process(consumer(env, store))
        env.run()
        assert got == ["a", "b", "c"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env, store):
            item = yield store.get()
            got.append((env.now, item))

        def producer(env, store):
            yield env.timeout(5)
            store.put("late")

        env.process(consumer(env, store))
        env.process(producer(env, store))
        env.run()
        assert got == [(5.0, "late")]

    def test_put_blocks_at_capacity(self):
        env = Environment()
        store = Store(env, capacity=1)
        log = []

        def producer(env, store):
            yield store.put("first")
            log.append(("put-first", env.now))
            yield store.put("second")
            log.append(("put-second", env.now))

        def consumer(env, store):
            yield env.timeout(10)
            item = yield store.get()
            log.append(("got", item, env.now))

        env.process(producer(env, store))
        env.process(consumer(env, store))
        env.run()
        assert log == [
            ("put-first", 0.0),
            ("got", "first", 10.0),
            ("put-second", 10.0),
        ]

    def test_level_and_len(self):
        env = Environment()
        store = Store(env)
        store.put(1)
        store.put(2)
        env.run()
        assert store.level == 2
        assert len(store) == 2

    def test_capacity_must_be_positive(self):
        env = Environment()
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_multiple_blocked_getters_fifo(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env, store, name):
            item = yield store.get()
            got.append((name, item))

        env.process(consumer(env, store, "first"))
        env.process(consumer(env, store, "second"))

        def producer(env, store):
            yield env.timeout(1)
            store.put("x")
            store.put("y")

        env.process(producer(env, store))
        env.run()
        assert got == [("first", "x"), ("second", "y")]

    def test_cancel_get(self):
        env = Environment()
        store = Store(env)
        get_event = store.get()
        assert get_event.cancel()
        store.put("item")
        env.run()
        # The cancelled getter never consumed the item.
        assert store.level == 1
        assert not get_event.triggered

    def test_cancel_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        store.put("a")
        blocked = store.put("b")
        assert blocked.cancel()

        def consumer(env, store):
            item = yield store.get()
            return item

        p = env.process(consumer(env, store))
        env.run()
        assert p.value == "a"
        assert store.level == 0

    def test_cancel_after_satisfaction_returns_false(self):
        env = Environment()
        store = Store(env)
        store.put("a")
        get_event = store.get()
        assert get_event.triggered
        assert not get_event.cancel()

    def test_none_is_a_valid_item(self):
        env = Environment()
        store = Store(env)
        store.put(None)

        def consumer(env, store):
            item = yield store.get()
            return item is None

        p = env.process(consumer(env, store))
        env.run()
        assert p.value is True


class TestFilterStore:
    def test_get_matching_item(self):
        env = Environment()
        store = FilterStore(env)
        for value in (1, 2, 3, 4):
            store.put(value)

        def consumer(env, store):
            even = yield store.get(lambda x: x % 2 == 0)
            return even

        p = env.process(consumer(env, store))
        env.run()
        assert p.value == 2
        assert list(store.items) == [1, 3, 4]

    def test_unmatched_getter_does_not_block_others(self):
        env = Environment()
        store = FilterStore(env)
        got = []

        def want(env, store, predicate, name):
            item = yield store.get(predicate)
            got.append((name, item))

        env.process(want(env, store, lambda x: x == "never", "blocked"))
        env.process(want(env, store, lambda x: x == "yes", "served"))

        def producer(env, store):
            yield env.timeout(1)
            store.put("yes")

        env.process(producer(env, store))
        env.run(until=10)
        assert got == [("served", "yes")]

    def test_default_filter_accepts_anything(self):
        env = Environment()
        store = FilterStore(env)
        store.put("x")

        def consumer(env, store):
            return (yield store.get())

        p = env.process(consumer(env, store))
        env.run()
        assert p.value == "x"

    def test_fifo_among_matches(self):
        env = Environment()
        store = FilterStore(env)
        for value in (5, 6, 7, 8):
            store.put(value)

        def consumer(env, store):
            return (yield store.get(lambda x: x > 5))

        p = env.process(consumer(env, store))
        env.run()
        assert p.value == 6


class TestPriorityStore:
    def test_items_come_out_sorted(self):
        env = Environment()
        store = PriorityStore(env)
        for value in (3, 1, 2):
            store.put(value)
        got = []

        def consumer(env, store):
            for _ in range(3):
                got.append((yield store.get()))

        env.process(consumer(env, store))
        env.run()
        assert got == [1, 2, 3]

    def test_priority_item_wrapper(self):
        env = Environment()
        store = PriorityStore(env)
        store.put(PriorityItem(2, "low"))
        store.put(PriorityItem(1, "high"))

        def consumer(env, store):
            first = yield store.get()
            return first.item

        p = env.process(consumer(env, store))
        env.run()
        assert p.value == "high"

    def test_priority_item_equality(self):
        assert PriorityItem(1, "a") == PriorityItem(1, "a")
        assert PriorityItem(1, "a") != PriorityItem(2, "a")
        assert PriorityItem(1, "a") < PriorityItem(2, "a")
