"""Tests for event primitives: trigger semantics, conditions."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event


def test_event_starts_untriggered():
    env = Environment()
    ev = env.event()
    assert not ev.triggered
    assert not ev.processed


def test_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(RuntimeError):
        _ = ev.value
    with pytest.raises(RuntimeError):
        _ = ev.ok


def test_succeed_sets_value_and_ok():
    env = Environment()
    ev = env.event()
    ev.succeed(123)
    assert ev.triggered
    assert ev.ok
    assert ev.value == 123


def test_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(RuntimeError):
        ev.succeed()
    with pytest.raises(RuntimeError):
        ev.fail(ValueError())


def test_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_failed_event_without_handler_crashes_run():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("unhandled"))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_defused_failed_event_does_not_crash():
    env = Environment()
    ev = env.event()
    ev.fail(RuntimeError("handled"))
    ev.defused = True
    env.run()  # no raise


def test_process_can_catch_failed_event():
    env = Environment()
    ev = env.event()
    caught = []

    def proc(env, ev):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(proc(env, ev))
    ev.fail(RuntimeError("oops"))
    env.run()
    assert caught == ["oops"]


def test_trigger_copies_outcome():
    env = Environment()
    source = env.event()
    sink = env.event()
    source.succeed("payload")
    sink.trigger(source)
    assert sink.triggered and sink.ok
    assert sink.value == "payload"


def test_callbacks_receive_the_event():
    env = Environment()
    ev = env.event()
    seen = []
    ev.callbacks.append(lambda e: seen.append(e))
    ev.succeed()
    env.run()
    assert seen == [ev]


class TestAllOf:
    def test_waits_for_all(self):
        env = Environment()
        results = []

        def proc(env):
            t1 = env.timeout(1.0, value="a")
            t2 = env.timeout(3.0, value="b")
            cond = yield AllOf(env, [t1, t2])
            results.append((env.now, [cond[t1], cond[t2]]))

        env.process(proc(env))
        env.run()
        assert results == [(3.0, ["a", "b"])]

    def test_empty_allof_fires_immediately(self):
        env = Environment()
        done = []

        def proc(env):
            value = yield AllOf(env, [])
            done.append((env.now, len(value)))

        env.process(proc(env))
        env.run()
        assert done == [(0.0, 0)]

    def test_allof_fails_if_any_child_fails(self):
        env = Environment()
        failing = env.event()
        caught = []

        def proc(env):
            try:
                yield AllOf(env, [env.timeout(10.0), failing])
            except ValueError as exc:
                caught.append(str(exc))

        env.process(proc(env))
        failing.fail(ValueError("child failed"))
        env.run()
        assert caught == ["child failed"]


class TestAnyOf:
    def test_fires_on_first(self):
        env = Environment()
        results = []

        def proc(env):
            fast = env.timeout(1.0, value="fast")
            slow = env.timeout(5.0, value="slow")
            cond = yield AnyOf(env, [fast, slow])
            results.append((env.now, fast in cond, slow in cond))

        env.process(proc(env))
        env.run()
        assert results == [(1.0, True, False)]

    def test_empty_anyof_fires_immediately(self):
        env = Environment()
        done = []

        def proc(env):
            yield AnyOf(env, [])
            done.append(env.now)

        env.process(proc(env))
        env.run()
        assert done == [0.0]


def test_condition_with_foreign_environment_rejected():
    env_a = Environment()
    env_b = Environment()
    ev = env_b.event()
    with pytest.raises(ValueError):
        AllOf(env_a, [ev])


def test_condition_value_mapping_behaviour():
    env = Environment()
    holder = {}

    def proc(env):
        t1 = env.timeout(1, value=10)
        t2 = env.timeout(2, value=20)
        holder["cond"] = yield AllOf(env, [t1, t2])
        holder["t1"], holder["t2"] = t1, t2

    env.process(proc(env))
    env.run()
    cond = holder["cond"]
    assert cond[holder["t1"]] == 10
    assert cond.todict() == {holder["t1"]: 10, holder["t2"]: 20}
    assert len(cond) == 2
    with pytest.raises(KeyError):
        _ = cond[Event(env)]
