"""Tests for named RNG streams."""

import numpy as np

from repro.sim import RngStreams, derive_seed


def test_same_seed_same_key_same_draws():
    a = RngStreams(seed=7).stream("worker", 0).random(5)
    b = RngStreams(seed=7).stream("worker", 0).random(5)
    assert np.array_equal(a, b)


def test_different_keys_give_independent_streams():
    streams = RngStreams(seed=7)
    a = streams.stream("worker", 0).random(5)
    b = streams.stream("worker", 1).random(5)
    assert not np.array_equal(a, b)


def test_different_seeds_give_different_draws():
    a = RngStreams(seed=1).stream("x").random(5)
    b = RngStreams(seed=2).stream("x").random(5)
    assert not np.array_equal(a, b)


def test_stream_is_cached():
    streams = RngStreams(seed=0)
    assert streams.stream("a") is streams.stream("a")


def test_fresh_returns_replayable_generator():
    streams = RngStreams(seed=3)
    first = streams.fresh("component").random(4)
    second = streams.fresh("component").random(4)
    assert np.array_equal(first, second)


def test_key_joins_parts():
    streams = RngStreams(seed=0)
    assert streams.key("a", 1, "b") == "a/1/b"


def test_spawn_creates_namespaced_registry():
    parent = RngStreams(seed=9)
    child_a = parent.spawn("experiment", 1)
    child_b = parent.spawn("experiment", 2)
    assert child_a.seed != child_b.seed
    # Deterministic: same spawn path gives the same child seed.
    again = RngStreams(seed=9).spawn("experiment", 1)
    assert again.seed == child_a.seed


def test_derive_seed_stability():
    assert derive_seed(5, "abc") == derive_seed(5, "abc")
    assert derive_seed(5, "abc") != derive_seed(5, "abd")
    assert derive_seed(5, "abc") != derive_seed(6, "abc")


def test_adding_new_stream_does_not_perturb_existing():
    streams_one = RngStreams(seed=11)
    draws_before = streams_one.stream("data").random(3)

    streams_two = RngStreams(seed=11)
    streams_two.stream("slowdown").random(100)  # extra consumer
    draws_after = streams_two.stream("data").random(3)
    assert np.array_equal(draws_before, draws_after)
