"""Tests for the Resource (counting semaphore)."""

import pytest

from repro.sim import Environment, Resource


def test_request_release_cycle():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def user(env, res, name, hold):
        req = res.request()
        yield req
        log.append((name, "acquired", env.now))
        yield env.timeout(hold)
        res.release(req)
        log.append((name, "released", env.now))

    env.process(user(env, res, "a", 2.0))
    env.process(user(env, res, "b", 1.0))
    env.run()
    assert log == [
        ("a", "acquired", 0.0),
        ("a", "released", 2.0),
        ("b", "acquired", 2.0),
        ("b", "released", 3.0),
    ]


def test_capacity_allows_concurrency():
    env = Environment()
    res = Resource(env, capacity=2)
    acquired_times = []

    def user(env, res):
        req = res.request()
        yield req
        acquired_times.append(env.now)
        yield env.timeout(5)
        res.release(req)

    for _ in range(3):
        env.process(user(env, res))
    env.run()
    assert acquired_times == [0.0, 0.0, 5.0]


def test_count_and_queue_length():
    env = Environment()
    res = Resource(env, capacity=1)
    r1 = res.request()
    r2 = res.request()
    assert res.count == 1
    assert res.queue_length == 1
    res.release(r1)
    assert res.count == 1  # r2 was granted
    assert res.queue_length == 0
    assert r2.triggered


def test_release_without_hold_raises():
    env = Environment()
    res = Resource(env, capacity=1)
    res.request()
    stranger = res.request()  # still waiting
    with pytest.raises(RuntimeError):
        res.release(stranger)


def test_cancel_waiting_request():
    env = Environment()
    res = Resource(env, capacity=1)
    held = res.request()
    waiting = res.request()
    assert waiting.cancel()
    res.release(held)
    assert not waiting.triggered
    assert res.count == 0


def test_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)
