"""Property-based tests for the simulation substrate (hypothesis)."""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, FilterStore, RngStreams, StatAccumulator, Store

import numpy as np
import pytest


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=30))
def test_clock_never_goes_backwards(delays):
    env = Environment()
    observed = []

    def proc(env, delay):
        yield env.timeout(delay)
        observed.append(env.now)

    for delay in delays:
        env.process(proc(env, delay))
    env.run()
    assert observed == sorted(observed)
    assert len(observed) == len(delays)


@given(
    items=st.lists(st.integers(), min_size=0, max_size=50),
)
def test_store_preserves_fifo_order(items):
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env, store, n):
        for _ in range(n):
            got.append((yield store.get()))

    for item in items:
        store.put(item)
    env.process(consumer(env, store, len(items)))
    env.run()
    assert got == items


@given(
    items=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=40),
    threshold=st.integers(min_value=0, max_value=100),
)
def test_filter_store_returns_first_match(items, threshold):
    env = Environment()
    store = FilterStore(env)
    for item in items:
        store.put(item)

    matches = [item for item in items if item >= threshold]

    def consumer(env, store):
        return (yield store.get(lambda x: x >= threshold))

    p = env.process(consumer(env, store))
    env.run(until=1)
    if matches:
        assert p.triggered
        assert p.value == matches[0]
    else:
        assert not p.triggered


@given(
    capacity=st.integers(min_value=1, max_value=5),
    n_items=st.integers(min_value=0, max_value=20),
)
def test_store_capacity_never_exceeded(capacity, n_items):
    env = Environment()
    store = Store(env, capacity=capacity)
    max_seen = [0]

    def producer(env, store):
        for i in range(n_items):
            yield store.put(i)
            max_seen[0] = max(max_seen[0], store.level)

    def consumer(env, store):
        for _ in range(n_items):
            yield env.timeout(1)
            yield store.get()

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert max_seen[0] <= capacity


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    key=st.text(min_size=1, max_size=20),
)
def test_rng_streams_deterministic(seed, key):
    a = RngStreams(seed).stream(key).integers(0, 1000, size=8)
    b = RngStreams(seed).stream(key).integers(0, 1000, size=8)
    assert np.array_equal(a, b)


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=100,
    )
)
def test_stat_accumulator_matches_numpy(values):
    acc = StatAccumulator()
    for value in values:
        acc.add(value)
    assert acc.count == len(values)
    assert acc.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
    assert acc.min == min(values)
    assert acc.max == max(values)


@settings(max_examples=25)
@given(
    schedule=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),  # producer delay
            st.floats(min_value=0.0, max_value=100.0),  # consumer delay
        ),
        min_size=1,
        max_size=15,
    )
)
def test_every_put_item_is_eventually_consumed(schedule):
    """Conservation: items in == items out when counts match."""
    env = Environment()
    store = Store(env)
    produced, consumed = [], []

    def producer(env, store, delay, token):
        yield env.timeout(delay)
        store.put(token)
        produced.append(token)

    def consumer(env, store, delay):
        yield env.timeout(delay)
        item = yield store.get()
        consumed.append(item)

    for index, (produce_delay, consume_delay) in enumerate(schedule):
        env.process(producer(env, store, produce_delay, index))
        env.process(consumer(env, store, consume_delay))
    env.run()
    assert sorted(produced) == sorted(consumed)
    assert store.level == 0
