"""Tests for tracing and streaming statistics."""

import math

import numpy as np
import pytest

from repro.sim import StatAccumulator, Tracer


class TestTracer:
    def test_log_and_series(self):
        tracer = Tracer()
        tracer.log("loss", 0.0, 2.0)
        tracer.log("loss", 1.0, 1.5)
        times, values = tracer.series("loss")
        assert np.array_equal(times, [0.0, 1.0])
        assert np.array_equal(values, [2.0, 1.5])

    def test_empty_series(self):
        times, values = Tracer().series("missing")
        assert times.size == 0 and values.size == 0

    def test_count_and_last(self):
        tracer = Tracer()
        assert tracer.count("k") == 0
        assert tracer.last("k") is None
        tracer.log("k", 1.0, "a")
        tracer.log("k", 2.0, "b")
        assert tracer.count("k") == 2
        assert tracer.last("k") == (2.0, "b")

    def test_keys_sorted(self):
        tracer = Tracer()
        tracer.log("b", 0.0)
        tracer.log("a", 0.0)
        assert tracer.keys() == ["a", "b"]

    def test_raw_returns_copy(self):
        tracer = Tracer()
        tracer.log("k", 0.0, 1)
        raw = tracer.raw("k")
        raw.append((9.9, 99))
        assert tracer.count("k") == 1

    def test_merge_interleaves_by_time(self):
        one, two = Tracer(), Tracer()
        one.log("k", 0.0, "a")
        one.log("k", 2.0, "c")
        two.log("k", 1.0, "b")
        one.merge(two)
        assert [v for _, v in one.raw("k")] == ["a", "b", "c"]


class TestStatAccumulator:
    def test_empty(self):
        acc = StatAccumulator()
        assert acc.count == 0
        assert acc.variance == 0.0
        assert math.isnan(acc.as_dict()["min"])

    def test_mean_min_max(self):
        acc = StatAccumulator()
        for value in (1.0, 2.0, 3.0, 4.0):
            acc.add(value)
        assert acc.count == 4
        assert acc.mean == pytest.approx(2.5)
        assert acc.min == 1.0
        assert acc.max == 4.0
        assert acc.total == pytest.approx(10.0)

    def test_variance_matches_numpy(self):
        values = [3.1, -2.0, 7.7, 0.4, 5.5]
        acc = StatAccumulator()
        for value in values:
            acc.add(value)
        assert acc.variance == pytest.approx(np.var(values, ddof=1))
        assert acc.std == pytest.approx(np.std(values, ddof=1))

    def test_single_value_has_zero_variance(self):
        acc = StatAccumulator()
        acc.add(42.0)
        assert acc.variance == 0.0
