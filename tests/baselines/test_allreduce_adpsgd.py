"""Tests for ring all-reduce and AD-PSGD baselines."""

import numpy as np
import pytest

from repro.baselines import ADPSGDCluster, RingAllReduceCluster
from repro.graphs import TopologyError, bipartite_ring, ring
from repro.hetero import ComputeModel, DeterministicSlowdown
from repro.ml import build_svm, synthetic_webspam
from repro.ml.optim import SGD
from repro.net.links import Link


N_FEATURES = 24


@pytest.fixture(scope="module")
def dataset():
    return synthetic_webspam(
        np.random.default_rng(0), n_train=384, n_test=128, n_features=N_FEATURES
    )


def make_allreduce(dataset, n=4, max_iter=20, **kwargs):
    kwargs.setdefault("compute_model", ComputeModel(base_time=0.05, n_workers=n))
    kwargs.setdefault("optimizer", SGD(lr=1.0, momentum=0.9))
    kwargs.setdefault("update_size", 1.0)
    return RingAllReduceCluster(
        n,
        lambda rng: build_svm(rng, N_FEATURES),
        dataset,
        max_iter=max_iter,
        seed=1,
        **kwargs,
    )


def make_adpsgd(dataset, n=6, max_iter=20, **kwargs):
    kwargs.setdefault("compute_model", ComputeModel(base_time=0.05, n_workers=n))
    kwargs.setdefault("optimizer", SGD(lr=1.0, momentum=0.9))
    kwargs.setdefault("update_size", 0.5)
    return ADPSGDCluster(
        bipartite_ring(n),
        lambda rng: build_svm(rng, N_FEATURES),
        dataset,
        max_iter=max_iter,
        seed=1,
        **kwargs,
    )


class TestRingAllReduce:
    def test_converges(self, dataset):
        run = make_allreduce(dataset, max_iter=40).run()
        _, losses = run.smoothed_loss_series(window=16)
        assert losses[-1] < losses[0]

    def test_lockstep_gap_zero(self, dataset):
        run = make_allreduce(dataset).run()
        assert run.gap.max_observed() == 0.0

    def test_straggler_gates_the_ring(self, dataset):
        fast = make_allreduce(dataset).run()
        slow = make_allreduce(
            dataset,
            compute_model=ComputeModel(
                base_time=0.05,
                n_workers=4,
                slowdown=DeterministicSlowdown({0: 4.0}),
            ),
        ).run()
        assert slow.wall_time > 2.0 * fast.wall_time

    def test_communication_time_formula(self, dataset):
        cluster = make_allreduce(dataset, link=Link(latency=0.0, bandwidth=10.0))
        # 2 * (n-1) steps of (M/n) each: 2*3*(1/4)/10 = 0.15.
        assert cluster.communication_time(1.0) == pytest.approx(0.15)

    def test_bandwidth_optimality_vs_naive(self, dataset):
        """Chunked ring beats whole-model relay for large n."""
        cluster = make_allreduce(dataset, link=Link(latency=0.0, bandwidth=10.0))
        naive = 2 * (4 - 1) * (1.0 / 10.0)  # whole model each hop
        assert cluster.communication_time(1.0) < naive

    def test_needs_two_workers(self, dataset):
        with pytest.raises(ValueError):
            make_allreduce(dataset, n=1)


class TestADPSGD:
    def test_converges(self, dataset):
        run = make_adpsgd(dataset, max_iter=40).run()
        _, losses = run.smoothed_loss_series(window=16)
        assert losses[-1] < losses[0]

    def test_requires_bipartite_graph(self, dataset):
        with pytest.raises(TopologyError):
            ADPSGDCluster(
                ring(5),  # odd ring: not bipartite
                lambda rng: build_svm(rng, N_FEATURES),
                dataset,
            )

    def test_gossip_happens(self, dataset):
        run = make_adpsgd(dataset).run()
        assert "gossips=" in run.config_description
        gossips = int(run.config_description.split("gossips=")[1].rstrip(")"))
        assert gossips > 0

    def test_straggler_does_not_block_fast_workers(self, dataset):
        run = make_adpsgd(
            dataset,
            compute_model=ComputeModel(
                base_time=0.05,
                n_workers=6,
                slowdown=DeterministicSlowdown({1: 10.0}),
            ),
        ).run()
        assert run.gap.max_observed() > 3.0

    def test_deterministic(self, dataset):
        a = make_adpsgd(dataset).run()
        b = make_adpsgd(dataset).run()
        assert a.wall_time == b.wall_time
        assert np.array_equal(a.final_params, b.final_params)

    def test_workers_converge_toward_consensus(self, dataset):
        run = make_adpsgd(dataset, max_iter=60).run()
        norm = float(np.linalg.norm(run.final_params)) + 1e-9
        assert run.consensus / norm < 0.5
