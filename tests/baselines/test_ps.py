"""Tests for the parameter-server baseline."""

import numpy as np
import pytest

from repro.baselines import ParameterServerCluster
from repro.hetero import ComputeModel, DeterministicSlowdown
from repro.ml import build_svm, synthetic_webspam
from repro.ml.optim import SGD


N_FEATURES = 24


@pytest.fixture(scope="module")
def dataset():
    return synthetic_webspam(
        np.random.default_rng(0), n_train=384, n_test=128, n_features=N_FEATURES
    )


def make_ps(dataset, mode="bsp", n=4, max_iter=20, **kwargs):
    kwargs.setdefault(
        "compute_model", ComputeModel(base_time=0.05, n_workers=n)
    )
    kwargs.setdefault("optimizer", SGD(lr=1.0, momentum=0.9))
    kwargs.setdefault("update_size", 0.5)
    return ParameterServerCluster(
        n,
        lambda rng: build_svm(rng, N_FEATURES),
        dataset,
        mode=mode,
        max_iter=max_iter,
        seed=1,
        **kwargs,
    )


class TestBSP:
    def test_completes_and_converges(self, dataset):
        run = make_ps(dataset, "bsp", max_iter=40).run()
        assert run.protocol == "ps-bsp"
        _, losses = run.smoothed_loss_series(window=16)
        assert losses[-1] < losses[0]

    def test_workers_locked_to_same_iteration(self, dataset):
        run = make_ps(dataset, "bsp").run()
        # BSP: max gap between any two workers is 1 (pull boundaries).
        assert run.gap.max_observed() <= 1.0

    def test_straggler_slows_everyone(self, dataset):
        fast = make_ps(dataset, "bsp").run()
        slow = make_ps(
            dataset,
            "bsp",
            compute_model=ComputeModel(
                base_time=0.05,
                n_workers=4,
                slowdown=DeterministicSlowdown({0: 4.0}),
            ),
        ).run()
        assert slow.wall_time > 1.5 * fast.wall_time

    def test_backup_workers_mask_straggler(self, dataset):
        slow_model = lambda: ComputeModel(  # noqa: E731
            base_time=0.05,
            n_workers=4,
            slowdown=DeterministicSlowdown({0: 4.0}),
        )
        plain = make_ps(dataset, "bsp", compute_model=slow_model()).run()
        backup = make_ps(
            dataset, "bsp", n_backup=1, compute_model=slow_model()
        ).run()
        assert backup.wall_time < plain.wall_time

    def test_hotspot_scales_with_workers(self, dataset):
        few = make_ps(dataset, "bsp", n=2, update_size=4.0).run()
        many = make_ps(dataset, "bsp", n=8, update_size=4.0).run()
        # Serialized PS NIC: more workers -> longer iterations.
        assert many.wall_time > few.wall_time


class TestAsync:
    def test_completes(self, dataset):
        run = make_ps(dataset, "async").run()
        assert all(i == 20 for i in run.iterations_completed)

    def test_straggler_does_not_block_others(self, dataset):
        run = make_ps(
            dataset,
            "async",
            compute_model=ComputeModel(
                base_time=0.05,
                n_workers=4,
                slowdown=DeterministicSlowdown({0: 10.0}),
            ),
        ).run()
        # Fast workers race ahead: large observed iteration gap.
        assert run.gap.max_observed() > 1.0


class TestSSP:
    def test_staleness_bound_enforced(self, dataset):
        run = make_ps(
            dataset,
            "ssp",
            staleness=2,
            compute_model=ComputeModel(
                base_time=0.05,
                n_workers=4,
                slowdown=DeterministicSlowdown({0: 6.0}),
            ),
        ).run()
        # Global bound: fastest - slowest <= s + 1 (one in-flight pull).
        assert run.gap.max_observed() <= 3.0

    def test_needs_staleness_parameter(self, dataset):
        with pytest.raises(ValueError):
            make_ps(dataset, "ssp", staleness=0)


class TestValidation:
    def test_unknown_mode(self, dataset):
        with pytest.raises(ValueError):
            make_ps(dataset, "turbo")

    def test_backup_bounds(self, dataset):
        with pytest.raises(ValueError):
            make_ps(dataset, "bsp", n_backup=4)

    def test_deterministic(self, dataset):
        a = make_ps(dataset, "bsp").run()
        b = make_ps(dataset, "bsp").run()
        assert a.wall_time == b.wall_time
        assert np.array_equal(a.final_params, b.final_params)


class TestElasticInFlightDrops:
    """Regression: a push already in flight toward a shard owner that
    departs mid-transfer must be counted in ``messages_dropped`` and
    re-addressed against the re-sharded owner map — never enqueued into
    a dead inbox, never deadlocking the fold barrier.

    The straggling leaver opens the window: fast workers launch fat
    (slow-to-transfer) pushes addressed to worker 3's shard while its
    departure is being enacted.
    """

    def _churned(self, dataset, mode, **kwargs):
        from repro.membership import ChurnEvent, ChurnPlan

        return make_ps(
            dataset,
            mode,
            max_iter=12,
            compute_model=ComputeModel(
                base_time=0.05,
                n_workers=4,
                slowdown=DeterministicSlowdown({3: 2.0}),
            ),
            update_size=8.0,
            churn=ChurnPlan(events=(ChurnEvent(worker=3, leave_at=3),)),
            **kwargs,
        )

    @pytest.mark.parametrize(
        "mode,extra", [("async", {}), ("ssp", {"staleness": 2})]
    )
    def test_in_flight_pushes_to_departed_owner_are_dropped(
        self, dataset, mode, extra
    ):
        run = self._churned(dataset, mode, **extra).run()
        assert run.iterations_completed == [12, 12, 12, 3]
        assert run.messages_dropped > 0
        kinds = [e["kind"] for e in run.membership_events]
        assert "reshard" in kinds
        assert np.isfinite(run.final_params).all()

    def test_bsp_barrier_survives_the_departure(self, dataset):
        # The same window under BSP: the fold quorum re-derives from
        # the shrunk live set, so the barrier never waits on the
        # departed worker's gradient.
        run = self._churned(dataset, "bsp").run()
        assert run.iterations_completed == [12, 12, 12, 3]
        assert run.messages_dropped >= 0

    @pytest.mark.parametrize(
        "mode,extra", [("async", {}), ("ssp", {"staleness": 2})]
    )
    def test_drop_accounting_is_deterministic(self, dataset, mode, extra):
        a = self._churned(dataset, mode, **extra).run()
        b = self._churned(dataset, mode, **extra).run()
        assert a.messages_dropped == b.messages_dropped
        assert a.wall_time == b.wall_time
        assert np.array_equal(a.final_params, b.final_params)
