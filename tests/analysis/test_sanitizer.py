"""REPRO_SANITIZE=1: the runtime half of the aliasing rules.

With the flag set, the model's flat parameter buffer (and every
per-tensor alias into it) is read-only outside ``set_params``'s
sanctioned window, so any rogue in-place write raises instead of
silently corrupting the run — and a sanitized conformance cell still
reproduces its golden fingerprint bit-for-bit.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.runtime import (
    ENV_FLAG,
    sanitize_enabled,
    writable_window,
)
from repro.harness.golden import conformance_spec, golden_fingerprint
from repro.harness.spec import run_spec
from repro.ml.models import build_svm

GOLDEN_PATH = Path(__file__).parents[1] / "scenarios" / "golden_stats.json"


def make_model():
    return build_svm(np.random.default_rng(7), 16)


class TestFlag:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        assert not sanitize_enabled()
        monkeypatch.setenv(ENV_FLAG, "0")
        assert not sanitize_enabled()

    def test_enabled_values(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        assert sanitize_enabled()


class TestLockedBuffers:
    @pytest.fixture(autouse=True)
    def sanitize(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")

    def test_direct_flat_write_raises(self):
        model = make_model()
        with pytest.raises(ValueError, match="read-only"):
            model._flat[0] = 1.0

    def test_per_tensor_alias_write_raises(self):
        model = make_model()
        with pytest.raises(ValueError, match="read-only"):
            model._params[0].data[...] = 0.0

    def test_set_params_window_still_works(self):
        model = make_model()
        target = np.arange(model.dim, dtype=np.float64)
        model.set_params(target)
        np.testing.assert_array_equal(model.get_params(), target)
        assert not model._flat.flags.writeable  # re-locked after

    def test_training_step_works_sanitized(self):
        model = make_model()
        rng = np.random.default_rng(3)
        x = rng.normal(size=(8, 16))
        y = np.where(rng.normal(size=8) > 0, 1, -1)
        value, grad = model.loss_and_grad(x, y)
        model.set_params(model.get_params() - 0.1 * grad)
        after, _ = model.loss_and_grad(x, y)
        assert after < value

    def test_unsanitized_model_stays_writable(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "0")
        model = make_model()
        assert model._flat.flags.writeable


class TestWritableWindow:
    def test_restores_lock_state(self):
        array = np.zeros(4)
        array.flags.writeable = False
        with writable_window(array):
            array[0] = 1.0
        assert not array.flags.writeable
        assert array[0] == 1.0

    def test_restores_on_exception(self):
        array = np.zeros(4)
        array.flags.writeable = False
        with pytest.raises(RuntimeError):
            with writable_window(array):
                raise RuntimeError("boom")
        assert not array.flags.writeable

    def test_leaves_writable_arrays_writable(self):
        array = np.zeros(4)
        with writable_window(array):
            array[0] = 1.0
        assert array.flags.writeable


class TestConformanceCellSanitized:
    def test_hop_none_matches_golden_bitwise(self, monkeypatch):
        # The sanitizer's smoke cell for scripts/ci.sh: a sanitized run
        # must be bit-identical to the recorded (unsanitized) golden —
        # the lock changes when writes are allowed, never their values.
        monkeypatch.setenv(ENV_FLAG, "1")
        run = run_spec(conformance_spec("hop", "none"))
        recorded = json.loads(GOLDEN_PATH.read_text())["cells"]["hop/none"]
        assert golden_fingerprint(run) == recorded
