"""The add-your-own-rule walkthrough, as a test.

Mirrors the docs/ARCHITECTURE.md "adding a rule" section: subclass
:class:`repro.analysis.Rule`, declare the id/group/summary/rationale
attributes, implement ``visit_<NodeType>`` hooks, and
``register_rule`` it — exactly how protocols and scenario families
join their registries.
"""

import ast

import pytest

from repro.analysis import (
    Rule,
    get_rule,
    lint_source,
    register_rule,
    registered_rules,
    resolve_rules,
    unregister_rule,
)


class NoPrintRule(Rule):
    name = "demo-no-print"
    group = "demo"
    summary = "no print() in simulation code"
    rationale = "demo rule for the extension-point walkthrough"
    scope = ("repro/sim",)

    def visit_Call(self, node: ast.Call, ctx) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            ctx.report(self, node, "print() call in simulation code")


@pytest.fixture
def demo_rule():
    register_rule(NoPrintRule)
    yield
    unregister_rule("demo-no-print")


class TestExtensionPoint:
    def test_registered_rule_reports_findings(self, demo_rule):
        findings = lint_source(
            "print('hi')\n", relpath="repro/sim/mod.py"
        )
        assert [f.rule for f in findings] == ["demo-no-print"]

    def test_scope_applies_to_custom_rules(self, demo_rule):
        findings = lint_source(
            "print('hi')\n", relpath="repro/harness/mod.py"
        )
        assert findings == []

    def test_rule_joins_registry_groups_and_lookup(self, demo_rule):
        assert "demo-no-print" in registered_rules()
        info = get_rule("demo-no-print")
        assert info.group == "demo"
        assert [i.name for i in resolve_rules(["demo"])] == ["demo-no-print"]

    def test_suppression_works_for_custom_rules(self, demo_rule):
        findings = lint_source(
            "print('hi')  # repro: ignore[demo-no-print]\n",
            relpath="repro/sim/mod.py",
        )
        assert findings == []

    def test_unregister_restores_the_registry(self):
        register_rule(NoPrintRule)
        unregister_rule("demo-no-print")
        assert "demo-no-print" not in registered_rules()
        with pytest.raises(ValueError, match="demo-no-print"):
            get_rule("demo-no-print")

    def test_reregistration_replaces_in_place(self, demo_rule):
        # Same idiom as the protocol/scenario registries: registering
        # under an existing id replaces it (iteration-friendly).
        class Widened(NoPrintRule):
            scope = None

        register_rule(Widened)
        assert get_rule("demo-no-print").rule is Widened
        findings = lint_source(
            "print('hi')\n", relpath="repro/harness/mod.py"
        )
        assert [f.rule for f in findings] == ["demo-no-print"]
