"""Per-rule fixture corpus: every rule has a trigger and a clean twin.

The fixtures live under ``fixtures/repro/<package>/`` so that
scope-filtered rules see them at their real package-relative paths
(``package_relpath`` keys on the last ``repro`` path component).
"""

from pathlib import Path

import pytest

from repro.analysis import run_lint
from repro.analysis.config import LintConfig

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> fixture stem (``<stem>_bad.py`` / ``<stem>_good.py``).
CASES = [
    ("det-wall-clock", "repro/sim/det_wall_clock"),
    ("det-shard-merge", "repro/sim/det_shard_merge"),
    ("det-global-rng", "repro/sim/det_global_rng"),
    ("det-unseeded-rng", "repro/sim/det_unseeded_rng"),
    ("det-set-iter", "repro/sim/det_set_iter"),
    ("det-id-key", "repro/sim/det_id_key"),
    ("det-env-read", "repro/sim/det_env_read"),
    ("det-partition-order", "repro/compression/det_partition_order"),
    ("alias-params-write", "repro/core/alias_params_write"),
    ("alias-reduce-out", "repro/core/alias_reduce_out"),
    ("alias-hot-alloc", "repro/core/alias_hot_alloc"),
    ("alias-scratch-self", "repro/core/alias_scratch_self"),
    ("perf-slots", "repro/sim/perf_slots"),
    ("perf-send-closure", "repro/sim/perf_send_closure"),
    ("perf-fstring-name", "repro/sim/perf_fstring_name"),
    ("io-atomic-write", "repro/harness/io_atomic_write"),
    ("contract-elastic", "repro/protocols/contract_elastic"),
    ("contract-universal", "repro/protocols/contract_universal"),
    ("contract-docstring", "repro/protocols/contract_docstring"),
]


def lint_fixture(name: str):
    config = LintConfig(root=FIXTURES, baseline=None)
    return run_lint([FIXTURES / name], config=config)


def test_every_registered_project_rule_has_a_fixture_pair():
    from repro.analysis import UNUSED_SUPPRESSION, registered_rules

    covered = {rule for rule, _ in CASES}
    # The engine-level unused-suppression check is exercised by
    # test_engine.py's dedicated fixtures instead.
    expected = set(registered_rules()) - {UNUSED_SUPPRESSION}
    assert covered == expected


@pytest.mark.parametrize("rule,stem", CASES, ids=[c[0] for c in CASES])
def test_bad_fixture_triggers_exactly_its_rule(rule, stem):
    report = lint_fixture(f"{stem}_bad.py")
    assert [finding.rule for finding in report.findings] == [rule]
    finding = report.findings[0]
    assert finding.path.startswith("repro/")
    assert finding.message
    assert finding.snippet
    assert finding.fingerprint and len(finding.fingerprint) == 16
    assert rule in finding.render()


@pytest.mark.parametrize("rule,stem", CASES, ids=[c[0] for c in CASES])
def test_good_fixture_is_clean(rule, stem):
    report = lint_fixture(f"{stem}_good.py")
    assert report.findings == []
    assert report.ok


def test_scoped_rule_ignores_out_of_scope_package(tmp_path):
    # det-env-read scopes out repro/ml (dataset paths legitimately come
    # from the environment there); the same source in-scope triggers.
    source = 'import os\n\n\ndef knob():\n    return os.getenv("K")\n'
    ml = tmp_path / "repro" / "ml"
    ml.mkdir(parents=True)
    (ml / "mod.py").write_text(source)
    config = LintConfig(root=tmp_path, baseline=None)
    report = run_lint([ml / "mod.py"], rules=["det-env-read"], config=config)
    assert report.findings == []


def test_io_atomic_write_flags_write_text_variant(tmp_path):
    # The second shape the rule knows: Path.write_text(json.dumps(...))
    # truncates the target before writing — same torn-file window.
    source = (
        '"""Module persisting a baseline."""\n\n'
        "import json\n\n\n"
        "def persist(path, payload):\n"
        '    path.write_text(json.dumps(payload, indent=2) + "\\n")\n'
    )
    pkg = tmp_path / "repro" / "harness"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text(source)
    config = LintConfig(root=tmp_path, baseline=None)
    report = run_lint(
        [pkg / "mod.py"], rules=["io-atomic-write"], config=config
    )
    assert [finding.rule for finding in report.findings] == [
        "io-atomic-write"
    ]
    assert "write_text" in report.findings[0].message


def test_contract_elastic_flags_unjustified_opt_out(tmp_path):
    # elastic=False without a reviewed ignore is a conformance-grid
    # regression; with the suppression comment it is sanctioned (the
    # clean twin fixture covers that side).
    source = (
        '"""Module registering ``static-proto``."""\n\n'
        "from repro.protocols.registry import register_protocol\n\n"
        "register_protocol(\n"
        '    "static-proto",\n'
        "    lambda spec: None,\n"
        '    summary="opted out without review",\n'
        "    elastic=False,\n"
        ")\n"
    )
    pkg = tmp_path / "repro" / "protocols"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text(source)
    config = LintConfig(root=tmp_path, baseline=None)
    report = run_lint(
        [pkg / "mod.py"], rules=["contract-elastic"], config=config
    )
    assert [finding.rule for finding in report.findings] == [
        "contract-elastic"
    ]
    assert "elastic=False" in report.findings[0].message
