"""Engine mechanics: suppressions, baseline, config, output, CLI."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    UNUSED_SUPPRESSION,
    Baseline,
    LintConfig,
    lint_source,
    resolve_rules,
    rule_groups,
    rule_table,
    run_lint,
)
from repro.cli import main

FIXTURES = Path(__file__).parent / "fixtures"

BAD_SOURCE = "import time\n\n\ndef stamp():\n    return time.time()\n"


def fixture_config():
    return LintConfig(root=FIXTURES, baseline=None)


class TestSuppressions:
    def test_inline_suppression_silences_the_finding(self):
        report = run_lint(
            [FIXTURES / "repro/sim/suppressed.py"], config=fixture_config()
        )
        assert report.findings == []

    def test_unused_suppression_is_itself_a_finding(self):
        report = run_lint(
            [FIXTURES / "repro/sim/unused_suppression.py"],
            config=fixture_config(),
        )
        assert [f.rule for f in report.findings] == [UNUSED_SUPPRESSION]

    def test_comment_line_suppresses_next_code_line(self):
        source = (
            "import time\n\n\ndef stamp():\n"
            "    # repro: ignore[det-wall-clock]\n"
            "    return time.time()\n"
        )
        findings = lint_source(source, relpath="repro/sim/mod.py")
        assert findings == []

    def test_suppression_in_docstring_text_is_inert(self):
        # Only real comment tokens suppress; prose about the syntax
        # must neither silence findings nor count as unused.
        source = (
            '"""Docs: write # repro: ignore[det-wall-clock] inline."""\n'
            "import time\n\n\ndef stamp():\n    return time.time()\n"
        )
        rules = [f.rule for f in lint_source(source, relpath="repro/sim/m.py")]
        assert rules == ["det-wall-clock"]

    def test_suppressing_an_unknown_rule_id_is_flagged(self):
        source = "X = 1  # repro: ignore[no-such-rule]\n"
        findings = lint_source(source, relpath="repro/sim/mod.py")
        assert [f.rule for f in findings] == [UNUSED_SUPPRESSION]
        assert "no-such-rule" in findings[0].message


class TestBaseline:
    def test_round_trip_silences_known_findings(self, tmp_path):
        findings = lint_source(BAD_SOURCE, relpath="repro/sim/mod.py")
        assert findings
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(path)
        loaded = Baseline.load(path)
        kept, baselined, stale = loaded.apply(findings)
        assert kept == []
        assert baselined == len(findings)
        assert stale == []

    def test_fingerprints_survive_line_renumbering(self):
        before = lint_source(BAD_SOURCE, relpath="repro/sim/mod.py")
        shifted = lint_source(
            "\n\n" + BAD_SOURCE, relpath="repro/sim/mod.py"
        )
        assert [f.fingerprint for f in before] == [
            f.fingerprint for f in shifted
        ]
        assert before[0].line != shifted[0].line

    def test_stale_entries_are_reported(self, tmp_path):
        findings = lint_source(BAD_SOURCE, relpath="repro/sim/mod.py")
        path = tmp_path / "baseline.json"
        Baseline.from_findings(findings).save(path)
        report = run_lint(
            [FIXTURES / "repro/sim/det_wall_clock_good.py"],
            config=LintConfig(root=FIXTURES, baseline=None),
            baseline=Baseline.load(path),
        )
        assert report.ok
        assert len(report.stale_baseline) == len(findings)
        assert "stale" in report.render()

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            Baseline.load(path)

    def test_checked_in_baseline_is_empty(self):
        repo_baseline = Path(__file__).parents[2] / "lint_baseline.json"
        payload = json.loads(repo_baseline.read_text())
        assert payload["version"] == 1
        assert payload["findings"] == []


class TestRegistry:
    def test_groups_resolve_to_member_rules(self):
        names = [info.name for info in resolve_rules(["determinism"])]
        assert "det-wall-clock" in names
        assert all(name.startswith("det-") for name in names)

    def test_unknown_rule_is_a_clear_error(self):
        with pytest.raises(ValueError, match="no-such-rule"):
            resolve_rules(["no-such-rule"])

    def test_rule_table_rows_are_complete(self):
        rows = rule_table()
        assert {row["group"] for row in rows} >= set(rule_groups())
        for row in rows:
            assert row["name"] and row["summary"] and row["rationale"]

    def test_config_disable_skips_rule_unless_explicit(self):
        config = LintConfig(
            root=FIXTURES, baseline=None, disable=["det-wall-clock"]
        )
        path = FIXTURES / "repro/sim/det_wall_clock_bad.py"
        assert run_lint([path], config=config).findings == []
        explicit = run_lint(
            [path], rules=["det-wall-clock"], config=config
        )
        assert [f.rule for f in explicit.findings] == ["det-wall-clock"]


class TestConfig:
    def test_pyproject_block_round_trip(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.lint]\n"
            'paths = ["pkg"]\n'
            'baseline = ""\n'
            'disable = ["perf"]\n'
            'scratch_fields = ["_scratch"]\n'
            'hot_functions = ["send"]\n'
        )
        config = LintConfig.discover(tmp_path)
        assert config.root == tmp_path
        assert config.resolved_paths() == [tmp_path / "pkg"]
        assert config.resolved_baseline() is None
        assert config.disable == ["perf"]
        assert config.scratch_fields == ("_scratch",)
        assert config.hot_functions == ("send",)

    def test_unknown_config_key_is_rejected(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro.lint]\nrule_paths = []\n"
        )
        with pytest.raises(ValueError, match="rule_paths"):
            LintConfig.discover(tmp_path)

    def test_repo_pyproject_parses_with_empty_baseline_target(self):
        config = LintConfig.discover(Path(__file__).parent)
        assert config.paths == ["src/repro"]
        assert config.baseline == "lint_baseline.json"


class TestCLI:
    def test_lint_src_is_clean(self, capsys):
        assert main(["lint"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_lint_finding_exits_nonzero(self, capsys):
        bad = str(FIXTURES / "repro/sim/det_wall_clock_bad.py")
        assert main(["lint", bad, "--baseline", ""]) == 1
        out = capsys.readouterr().out
        assert "det-wall-clock" in out

    def test_lint_json_report(self, capsys):
        bad = str(FIXTURES / "repro/sim/det_wall_clock_bad.py")
        main(["lint", bad, "--baseline", "", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "det-wall-clock"
        assert set(payload["findings"][0]) >= {
            "rule", "path", "line", "col", "message", "fingerprint",
        }

    def test_lint_rules_filter(self, capsys):
        bad = str(FIXTURES / "repro/sim/det_wall_clock_bad.py")
        assert main(["lint", bad, "--baseline", "", "--rules", "perf"]) == 0
        capsys.readouterr()

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "det-wall-clock" in out
        assert "contract-elastic" in out

    def test_lint_write_baseline(self, tmp_path, capsys):
        bad = str(FIXTURES / "repro/sim/det_wall_clock_bad.py")
        baseline = tmp_path / "baseline.json"
        assert main(
            ["lint", bad, "--baseline", str(baseline), "--write-baseline"]
        ) == 0
        capsys.readouterr()
        assert main(["lint", bad, "--baseline", str(baseline)]) == 0
        assert "(1 baselined)" in capsys.readouterr().out
