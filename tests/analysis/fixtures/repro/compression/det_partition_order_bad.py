"""Fixture: det-partition-order flags raw argpartition selection."""

import numpy as np


def top_k_indices(values, k):
    # The returned order is introselect's internal pivot order — ties
    # land differently across numpy versions, and this order becomes
    # the wire indices.
    return np.argpartition(np.abs(values), values.size - k)[values.size - k:]
