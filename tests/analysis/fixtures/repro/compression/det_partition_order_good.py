"""Fixture: deterministic selection — stable sort, or a justified use."""

import numpy as np


def top_k_indices(values, k):
    # kind='stable' pins the tie order to index order.
    order = np.argsort(np.abs(values), kind="stable")
    return np.sort(order[values.size - k:])
