"""Fixture: self holds copies, or views in sanctioned fields."""

import numpy as np


class Worker:
    def __init__(self, model, dim):
        self._scratch = np.empty(dim)
        self.snapshot = model.get_params_copy()
