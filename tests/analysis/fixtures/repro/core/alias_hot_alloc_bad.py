"""Fixture: alias-hot-alloc must flag np.stack inside a loop."""

import numpy as np


def gather(rounds, views):
    out = []
    for _ in range(rounds):
        out.append(np.stack(views))
    return out
