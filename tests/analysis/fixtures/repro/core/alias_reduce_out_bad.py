"""Fixture: alias-reduce-out must flag a reducer with no scratch."""

from repro.core.reducers import mean_reduce


def combine(buffers):
    return mean_reduce(buffers)
