"""Fixture: the stacked buffer is built once, outside the loop."""

import numpy as np


def gather(views):
    return np.stack(views)
