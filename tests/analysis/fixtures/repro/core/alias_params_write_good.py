"""Fixture: mutate an owned copy, publish via set_params."""


def update(model, delta):
    params = model.get_params_copy()
    params += delta
    model.set_params(params)
