"""Fixture: alias-params-write must flag writes into the live view."""


def clobber(model):
    params = model.get_params()
    params += 1.0
    return params
