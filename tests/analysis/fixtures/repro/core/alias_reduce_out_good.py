"""Fixture: reducers accumulate into caller-owned scratch."""

from repro.core.reducers import mean_reduce


def combine(buffers, scratch):
    return mean_reduce(buffers, out=scratch)
