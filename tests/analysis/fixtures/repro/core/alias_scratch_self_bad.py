"""Fixture: alias-scratch-self must flag a view stored on self."""


class Worker:
    def __init__(self, model):
        self.window = model.get_params()[:4]
