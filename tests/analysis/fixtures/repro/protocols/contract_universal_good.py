"""Fixture: ``demo-family`` registration declaring universal=."""

from repro.scenarios.registry import register_scenario

register_scenario(
    "demo-family",
    lambda params, n_workers, streams: None,
    universal=True,
)
