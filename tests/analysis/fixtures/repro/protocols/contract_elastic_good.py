"""Fixture: ``demo-proto`` / ``demo-static-proto`` registrations
satisfying contract-elastic."""

from repro.protocols.registry import register_protocol

register_protocol(
    "demo-proto",
    lambda spec: None,
    summary="fixture protocol",
    elastic=True,
)

register_protocol(  # repro: ignore[contract-elastic]
    "demo-static-proto",
    lambda spec: None,
    summary="fixture protocol with a reviewed elasticity opt-out",
    elastic=False,
)
