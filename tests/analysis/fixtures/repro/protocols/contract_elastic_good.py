"""Fixture: ``demo-proto`` registration declaring elastic=."""

from repro.protocols.registry import register_protocol

register_protocol(
    "demo-proto",
    lambda spec: None,
    summary="fixture protocol",
    elastic=False,
)
