"""Fixture: the docstring table misses the registered family."""

from repro.scenarios.registry import register_scenario

register_scenario(
    "ghost-family",
    lambda params, n_workers, streams: None,
    universal=False,
)
