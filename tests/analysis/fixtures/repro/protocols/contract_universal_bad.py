"""Fixture: ``demo-family`` registration omitting universal=."""

from repro.scenarios.registry import register_scenario

register_scenario(
    "demo-family",
    lambda params, n_workers, streams: None,
)
