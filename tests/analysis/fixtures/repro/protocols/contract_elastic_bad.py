"""Fixture: ``demo-proto`` registration omitting elastic=."""

from repro.protocols.registry import register_protocol

register_protocol(
    "demo-proto",
    lambda spec: None,
    summary="fixture protocol",
)
