"""Fixture: the docstring names ``ghost-family``."""

from repro.scenarios.registry import register_scenario

register_scenario(
    "ghost-family",
    lambda params, n_workers, streams: None,
    universal=False,
)
