"""Trigger: io-atomic-write — bare ``json.dump`` into ``open()``."""

import json


def persist_stats(path, stats):
    json.dump(stats, open(path, "w"), indent=2)
