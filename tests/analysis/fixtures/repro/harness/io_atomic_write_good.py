"""Clean twin: results go through the atomic-write helper."""

from repro.harness.io import atomic_write_json


def persist_stats(path, stats):
    return atomic_write_json(path, stats, indent=2)
