"""Fixture: a suppression that suppresses nothing."""


def clean():
    # repro: ignore[det-wall-clock]
    return 0
