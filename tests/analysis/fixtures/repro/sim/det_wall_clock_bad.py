"""Fixture: det-wall-clock must flag a host-clock read."""

import time


def stamp():
    return time.time()
