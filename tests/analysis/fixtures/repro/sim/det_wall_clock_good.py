"""Fixture: simulated time comes from the environment."""


def stamp(env):
    return env.now
