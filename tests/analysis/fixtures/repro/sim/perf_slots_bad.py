"""Fixture: perf-slots must flag a dict-ful hot event subclass."""


class Event:
    pass


class Ping(Event):
    def __init__(self, env):
        self.env = env
