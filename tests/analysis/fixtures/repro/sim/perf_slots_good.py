"""Fixture: hot event subclasses declare __slots__."""


class Event:
    pass


class Ping(Event):
    __slots__ = ("env",)

    def __init__(self, env):
        self.env = env
