"""Fixture: delivery callbacks are prebuilt, not per-send."""


class Nic:
    def __init__(self, deliver):
        self._deliver_cb = deliver

    def send(self, message):
        return self._deliver_cb
