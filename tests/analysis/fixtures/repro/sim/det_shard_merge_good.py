"""Fixture: cross-shard emission goes through the sanctioned merge."""


def route(ctx, dst_shard, delay, payload):
    ctx.send(dst_shard, delay, payload)
