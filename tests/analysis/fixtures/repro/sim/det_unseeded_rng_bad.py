"""Fixture: det-unseeded-rng must flag default_rng()."""

import numpy as np


def make_rng():
    return np.random.default_rng()
