"""Fixture: det-env-read must flag os.getenv in simulation code."""

import os


def knob():
    return os.getenv("REPRO_KNOB", "0")
