"""Fixture: det-id-key must flag sorting by memory address."""


def order(events):
    return sorted(events, key=id)
