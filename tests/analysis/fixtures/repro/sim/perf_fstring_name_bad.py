"""Fixture: perf-fstring-name must flag per-message formatting."""


class Tracer:
    def deliver(self, message):
        return f"deliver-{message}"
