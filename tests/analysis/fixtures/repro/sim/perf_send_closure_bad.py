"""Fixture: perf-send-closure must flag a per-send lambda."""


class Nic:
    def send(self, message, deliver):
        callback = lambda: deliver(message)  # noqa: E731
        return callback
