"""Fixture: set members are sorted before iteration."""


def fan_out(neighbors, extra):
    for peer in sorted(set(neighbors) | set(extra)):
        yield peer
