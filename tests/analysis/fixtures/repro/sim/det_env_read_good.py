"""Fixture: configuration travels on the spec, not the environment."""


def knob(spec):
    return spec.knob
