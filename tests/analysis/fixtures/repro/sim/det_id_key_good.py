"""Fixture: ordering uses a stable attribute."""


def order(events):
    return sorted(events, key=lambda event: event.seq)
