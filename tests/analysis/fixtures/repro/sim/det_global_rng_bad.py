"""Fixture: det-global-rng must flag a stdlib global draw."""

import random


def draw():
    return random.random()
