"""Fixture: det-set-iter must flag iteration over a bare set."""


def fan_out(neighbors, extra):
    for peer in set(neighbors) | set(extra):
        yield peer
