"""Fixture: draws come from a named seeded stream."""


def draw(streams):
    return streams.stream("draw").random()
