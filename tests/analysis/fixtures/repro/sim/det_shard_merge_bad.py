"""Fixture: det-shard-merge must flag a raw cross-shard queue put."""


def route(out_queue, message):
    out_queue.put(message)
