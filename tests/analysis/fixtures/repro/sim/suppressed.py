"""Fixture: a real finding silenced by an inline suppression."""

import time


def stamp():
    return time.time()  # repro: ignore[det-wall-clock]
