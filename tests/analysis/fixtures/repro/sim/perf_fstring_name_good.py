"""Fixture: names format once at setup; raises are exempt."""


class Tracer:
    def __init__(self, name):
        self._name = f"deliver-{name}"

    def deliver(self, message):
        if message is None:
            raise ValueError(f"no message for {self._name}")
        return self._name
