"""Fixture: generators take an explicit derived seed."""

import numpy as np


def make_rng(seed):
    return np.random.default_rng(seed)
