"""Property tests: lint output is deterministic and order-independent."""

from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import run_lint
from repro.analysis.config import LintConfig

FIXTURES = Path(__file__).parent / "fixtures"

#: A mixed bag: triggering, clean and suppression fixtures.
CORPUS = [
    FIXTURES / "repro/sim/det_wall_clock_bad.py",
    FIXTURES / "repro/sim/det_wall_clock_good.py",
    FIXTURES / "repro/sim/perf_slots_bad.py",
    FIXTURES / "repro/core/alias_params_write_bad.py",
    FIXTURES / "repro/protocols/contract_elastic_bad.py",
    FIXTURES / "repro/sim/suppressed.py",
    FIXTURES / "repro/sim/unused_suppression.py",
]


def report_key(report):
    return [
        (f.path, f.line, f.col, f.rule, f.fingerprint)
        for f in report.findings
    ]


@settings(max_examples=25, deadline=None)
@given(paths=st.permutations(CORPUS))
def test_findings_invariant_under_path_reordering(paths):
    config = LintConfig(root=FIXTURES, baseline=None)
    baseline_order = run_lint(CORPUS, config=config)
    permuted = run_lint(paths, config=config)
    assert report_key(permuted) == report_key(baseline_order)
    assert permuted.files_checked == baseline_order.files_checked


@settings(max_examples=10, deadline=None)
@given(paths=st.lists(st.sampled_from(CORPUS), min_size=1, max_size=7))
def test_lint_is_idempotent_and_dedupes_paths(paths):
    # Duplicate path arguments must not duplicate findings, and two
    # runs over the same inputs are byte-for-byte identical.
    config = LintConfig(root=FIXTURES, baseline=None)
    first = run_lint(paths, config=config)
    second = run_lint(paths, config=config)
    assert first.to_json() == second.to_json()
    assert first.files_checked == len(set(paths))
    seen = report_key(first)
    assert len(seen) == len(set(seen))
