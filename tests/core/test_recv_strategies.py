"""Tests for the Recv/Reduce strategies against a minimal fake worker."""

import numpy as np
import pytest

from repro.core import (
    BackupRecv,
    StalenessRecv,
    StandardRecv,
    Update,
    UpdateQueue,
    backup_config,
    make_recv_strategy,
    staleness_config,
)
from repro.core.config import STANDARD
from repro.sim import Environment


class FakeWorker:
    """The slice of HopWorker the strategies interact with."""

    def __init__(self, env, in_neighbors, wid=0):
        self.env = env
        self.wid = wid
        self.in_neighbors = tuple(in_neighbors)
        self.in_degree = len(self.in_neighbors)
        self.update_queue = UpdateQueue(env, owner=wid)
        self.n_extra_updates = 0
        self.n_staleness_blocks = 0
        self.n_cache_hits = 0
        self.reduce_scratch = None
        # Membership-plane slice of the contract (static double).
        self.membership = None
        self._in_activation = {}

    def expected_in(self, iteration):
        return self.in_degree


def upd(iteration, sender, value):
    return Update(np.full(2, float(value)), iteration, sender)


def run_recv(env, strategy, worker, iteration):
    def proc():
        result = yield from strategy.recv_reduce(worker, iteration)
        return result

    return env.process(proc())


class TestStandardRecv:
    def test_waits_for_all_in_neighbors(self):
        env = Environment()
        worker = FakeWorker(env, in_neighbors=(0, 1, 2))
        strategy = StandardRecv()
        p = run_recv(env, strategy, worker, 0)
        worker.update_queue.enqueue(upd(0, 0, 3.0))
        worker.update_queue.enqueue(upd(0, 1, 6.0))
        env.run(until=1.0)
        assert not p.triggered
        worker.update_queue.enqueue(upd(0, 2, 9.0))
        env.run()
        assert np.allclose(p.value, 6.0)

    def test_ignores_other_iterations(self):
        env = Environment()
        worker = FakeWorker(env, in_neighbors=(0, 1))
        strategy = StandardRecv()
        p = run_recv(env, strategy, worker, 3)
        worker.update_queue.enqueue(upd(2, 0, 100.0))
        worker.update_queue.enqueue(upd(3, 0, 1.0))
        worker.update_queue.enqueue(upd(3, 1, 3.0))
        env.run()
        assert np.allclose(p.value, 2.0)


class TestBackupRecv:
    def test_advances_with_missing_neighbor(self):
        env = Environment()
        worker = FakeWorker(env, in_neighbors=(0, 1, 2))
        strategy = BackupRecv(n_backup=1)
        p = run_recv(env, strategy, worker, 0)
        worker.update_queue.enqueue(upd(0, 0, 2.0))
        worker.update_queue.enqueue(upd(0, 1, 4.0))
        env.run()
        # Only 2 of 3 updates needed; reduce averages what arrived.
        assert np.allclose(p.value, 3.0)

    def test_scoops_extra_updates(self):
        env = Environment()
        worker = FakeWorker(env, in_neighbors=(0, 1, 2))
        strategy = BackupRecv(n_backup=1)
        for sender, value in ((0, 1.0), (1, 2.0), (2, 6.0)):
            worker.update_queue.enqueue(upd(0, sender, value))
        p = run_recv(env, strategy, worker, 0)
        env.run()
        # All three arrived before the dequeue: all are used.
        assert np.allclose(p.value, 3.0)
        assert worker.n_extra_updates == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BackupRecv(0)
        env = Environment()
        worker = FakeWorker(env, in_neighbors=(0,))
        strategy = BackupRecv(1)
        with pytest.raises(ValueError, match="no required updates"):
            list(strategy.recv_reduce(worker, 0))


class TestStalenessRecv:
    def test_uses_cached_fresh_update_without_blocking(self):
        env = Environment()
        worker = FakeWorker(env, in_neighbors=(0, 1), wid=0)
        strategy = StalenessRecv(staleness=3)
        # Iteration 0: both neighbors deliver.
        worker.update_queue.enqueue(upd(0, 0, 1.0))
        worker.update_queue.enqueue(upd(0, 1, 1.0))
        p0 = run_recv(env, strategy, worker, 0)
        env.run()
        assert p0.triggered

        # Iteration 1: neighbor 1 silent; its cached iter-0 update is
        # within the bound (floor = 1 - 3 < 0), so no blocking.
        worker.update_queue.enqueue(upd(1, 0, 5.0))
        p1 = run_recv(env, strategy, worker, 1)
        env.run()
        assert p1.triggered
        # Only the newly received update contributes to the reduce.
        assert np.allclose(p1.value, 5.0)
        assert worker.n_cache_hits == 1

    def test_blocks_when_cache_too_stale(self):
        env = Environment()
        worker = FakeWorker(env, in_neighbors=(0, 1), wid=0)
        strategy = StalenessRecv(staleness=2)
        worker.update_queue.enqueue(upd(0, 0, 1.0))
        worker.update_queue.enqueue(upd(0, 1, 1.0))
        p0 = run_recv(env, strategy, worker, 0)
        env.run()

        # Iteration 5 with s=2: floor 3 > cached iteration 0 -> block.
        worker.update_queue.enqueue(upd(5, 0, 1.0))
        p5 = run_recv(env, strategy, worker, 5)
        env.run(until=1.0)
        assert not p5.triggered
        assert worker.n_staleness_blocks >= 1
        # A fresh-enough update releases it.
        worker.update_queue.enqueue(upd(4, 1, 3.0))
        env.run()
        assert p5.triggered

    def test_equation_2_weighting_applied(self):
        env = Environment()
        worker = FakeWorker(env, in_neighbors=(0, 1), wid=0)
        strategy = StalenessRecv(staleness=4)
        # Iteration 4, floor 0: fresh update (iter 4, weight 5) and
        # stale one (iter 0, weight 1).
        worker.update_queue.enqueue(upd(4, 0, 0.0))
        worker.update_queue.enqueue(upd(0, 1, 6.0))
        p = run_recv(env, strategy, worker, 4)
        env.run()
        assert np.allclose(p.value, (5 * 0.0 + 1 * 6.0) / 6.0)

    def test_keeps_only_newest_per_neighbor(self):
        env = Environment()
        worker = FakeWorker(env, in_neighbors=(0,), wid=0)
        strategy = StalenessRecv(staleness=3)
        worker.update_queue.enqueue(upd(0, 0, 100.0))
        worker.update_queue.enqueue(upd(2, 0, 7.0))
        p = run_recv(env, strategy, worker, 2)
        env.run()
        assert np.allclose(p.value, 7.0)

    def test_freshest_iteration_tracking(self):
        strategy = StalenessRecv(staleness=2)
        assert strategy.freshest_iteration(0) == -1
        strategy._absorb([upd(3, 0, 1.0)])
        assert strategy.freshest_iteration(0) == 3
        strategy._absorb([upd(1, 0, 1.0)])  # older: ignored
        assert strategy.freshest_iteration(0) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            StalenessRecv(0)


class TestFactory:
    def test_selects_by_mode(self):
        assert isinstance(make_recv_strategy(STANDARD), StandardRecv)
        assert isinstance(make_recv_strategy(backup_config(1)), BackupRecv)
        assert isinstance(
            make_recv_strategy(staleness_config(2)), StalenessRecv
        )
