"""The zero-copy parameter plane: packing, aliasing rules, reducers.

PR 4's tentpole restructured models around one contiguous flat buffer
and made the reducers accumulate into reusable scratch.  These tests
pin the ownership contract (views alias, copies don't), the
bit-exactness of the new accumulation order, and the dtype-drift fix
in ``weighted_reduce``.
"""

import numpy as np
import pytest

from repro.core.reducers import (
    mean_reduce,
    staleness_weighted_reduce,
    weighted_reduce,
)
from repro.core.update import Update
from repro.ml.models import build_mlp, build_svm
from repro.ml.params import Parameter, pack_parameters, readonly_view


def make_model(dtype=np.float64):
    model = build_mlp(np.random.default_rng(0), 6, [5], 3)
    if dtype is not np.float64:
        model.astype(dtype)
    return model


class TestPackParameters:
    def test_values_preserved_and_aliased(self):
        rng = np.random.default_rng(1)
        params = [
            Parameter(rng.normal(size=(3, 4)), "a"),
            Parameter(rng.normal(size=(4,)), "b"),
        ]
        originals = [p.data.copy() for p in params]
        flat, flat_grad = pack_parameters(params)
        assert flat.size == 16 and flat_grad.size == 16
        for p, original in zip(params, originals):
            np.testing.assert_array_equal(p.data, original)
            # Views share memory with the flat buffer in both directions.
            assert p.data.base is flat
            assert p.grad.base is flat_grad
        flat[:] = 0.0
        assert (params[0].data == 0).all() and (params[1].data == 0).all()
        params[0].grad += 1.0
        assert (flat_grad[:12] == 1.0).all()

    def test_mixed_dtypes_promote_like_concatenate(self):
        params = [
            Parameter(np.ones((2,), dtype=np.float32)),
            Parameter(np.ones((2,), dtype=np.float64)),
        ]
        flat, _ = pack_parameters(params)
        assert flat.dtype == np.float64

    def test_empty_list(self):
        flat, grad = pack_parameters([])
        assert flat.size == 0 and grad.size == 0


class TestModelFlatBuffer:
    def test_get_params_is_readonly_live_view(self):
        model = make_model()
        view = model.get_params()
        assert not view.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            view[0] = 1.0
        # The view tracks set_params (aliasing, not a snapshot).
        new = np.arange(model.dim, dtype=float)
        model.set_params(new)
        np.testing.assert_array_equal(view, new)

    def test_get_params_copy_is_stable(self):
        model = make_model()
        snapshot = model.get_params_copy()
        before = snapshot.copy()
        model.set_params(np.zeros(model.dim))
        np.testing.assert_array_equal(snapshot, before)

    def test_set_params_size_mismatch_raises(self):
        model = make_model()
        with pytest.raises(ValueError):
            model.set_params(np.zeros(model.dim + 1))

    def test_grad_is_view_of_flat_grad_buffer(self):
        model = make_model()
        rng = np.random.default_rng(2)
        x = rng.normal(size=(8, 6))
        y = rng.integers(0, 3, size=8)
        _, grad = model.loss_and_grad(x, y)
        assert not grad.flags.writeable
        grad_before = grad.copy()
        # The next compute overwrites the same buffer in place.
        model.loss_and_grad(x[::-1].copy(), y[::-1].copy())
        assert not np.array_equal(grad, grad_before)

    def test_astype_repacks(self):
        model = make_model()
        model.astype(np.float32)
        assert model.get_params().dtype == np.float32
        rng = np.random.default_rng(3)
        loss, grad = model.loss_and_grad(
            rng.normal(size=(4, 6)).astype(np.float32),
            rng.integers(0, 3, size=4),
        )
        assert np.isfinite(loss)
        assert grad.dtype == np.float32

    def test_training_still_works_end_to_end(self):
        model = make_model()
        rng = np.random.default_rng(4)
        x = rng.normal(size=(32, 6))
        y = rng.integers(0, 3, size=32)
        params = model.get_params_copy()
        first_loss = None
        for _ in range(30):
            model.set_params(params)
            loss, grad = model.loss_and_grad(x, y)
            if first_loss is None:
                first_loss = loss
            params = params - 0.5 * grad
        assert loss < first_loss


def updates(arrays):
    return [Update(np.asarray(a), i, i) for i, a in enumerate(arrays)]


class TestReducers:
    def test_mean_matches_stack_mean_bitwise(self):
        rng = np.random.default_rng(5)
        for dtype in (np.float32, np.float64):
            for k in (1, 2, 3, 7, 16):
                us = updates(
                    [rng.normal(size=33).astype(dtype) for _ in range(k)]
                )
                expected = np.stack([u.params for u in us]).mean(axis=0)
                got = mean_reduce(us)
                assert got.dtype == expected.dtype
                assert got.tobytes() == expected.tobytes()

    def test_out_buffer_reused_when_compatible(self):
        rng = np.random.default_rng(6)
        us = updates([rng.normal(size=9) for _ in range(3)])
        out = np.empty(9)
        result = mean_reduce(us, out=out)
        assert result is out
        # Incompatible dtype: a fresh buffer is returned instead.
        us32 = updates(
            [rng.normal(size=9).astype(np.float32) for _ in range(3)]
        )
        result32 = mean_reduce(us32, out=out)
        assert result32 is not out and result32.dtype == np.float32

    def test_reduce_does_not_alias_inputs(self):
        us = updates([np.ones(4), 3.0 * np.ones(4)])
        result = mean_reduce(us)
        result += 100.0
        np.testing.assert_array_equal(us[0].params, np.ones(4))
        np.testing.assert_array_equal(us[1].params, 3.0 * np.ones(4))

    def test_weighted_keeps_float32_dtype(self):
        """Satellite regression: float64 weights must not promote a
        float32 reduce to float64 mid-flight."""
        rng = np.random.default_rng(7)
        us = updates(
            [rng.normal(size=17).astype(np.float32) for _ in range(4)]
        )
        result = weighted_reduce(us, [1.0, 2.0, 3.0, 4.0])
        assert result.dtype == np.float32

    def test_weighted_matches_legacy_float64_bitwise(self):
        rng = np.random.default_rng(8)
        us = updates([rng.normal(size=21) for _ in range(5)])
        weights = rng.uniform(0.5, 3.0, size=5)
        stacked = np.stack([u.params for u in us])
        legacy = (weights[:, None] * stacked).sum(axis=0) / weights.sum()
        got = weighted_reduce(us, weights)
        assert got.tobytes() == legacy.tobytes()

    def test_weighted_validation(self):
        us = updates([np.ones(3), np.ones(3)])
        with pytest.raises(ValueError):
            weighted_reduce(us, [1.0])
        with pytest.raises(ValueError):
            weighted_reduce(us, [-1.0, 1.0])
        with pytest.raises(ValueError):
            weighted_reduce(us, [0.0, 0.0])
        with pytest.raises(ValueError):
            mean_reduce([])

    def test_staleness_weighted_uses_scratch(self):
        us = [Update(np.full(5, float(i + 1)), i + 3, i) for i in range(3)]
        out = np.empty(5)
        result = staleness_weighted_reduce(us, iteration=5, staleness=3, out=out)
        assert result is out
        # weights = iter - (k - s) + 1 = [2, 3, 4]
        expected = (
            2.0 * us[0].params + 3.0 * us[1].params + 4.0 * us[2].params
        ) / 9.0
        np.testing.assert_allclose(result, expected)


class TestOptimizerInPlace:
    def test_step_matches_legacy_arithmetic_bitwise(self):
        from repro.ml.optim import SGD

        rng = np.random.default_rng(9)
        params = rng.normal(size=40)
        grads = [rng.normal(size=40) for _ in range(6)]

        new = SGD(lr=0.1, momentum=0.9, weight_decay=1e-4)
        velocity = None
        for grad in grads:
            delta = new.step(params, grad, 0)
            # Legacy out-of-place reference.
            g = np.asarray(grad, dtype=np.float64)
            g = g + 1e-4 * np.asarray(params, dtype=np.float64)
            velocity = g if velocity is None else 0.9 * velocity + g
            legacy = -0.1 * velocity
            assert delta.tobytes() == legacy.tobytes()
            params = params + delta

    def test_returned_delta_is_owned(self):
        from repro.ml.optim import SGD

        opt = SGD(lr=0.1, momentum=0.9, weight_decay=1e-4)
        params = np.ones(8)
        first = opt.step(params, np.ones(8), 0)
        snapshot = first.copy()
        opt.step(params, 2.0 * np.ones(8), 1)
        np.testing.assert_array_equal(first, snapshot)

    def test_readonly_grad_view_accepted(self):
        from repro.ml.optim import SGD

        grad = readonly_view(np.ones(8))
        for opt in (
            SGD(lr=0.1),
            SGD(lr=0.1, momentum=0.9),
            SGD(lr=0.1, momentum=0.9, weight_decay=1e-4),
        ):
            delta = opt.step(np.ones(8), grad, 0)
            assert delta.flags.writeable
