"""Tests for HopConfig validation and the reduce operators."""

import numpy as np
import pytest

from repro.core import (
    HopConfig,
    SkipConfig,
    Update,
    backup_config,
    mean_reduce,
    staleness_config,
    staleness_weighted_reduce,
    weighted_reduce,
)


def upd(iteration, sender, value):
    return Update(np.full(2, float(value)), iteration, sender)


class TestHopConfig:
    def test_defaults_valid(self):
        config = HopConfig()
        assert config.mode == "standard"
        assert config.use_token_queues

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            HopConfig(mode="chaos")

    def test_backup_needs_count(self):
        with pytest.raises(ValueError):
            HopConfig(mode="backup")

    def test_backup_requires_token_queues(self):
        with pytest.raises(ValueError, match="token"):
            HopConfig(mode="backup", n_backup=1, use_token_queues=False)

    def test_staleness_needs_bound(self):
        with pytest.raises(ValueError):
            HopConfig(mode="staleness")

    def test_skip_requires_token_queues(self):
        with pytest.raises(ValueError, match="token"):
            HopConfig(
                mode="backup",
                n_backup=1,
                use_token_queues=False,
                skip=SkipConfig(),
            )

    def test_skip_rejected_in_standard_mode(self):
        with pytest.raises(ValueError, match="backup or staleness"):
            HopConfig(mode="standard", skip=SkipConfig())

    def test_staleness_forces_tagged_queue(self):
        config = staleness_config(staleness=3)
        assert config.effective_queue_impl == "tagged"

    def test_invalid_graph_and_impl(self):
        with pytest.raises(ValueError):
            HopConfig(computation_graph="quantum")
        with pytest.raises(ValueError):
            HopConfig(queue_impl="linked-list")

    def test_skip_config_validation(self):
        with pytest.raises(ValueError):
            SkipConfig(max_skip=0)
        with pytest.raises(ValueError):
            SkipConfig(trigger_lag=0)

    def test_factories(self):
        b = backup_config(n_backup=2, max_ig=6)
        assert b.mode == "backup" and b.n_backup == 2 and b.max_ig == 6
        s = staleness_config(staleness=4, max_ig=7)
        assert s.mode == "staleness" and s.staleness == 4

    def test_describe_mentions_knobs(self):
        desc = backup_config(1, 4, skip=SkipConfig(max_skip=10)).describe()
        assert "n_buw=1" in desc
        assert "skip" in desc


class TestMeanReduce:
    def test_averages(self):
        out = mean_reduce([upd(0, 0, 1.0), upd(0, 1, 3.0)])
        assert np.allclose(out, 2.0)

    def test_single_update_identity(self):
        out = mean_reduce([upd(0, 0, 5.0)])
        assert np.allclose(out, 5.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_reduce([])


class TestWeightedReduce:
    def test_weighted_average(self):
        out = weighted_reduce([upd(0, 0, 0.0), upd(0, 1, 4.0)], [1.0, 3.0])
        assert np.allclose(out, 3.0)

    def test_normalization(self):
        out = weighted_reduce([upd(0, 0, 2.0)], [17.0])
        assert np.allclose(out, 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_reduce([], [])
        with pytest.raises(ValueError):
            weighted_reduce([upd(0, 0, 1.0)], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_reduce([upd(0, 0, 1.0)], [-1.0])
        with pytest.raises(ValueError):
            weighted_reduce([upd(0, 0, 1.0)], [0.0])


class TestStalenessWeightedReduce:
    def test_equation_2_weights(self):
        """weight(u) = Iter(u) - (k - s) + 1."""
        k, s = 10, 4  # floor = 6
        updates = [upd(10, 0, 0.0), upd(6, 1, 8.0)]
        # Weights: 10-6+1=5 for the fresh one, 6-6+1=1 for the stale one.
        out = staleness_weighted_reduce(updates, iteration=k, staleness=s)
        assert np.allclose(out, (5 * 0.0 + 1 * 8.0) / 6.0)

    def test_fresher_updates_dominate(self):
        k, s = 5, 5
        fresh = upd(5, 0, 1.0)
        stale = upd(0, 1, -1.0)
        out = staleness_weighted_reduce([fresh, stale], k, s)
        assert out[0] > 0  # pulled toward the fresh value

    def test_equal_iterations_reduce_to_mean(self):
        updates = [upd(3, 0, 1.0), upd(3, 1, 5.0)]
        out = staleness_weighted_reduce(updates, iteration=3, staleness=2)
        assert np.allclose(out, 3.0)

    def test_future_updates_allowed(self):
        # A neighbor ahead of us contributes with a larger weight.
        updates = [upd(7, 0, 2.0), upd(5, 1, 2.0)]
        out = staleness_weighted_reduce(updates, iteration=5, staleness=2)
        assert np.allclose(out, 2.0)

    def test_below_floor_rejected(self):
        with pytest.raises(ValueError, match="older than the staleness floor"):
            staleness_weighted_reduce([upd(0, 0, 1.0)], iteration=10, staleness=2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            staleness_weighted_reduce([], 0, 1)
