"""Property-based tests for Hop's queue structures (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import RotatingUpdateQueue, TokenQueue, Update, UpdateQueue
from repro.sim import Environment


def upd(iteration, sender):
    return Update(np.array([float(iteration)]), iteration, sender)


@st.composite
def gap_bounded_schedule(draw):
    """Enqueue events for iterations 0..K with gap <= max_ig.

    Produces (max_ig, n_senders, enqueue order) such that every
    iteration receives exactly one update per sender and no update is
    more than ``max_ig`` iterations ahead of the oldest unconsumed one
    — the regime Theorem 2 guarantees and the rotating queue assumes.
    """
    max_ig = draw(st.integers(min_value=1, max_value=4))
    n_senders = draw(st.integers(min_value=1, max_value=4))
    n_iterations = draw(st.integers(min_value=1, max_value=8))
    events = []
    for k in range(n_iterations):
        senders = list(range(n_senders))
        order = draw(st.permutations(senders))
        events.extend((k, s) for s in order)
    # Interleave slightly: within a window of max_ig iterations the
    # arrival order may shuffle across iterations.
    window = max_ig * n_senders
    shuffled = []
    buffer = []
    for event in events:
        buffer.append(event)
        if len(buffer) > window:
            shuffled.append(buffer.pop(0))
    # Drain remaining in a drawn order restricted to the window.
    while buffer:
        index = draw(st.integers(min_value=0, max_value=len(buffer) - 1))
        shuffled.append(buffer.pop(index))
    return max_ig, n_senders, n_iterations, shuffled


@settings(max_examples=50, deadline=None)
@given(schedule=gap_bounded_schedule())
def test_rotating_queue_equivalent_to_tagged(schedule):
    """Section 6.1: the rotating implementation is observationally
    equivalent to the single tagged queue on gap-bounded schedules."""
    max_ig, n_senders, n_iterations, events = schedule

    def drive(queue):
        env = queue.env
        results = []

        def consumer(env, queue):
            for k in range(n_iterations):
                got = yield queue.dequeue(n_senders, iteration=k)
                results.append(sorted((u.iteration, u.sender) for u in got))

        env.process(consumer(env, queue))
        for k, s in events:
            queue.enqueue(upd(k, s))
        env.run()
        return results

    tagged = drive(UpdateQueue(Environment()))
    rotating = drive(RotatingUpdateQueue(Environment(), max_ig=max_ig))
    assert tagged == rotating
    assert len(tagged) == n_iterations


@settings(max_examples=50, deadline=None)
@given(
    operations=st.lists(
        st.tuples(st.sampled_from(["put", "acquire"]),
                  st.integers(min_value=0, max_value=3)),
        max_size=40,
    ),
    initial=st.integers(min_value=0, max_value=5),
)
def test_token_queue_conservation(operations, initial):
    """Tokens are conserved: inserted - acquired == size, always >= 0."""
    env = Environment()
    queue = TokenQueue(env, owner=0, consumer=1, initial=initial)
    pending = []
    for op, count in operations:
        if op == "put":
            queue.put(count)
        else:
            pending.append(queue.acquire(count))
        satisfied = queue.total_acquired
        assert queue.size() == queue.total_inserted - satisfied
        assert queue.size() >= 0


@settings(max_examples=50, deadline=None)
@given(
    entries=st.lists(
        st.tuples(st.integers(min_value=0, max_value=6),
                  st.integers(min_value=0, max_value=3)),
        max_size=30,
    ),
    floor=st.integers(min_value=0, max_value=6),
)
def test_discard_older_than_is_exact(entries, floor):
    env = Environment()
    queue = UpdateQueue(env)
    for iteration, sender in entries:
        queue.enqueue(upd(iteration, sender))
    expected_drop = sum(1 for k, _ in entries if k < floor)
    assert queue.discard_older_than(floor) == expected_drop
    assert queue.size() == len(entries) - expected_drop


@settings(max_examples=30, deadline=None)
@given(
    entries=st.lists(
        st.tuples(st.integers(min_value=0, max_value=5),
                  st.integers(min_value=0, max_value=2)),
        min_size=1,
        max_size=25,
    ),
)
def test_dequeue_available_partitions_by_tag(entries):
    """dequeue_available(iter) removes exactly the matches, in order."""
    env = Environment()
    queue = UpdateQueue(env)
    for iteration, sender in entries:
        queue.enqueue(upd(iteration, sender))
    target = entries[0][0]
    taken = queue.dequeue_available(iteration=target)
    assert [(u.iteration, u.sender) for u in taken] == [
        (k, s) for k, s in entries if k == target
    ]
    assert queue.size() == len(entries) - len(taken)
