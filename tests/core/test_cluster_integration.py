"""End-to-end protocol tests: full training runs on the simulator.

These are the load-bearing tests: every protocol variant must run
deadlock-free, converge, and respect its iteration-gap bound.
"""

import numpy as np
import pytest

from repro.core import (
    HopCluster,
    HopConfig,
    STANDARD,
    SkipConfig,
    backup_config,
    gap_bound_matrix,
    staleness_config,
)
from repro.graphs import chain, ring, ring_based
from repro.hetero import (
    ComputeModel,
    DeterministicSlowdown,
    RandomSlowdown,
)
from repro.ml import build_svm, synthetic_webspam
from repro.ml.optim import SGD
from repro.sim import RngStreams


N_FEATURES = 24


@pytest.fixture(scope="module")
def dataset():
    return synthetic_webspam(
        np.random.default_rng(0),
        n_train=384,
        n_test=128,
        n_features=N_FEATURES,
    )


def make_cluster(
    dataset,
    config=STANDARD,
    topology=None,
    protocol="hop",
    slowdown=None,
    n=8,
    max_iter=30,
    seed=1,
    **kwargs,
):
    topology = topology or ring_based(n)
    compute = ComputeModel(
        base_time=0.05, n_workers=topology.n, slowdown=slowdown
    )
    return HopCluster(
        topology=topology,
        config=config,
        model_factory=lambda rng: build_svm(rng, N_FEATURES),
        dataset=dataset,
        optimizer=SGD(lr=1.0, momentum=0.9, weight_decay=1e-7),
        compute_model=compute,
        protocol=protocol,
        max_iter=max_iter,
        seed=seed,
        **kwargs,
    )


class TestStandardProtocol:
    def test_all_workers_complete(self, dataset):
        run = make_cluster(dataset).run()
        assert run.iterations_completed == [30] * 8

    def test_loss_decreases(self, dataset):
        run = make_cluster(dataset, max_iter=50).run()
        _, losses = run.smoothed_loss_series(window=16)
        assert losses[-1] < 0.7 * losses[0]

    def test_gap_respects_theorem_2(self, dataset):
        run = make_cluster(dataset, config=HopConfig(max_ig=3)).run()
        bounds = gap_bound_matrix(
            ring_based(8), "standard+tokens", max_ig=3
        )
        assert run.gap.violations(bounds) == {}

    def test_gap_respects_theorem_1_without_tokens(self, dataset):
        config = HopConfig(use_token_queues=False)
        run = make_cluster(dataset, config=config).run()
        bounds = gap_bound_matrix(ring_based(8), "standard")
        assert run.gap.violations(bounds) == {}

    def test_deterministic_given_seed(self, dataset):
        run_a = make_cluster(dataset, seed=5).run()
        run_b = make_cluster(dataset, seed=5).run()
        assert run_a.wall_time == run_b.wall_time
        assert np.array_equal(run_a.final_params, run_b.final_params)
        assert run_a.final_loss == run_b.final_loss

    def test_different_seeds_differ(self, dataset):
        run_a = make_cluster(dataset, seed=5).run()
        run_b = make_cluster(dataset, seed=6).run()
        assert not np.array_equal(run_a.final_params, run_b.final_params)

    def test_workers_reach_consensus(self, dataset):
        run = make_cluster(dataset, max_iter=60).run()
        # Final replicas should be close (gossip averaging works).
        scale = float(np.linalg.norm(run.final_params)) + 1e-9
        assert run.consensus / scale < 0.2

    def test_serial_computation_graph_runs(self, dataset):
        config = HopConfig(computation_graph="serial")
        run = make_cluster(dataset, config=config, max_iter=40).run()
        _, losses = run.smoothed_loss_series(window=16)
        assert losses[-1] < losses[0]

    def test_tagged_queue_impl_equivalent_wall_time(self, dataset):
        rotating = make_cluster(
            dataset, config=HopConfig(queue_impl="rotating")
        ).run()
        tagged = make_cluster(
            dataset, config=HopConfig(queue_impl="tagged")
        ).run()
        assert rotating.wall_time == pytest.approx(tagged.wall_time)
        assert np.allclose(rotating.final_params, tagged.final_params)

    def test_bounded_update_queues_do_not_overflow(self, dataset):
        config = HopConfig(
            queue_impl="tagged", bound_update_queues=True, max_ig=3
        )
        run = make_cluster(dataset, config=config).run()  # no OverflowError
        assert run.wall_time > 0


class TestBackupWorkers:
    def test_runs_and_converges(self, dataset):
        run = make_cluster(dataset, config=backup_config(1, 4)).run()
        _, losses = run.smoothed_loss_series(window=16)
        assert losses[-1] < losses[0]

    def test_faster_than_standard_under_random_slowdown(self, dataset):
        n = 8
        slow = lambda: RandomSlowdown(  # noqa: E731
            RngStreams(11), factor=6.0, probability=1.0 / n
        )
        std = make_cluster(
            dataset, config=STANDARD, slowdown=slow(), max_iter=40
        ).run()
        bkp = make_cluster(
            dataset, config=backup_config(1, 4), slowdown=slow(), max_iter=40
        ).run()
        assert bkp.wall_time < std.wall_time

    def test_gap_respects_token_bound(self, dataset):
        slow = RandomSlowdown(RngStreams(3), factor=6.0, probability=0.2)
        run = make_cluster(
            dataset, config=backup_config(1, 3), slowdown=slow, max_iter=40
        ).run()
        bounds = gap_bound_matrix(ring_based(8), "backup+tokens", max_ig=3)
        assert run.gap.violations(bounds) == {}

    def test_rejects_excessive_backup_count(self, dataset):
        # ring(8) has in-degree 3 (with self); n_backup=3 leaves zero.
        with pytest.raises(ValueError, match="n_backup"):
            make_cluster(
                dataset,
                topology=ring(8),
                config=backup_config(3, 4),
            )

    def test_extra_updates_counted(self, dataset):
        run = make_cluster(dataset, config=backup_config(1, 4)).run()
        total_extra = sum(
            stats.get("n_extra_updates", 0) for stats in run.worker_stats
        )
        assert total_extra > 0  # homogeneous: extras arrive constantly


class TestBoundedStaleness:
    def test_runs_and_converges(self, dataset):
        run = make_cluster(dataset, config=staleness_config(3, 6)).run()
        _, losses = run.smoothed_loss_series(window=16)
        assert losses[-1] < losses[0]

    def test_faster_than_standard_under_random_slowdown(self, dataset):
        n = 8
        slow = lambda: RandomSlowdown(  # noqa: E731
            RngStreams(13), factor=6.0, probability=1.0 / n
        )
        std = make_cluster(
            dataset, config=STANDARD, slowdown=slow(), max_iter=40
        ).run()
        stale = make_cluster(
            dataset,
            config=staleness_config(5, 8),
            slowdown=slow(),
            max_iter=40,
        ).run()
        assert stale.wall_time < std.wall_time

    def test_gap_respects_staleness_token_bound(self, dataset):
        slow = RandomSlowdown(RngStreams(17), factor=6.0, probability=0.2)
        run = make_cluster(
            dataset,
            config=staleness_config(2, 4),
            slowdown=slow,
            max_iter=40,
        ).run()
        bounds = gap_bound_matrix(
            ring_based(8), "staleness+tokens", max_ig=4, staleness=2
        )
        assert run.gap.violations(bounds) == {}


class TestSkippingIterations:
    def test_straggler_skips_and_cluster_speeds_up(self, dataset):
        slow = DeterministicSlowdown({0: 4.0})
        no_skip = make_cluster(
            dataset,
            config=backup_config(1, 5),
            slowdown=slow,
            max_iter=40,
        ).run()
        with_skip = make_cluster(
            dataset,
            config=backup_config(
                1, 5, skip=SkipConfig(max_skip=10, trigger_lag=2)
            ),
            slowdown=slow,
            max_iter=40,
        ).run()
        assert with_skip.wall_time < no_skip.wall_time
        assert with_skip.iterations_skipped[0] > 0
        # Only the straggler skips.
        assert sum(with_skip.iterations_skipped[1:]) == 0

    def test_skip_with_staleness_mode(self, dataset):
        slow = DeterministicSlowdown({2: 4.0})
        run = make_cluster(
            dataset,
            config=staleness_config(
                4, 5, skip=SkipConfig(max_skip=10, trigger_lag=2)
            ),
            slowdown=slow,
            max_iter=40,
        ).run()
        assert run.iterations_skipped[2] > 0
        _, losses = run.smoothed_loss_series(window=16)
        assert losses[-1] < losses[0]

    def test_straggler_iteration_duration_tamed(self, dataset):
        """Figure 18's shape: skipping cuts effective iteration time."""
        slow = DeterministicSlowdown({0: 4.0})
        no_skip = make_cluster(
            dataset, config=backup_config(1, 5), slowdown=slow, max_iter=40
        ).run()
        with_skip = make_cluster(
            dataset,
            config=backup_config(
                1, 5, skip=SkipConfig(max_skip=10, trigger_lag=2)
            ),
            slowdown=slow,
            max_iter=40,
        ).run()
        # Mean iteration duration of the non-straggler workers drops.
        def healthy_mean(run):
            return np.mean(
                [
                    s["iteration_duration_mean"]
                    for s in run.worker_stats
                    if s["wid"] != 0
                ]
            )

        assert healthy_mean(with_skip) < healthy_mean(no_skip)


class TestNotifyAck:
    def test_runs_and_converges(self, dataset):
        run = make_cluster(dataset, protocol="notify_ack").run()
        assert run.protocol == "notify_ack"
        _, losses = run.smoothed_loss_series(window=16)
        assert losses[-1] < losses[0]

    def test_gap_respects_notify_ack_bound(self, dataset):
        slow = RandomSlowdown(RngStreams(23), factor=6.0, probability=0.2)
        run = make_cluster(
            dataset, protocol="notify_ack", slowdown=slow, max_iter=40
        ).run()
        bounds = gap_bound_matrix(ring_based(8), "notify_ack")
        assert run.gap.violations(bounds) == {}

    def test_hop_beats_notify_ack_under_slowdown(self, dataset):
        """The paper's motivating claim (Section 3.3)."""
        slow = lambda: RandomSlowdown(  # noqa: E731
            RngStreams(29), factor=6.0, probability=0.15
        )
        ack = make_cluster(
            dataset, protocol="notify_ack", slowdown=slow(), max_iter=40
        ).run()
        hop = make_cluster(
            dataset,
            config=backup_config(1, 4),
            slowdown=slow(),
            max_iter=40,
        ).run()
        assert hop.wall_time < ack.wall_time


class TestTrainingRunAnalysis:
    def test_loss_series_sorted(self, dataset):
        run = make_cluster(dataset).run()
        times, losses = run.loss_series()
        assert times.size == 8 * 30
        assert np.all(np.diff(times) >= 0)

    def test_time_to_loss_monotone_in_target(self, dataset):
        run = make_cluster(dataset, max_iter=50).run()
        t_easy = run.time_to_loss(0.6)
        t_hard = run.time_to_loss(0.4)
        assert t_easy <= t_hard

    def test_time_to_unreachable_loss_is_inf(self, dataset):
        run = make_cluster(dataset).run()
        assert run.time_to_loss(0.0) == float("inf")

    def test_iteration_rate_positive(self, dataset):
        run = make_cluster(dataset).run()
        assert run.iteration_rate() > 0

    def test_loss_vs_steps_axis(self, dataset):
        run = make_cluster(dataset).run()
        steps, losses = run.loss_vs_steps()
        assert steps.size == losses.size == 8 * 30

    def test_summary_mentions_protocol(self, dataset):
        run = make_cluster(dataset).run()
        assert "hop" in run.summary()

    def test_worker_stats_complete(self, dataset):
        run = make_cluster(dataset).run()
        assert len(run.worker_stats) == 8
        for stats in run.worker_stats:
            assert stats["iterations_completed"] == 30


class TestClusterValidation:
    def test_unknown_protocol(self, dataset):
        with pytest.raises(ValueError):
            make_cluster(dataset, protocol="gossip")

    def test_bad_max_iter(self, dataset):
        with pytest.raises(ValueError):
            make_cluster(dataset, max_iter=0)

    def test_chain_topology_works(self, dataset):
        run = make_cluster(dataset, topology=chain(6), max_iter=20).run()
        assert run.iterations_completed == [20] * 6
