"""Tests for Hop's update queues (tagged + rotating) and token queues."""

import numpy as np
import pytest

from repro.core import RotatingUpdateQueue, TokenQueue, Update, UpdateQueue
from repro.sim import Environment


def upd(iteration, sender, value=0.0):
    return Update(np.full(3, value), iteration, sender)


class TestUpdate:
    def test_matches_tags(self):
        u = upd(3, 1)
        assert u.matches()
        assert u.matches(iteration=3)
        assert u.matches(sender=1)
        assert u.matches(iteration=3, sender=1)
        assert not u.matches(iteration=4)
        assert not u.matches(sender=2)

    def test_identity_equality(self):
        a, b = upd(0, 0), upd(0, 0)
        assert a != b
        assert a == a


class TestUpdateQueue:
    def test_dequeue_blocks_until_count_available(self):
        env = Environment()
        queue = UpdateQueue(env)
        got = []

        def consumer(env, queue):
            updates = yield queue.dequeue(2, iteration=0)
            got.append((env.now, len(updates)))

        env.process(consumer(env, queue))
        queue.enqueue(upd(0, 1))
        env.run(until=1.0)
        assert got == []
        queue.enqueue(upd(0, 2))
        env.run()
        assert got == [(1.0, 2)]

    def test_tag_matching_iteration(self):
        env = Environment()
        queue = UpdateQueue(env)
        queue.enqueue(upd(1, 0))
        queue.enqueue(upd(0, 1))
        queue.enqueue(upd(0, 2))

        def consumer(env, queue):
            return (yield queue.dequeue(2, iteration=0))

        p = env.process(consumer(env, queue))
        env.run()
        assert [u.sender for u in p.value] == [1, 2]
        assert queue.size() == 1  # the iteration-1 update remains

    def test_tag_matching_sender(self):
        env = Environment()
        queue = UpdateQueue(env)
        queue.enqueue(upd(0, 5))
        queue.enqueue(upd(1, 5))
        queue.enqueue(upd(0, 6))

        def consumer(env, queue):
            return (yield queue.dequeue(2, sender=5))

        p = env.process(consumer(env, queue))
        env.run()
        assert [u.iteration for u in p.value] == [0, 1]

    def test_untagged_dequeue_takes_fifo(self):
        env = Environment()
        queue = UpdateQueue(env)
        for k in (3, 1, 2):
            queue.enqueue(upd(k, 0))

        def consumer(env, queue):
            return (yield queue.dequeue(2))

        p = env.process(consumer(env, queue))
        env.run()
        assert [u.iteration for u in p.value] == [3, 1]

    def test_dequeue_available_nonblocking(self):
        env = Environment()
        queue = UpdateQueue(env)
        queue.enqueue(upd(0, 1))
        queue.enqueue(upd(0, 2))
        queue.enqueue(upd(1, 3))
        extra = queue.dequeue_available(iteration=0)
        assert [u.sender for u in extra] == [1, 2]
        assert queue.dequeue_available(iteration=0) == []

    def test_dequeue_available_with_limit(self):
        env = Environment()
        queue = UpdateQueue(env)
        for sender in range(4):
            queue.enqueue(upd(0, sender))
        taken = queue.dequeue_available(iteration=0, limit=2)
        assert len(taken) == 2
        assert queue.size(iteration=0) == 2

    def test_size_with_tags(self):
        env = Environment()
        queue = UpdateQueue(env)
        queue.enqueue(upd(0, 1))
        queue.enqueue(upd(0, 2))
        queue.enqueue(upd(1, 1))
        assert queue.size() == 3
        assert queue.size(iteration=0) == 2
        assert queue.size(sender=1) == 2
        assert queue.size(iteration=1, sender=1) == 1

    def test_capacity_overflow_raises(self):
        env = Environment()
        queue = UpdateQueue(env, capacity=2)
        queue.enqueue(upd(0, 0))
        queue.enqueue(upd(0, 1))
        with pytest.raises(OverflowError):
            queue.enqueue(upd(0, 2))

    def test_discard_older_than(self):
        env = Environment()
        queue = UpdateQueue(env)
        for k in range(5):
            queue.enqueue(upd(k, 0))
        dropped = queue.discard_older_than(3)
        assert dropped == 3
        assert queue.size() == 2
        assert queue.dropped_stale == 3

    def test_peak_occupancy_tracked(self):
        env = Environment()
        queue = UpdateQueue(env)
        for k in range(4):
            queue.enqueue(upd(k, 0))
        queue.dequeue_available()
        assert queue.peak_occupancy == 4

    def test_multiple_waiters_fifo_service(self):
        env = Environment()
        queue = UpdateQueue(env)
        order = []

        def consumer(env, queue, name):
            yield queue.dequeue(1, iteration=0)
            order.append(name)

        env.process(consumer(env, queue, "first"))
        env.process(consumer(env, queue, "second"))
        queue.enqueue(upd(0, 0))
        queue.enqueue(upd(0, 1))
        env.run()
        assert order == ["first", "second"]

    def test_waiter_for_later_iteration_not_starved(self):
        env = Environment()
        queue = UpdateQueue(env)
        got = []

        def consumer(env, queue, iteration):
            yield queue.dequeue(1, iteration=iteration)
            got.append(iteration)

        env.process(consumer(env, queue, 5))
        env.process(consumer(env, queue, 6))
        queue.enqueue(upd(6, 0))
        env.run(until=1)
        assert got == [6]

    def test_cancel_dequeue(self):
        env = Environment()
        queue = UpdateQueue(env)
        request = queue.dequeue(1, iteration=0)
        assert request.cancel()
        queue.enqueue(upd(0, 0))
        env.run()
        assert not request.triggered
        assert queue.size() == 1

    def test_zero_count_dequeue_succeeds_immediately(self):
        env = Environment()
        queue = UpdateQueue(env)

        def consumer(env, queue):
            return (yield queue.dequeue(0, iteration=9))

        p = env.process(consumer(env, queue))
        env.run()
        assert p.value == []


class TestRotatingUpdateQueue:
    def test_basic_dequeue(self):
        env = Environment()
        queue = RotatingUpdateQueue(env, max_ig=3)
        queue.enqueue(upd(0, 1))
        queue.enqueue(upd(0, 2))

        def consumer(env, queue):
            return (yield queue.dequeue(2, iteration=0))

        p = env.process(consumer(env, queue))
        env.run()
        assert len(p.value) == 2

    def test_slot_separation_across_iterations(self):
        env = Environment()
        queue = RotatingUpdateQueue(env, max_ig=3)
        queue.enqueue(upd(0, 1))
        queue.enqueue(upd(1, 1))
        queue.enqueue(upd(2, 1))
        assert queue.size(iteration=1) == 1
        assert queue.size() == 3

    def test_stale_entries_discarded_on_slot_reuse(self):
        env = Environment()
        queue = RotatingUpdateQueue(env, max_ig=1)  # 2 slots
        queue.enqueue(upd(0, 1))  # slot 0
        # Iteration 2 reuses slot 0; the iteration-0 leftover is stale.
        queue.enqueue(upd(2, 2))

        def consumer(env, queue):
            return (yield queue.dequeue(1, iteration=2))

        p = env.process(consumer(env, queue))
        env.run()
        assert p.value[0].iteration == 2
        assert queue.dropped_stale == 1

    def test_dequeue_requires_iteration_tag(self):
        env = Environment()
        queue = RotatingUpdateQueue(env, max_ig=2)
        with pytest.raises(ValueError):
            queue.dequeue(1)
        with pytest.raises(ValueError):
            queue.dequeue_available()

    def test_sender_filter_within_slot(self):
        env = Environment()
        queue = RotatingUpdateQueue(env, max_ig=2)
        queue.enqueue(upd(0, 7))
        queue.enqueue(upd(0, 8))
        taken = queue.dequeue_available(iteration=0, sender=8)
        assert len(taken) == 1 and taken[0].sender == 8

    def test_size_without_iteration_counts_all(self):
        env = Environment()
        queue = RotatingUpdateQueue(env, max_ig=3)
        queue.enqueue(upd(0, 1))
        queue.enqueue(upd(1, 1))
        assert queue.size(sender=1) == 2

    def test_discard_older_than(self):
        env = Environment()
        queue = RotatingUpdateQueue(env, max_ig=4)
        for k in range(4):
            queue.enqueue(upd(k, 0))
        assert queue.discard_older_than(2) == 2
        assert len(queue) == 2

    def test_mirrors_tagged_queue_on_gap_bounded_schedule(self):
        """Rotating and tagged implementations agree when gap <= max_ig."""
        max_ig = 3
        events = [(k, s) for k in range(10) for s in range(3)]

        def drive(queue_factory):
            env = Environment()
            queue = queue_factory(env)
            taken = []

            def consumer(env, queue):
                for k in range(10):
                    got = yield queue.dequeue(3, iteration=k)
                    taken.append(sorted((u.iteration, u.sender) for u in got))

            env.process(consumer(env, queue))
            for k, s in events:
                queue.enqueue(upd(k, s))
            env.run()
            return taken

        tagged = drive(lambda env: UpdateQueue(env))
        rotating = drive(lambda env: RotatingUpdateQueue(env, max_ig=max_ig))
        assert tagged == rotating

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            RotatingUpdateQueue(env, max_ig=0)


class TestTokenQueue:
    def test_acquire_blocks_until_put(self):
        env = Environment()
        queue = TokenQueue(env, owner=0, consumer=1, initial=0)
        got = []

        def consumer(env, queue):
            yield queue.acquire(1)
            got.append(env.now)

        env.process(consumer(env, queue))
        env.run(until=1.0)
        assert got == []
        queue.put(1)
        env.run()
        assert got == [1.0]

    def test_initial_tokens_available(self):
        env = Environment()
        queue = TokenQueue(env, owner=0, consumer=1, initial=3)
        assert queue.size() == 3
        request = queue.acquire(3)
        assert request.triggered
        assert queue.size() == 0

    def test_bulk_acquire_atomic(self):
        env = Environment()
        queue = TokenQueue(env, owner=0, consumer=1, initial=1)
        request = queue.acquire(3)
        assert not request.triggered
        queue.put(1)
        assert not request.triggered  # 2 < 3
        queue.put(1)
        assert request.triggered

    def test_fifo_among_waiters(self):
        env = Environment()
        queue = TokenQueue(env, owner=0, consumer=1, initial=0)
        first = queue.acquire(2)
        second = queue.acquire(1)
        queue.put(1)
        # Head-of-line blocking: the single token waits for `first`.
        assert not first.triggered and not second.triggered
        queue.put(1)
        assert first.triggered and not second.triggered
        queue.put(1)
        assert second.triggered

    def test_statistics(self):
        env = Environment()
        queue = TokenQueue(env, owner=0, consumer=1, initial=2)
        queue.put(3)
        queue.acquire(4)
        assert queue.total_inserted == 5
        assert queue.total_acquired == 4
        assert queue.peak == 5

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            TokenQueue(env, 0, 1, initial=-1)
        queue = TokenQueue(env, 0, 1)
        with pytest.raises(ValueError):
            queue.put(-1)
        with pytest.raises(ValueError):
            queue.acquire(-1)
