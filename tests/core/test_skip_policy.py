"""Tests for the skipping-iterations policy (Section 5)."""

import pytest

from repro.core import SkipConfig, SkipPolicy


def policy(max_skip=10, trigger_lag=2, max_ig=5):
    return SkipPolicy(SkipConfig(max_skip=max_skip, trigger_lag=trigger_lag), max_ig)


class TestLag:
    def test_lag_is_min_size_minus_max_ig(self):
        p = policy(max_ig=5)
        # sizes = Iter(j) - Iter(i) + max_ig.
        assert p.lag_from_token_sizes([9, 7, 12]) == 2

    def test_no_out_neighbors_no_lag(self):
        assert policy().lag_from_token_sizes([]) == 0


class TestDecide:
    def test_no_jump_below_trigger(self):
        p = policy(trigger_lag=3, max_ig=5)
        # lag = 2 < trigger 3.
        assert p.decide(0, [7, 7], max_iteration=100) is None

    def test_jump_advances_to_lag(self):
        p = policy(max_skip=10, trigger_lag=2, max_ig=5)
        decision = p.decide(4, [9, 11], max_iteration=100)  # lag 4
        assert decision is not None
        assert decision.advance == 4
        assert decision.target == 8

    def test_user_cap_on_skip(self):
        p = policy(max_skip=2, trigger_lag=2, max_ig=5)
        decision = p.decide(0, [15], max_iteration=100)  # lag 10
        # advance capped at max_skip + 1 = 3 (2 skipped + 1 normal).
        assert decision.advance == 3
        assert decision.target == 3

    def test_never_jumps_past_training_end(self):
        p = policy(max_skip=10, trigger_lag=2, max_ig=5)
        decision = p.decide(97, [20], max_iteration=100)
        assert decision is None or decision.target < 100

    def test_advance_below_two_means_no_jump(self):
        p = policy(max_skip=10, trigger_lag=1, max_ig=5)
        # lag 1 -> advance 1 -> not a jump.
        assert p.decide(0, [6], max_iteration=100) is None

    def test_statistics_accumulate(self):
        p = policy(max_skip=10, trigger_lag=2, max_ig=5)
        p.decide(0, [10], max_iteration=100)  # lag 5 -> skip 4
        p.decide(5, [12], max_iteration=100)  # lag 7 -> advance 7... capped 11? no: min(7, 11) = 7 -> skip 6
        assert p.jumps_taken == 2
        assert p.iterations_skipped == 4 + 6

    def test_never_surpasses_slowest_out_neighbor(self):
        """The paper's intuitive bound: after a jump, Iter(i) <= min_j Iter(j)."""
        max_ig = 4
        p = SkipPolicy(SkipConfig(max_skip=100, trigger_lag=1), max_ig)
        current = 10
        sizes = [7, 9, 13]  # Iter(j) - current + max_ig
        decision = p.decide(current, sizes, max_iteration=1000)
        slowest_neighbor_iteration = current + min(sizes) - max_ig
        assert decision.target <= slowest_neighbor_iteration
