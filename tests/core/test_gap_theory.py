"""Tests for the iteration-gap theory (Theorems 1 & 2, Table 1)."""

import math

import numpy as np
import pytest

from repro.core import (
    GapTracker,
    backup_bound,
    gap_bound_matrix,
    notify_ack_bound,
    staleness_bound,
    theorem1_bound,
    token_queue_bound,
    token_queue_capacity_bound,
    update_queue_capacity_bound,
)
from repro.graphs import chain, directed_ring, ring, ring_based


class TestTheorem1:
    def test_adjacent_workers_gap_one(self):
        topo = ring(6)
        # j in Nin(i): path j->i has length 1.
        assert theorem1_bound(topo, 0, 1) == 1.0

    def test_distant_workers_path_length(self):
        topo = ring(8)
        assert theorem1_bound(topo, 0, 4) == 4.0

    def test_directed_ring_asymmetric(self):
        topo = directed_ring(5)
        # Path from 1 to 0 wraps around: length 4.
        assert theorem1_bound(topo, 0, 1) == 4.0
        assert theorem1_bound(topo, 1, 0) == 1.0


class TestNotifyAckBound:
    def test_adjacent_pair_at_most_two(self):
        topo = ring(8)
        # i in Nin(j): forward path i->j is 1 -> bound 2*1 = 2.
        assert notify_ack_bound(topo, 0, 1) <= 2.0

    def test_tighter_than_theorem1_for_long_paths(self):
        topo = chain(8)
        # Worker 7 is far from worker 0 in path terms, but NOTIFY-ACK's
        # backward dependence caps the gap at 2 * len(path 7->0)... the
        # minimum keeps whichever is smaller.
        assert notify_ack_bound(topo, 7, 0) <= theorem1_bound(topo, 7, 0)

    def test_formula(self):
        topo = chain(5)
        i, j = 4, 0
        expected = min(
            topo.path_length(j, i), 2 * topo.path_length(i, j)
        )
        assert notify_ack_bound(topo, i, j) == expected


class TestTokenQueueBound:
    def test_adjacent_bound_in_symmetric_ring_is_forward_term(self):
        topo = ring(6)
        # Symmetric graph: forward Theorem-1 term (path length 1) wins.
        assert token_queue_bound(topo, 0, 1, max_ig=3) == 1.0

    def test_backward_term_dominates_on_directed_ring(self):
        topo = directed_ring(6)
        # Edge (0 -> 1): Iter(0) - Iter(1) bounded by
        # min(path(1->0)=5, max_ig * path(0->1)=3) = max_ig.
        assert token_queue_bound(topo, 0, 1, max_ig=3) == 3.0

    def test_min_of_forward_and_backward(self):
        topo = ring(8)
        i, j = 0, 4
        bound = token_queue_bound(topo, i, j, max_ig=2)
        assert bound == min(
            topo.path_length(j, i), 2 * topo.path_length(i, j)
        )

    def test_staleness_b0(self):
        topo = ring(8)
        bound = token_queue_bound(topo, 0, 2, max_ig=5, forward_b0=3.0)
        assert bound == min(3.0 * 2, 5.0 * 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            token_queue_bound(ring(4), 0, 1, max_ig=0)


class TestOtherBounds:
    def test_staleness_bound(self):
        topo = ring(8)
        assert staleness_bound(topo, 0, 2, s=4) == 5.0 * 2
        with pytest.raises(ValueError):
            staleness_bound(topo, 0, 1, s=-1)

    def test_backup_unbounded(self):
        assert backup_bound() == math.inf

    def test_update_queue_capacity(self):
        topo = ring_based(8)  # in-degree 4 with self
        assert update_queue_capacity_bound(topo, 0, max_ig=3) == 16

    def test_token_queue_capacity(self):
        topo = ring(6)
        assert token_queue_capacity_bound(topo, 0, 1, max_ig=3) == 3 * 2


class TestGapBoundMatrix:
    def test_standard_matches_path_matrix(self):
        topo = ring(6)
        B = gap_bound_matrix(topo, "standard")
        D = topo.shortest_path_matrix()
        for i in range(6):
            for j in range(6):
                if i != j:
                    assert B[i, j] == D[j, i]

    def test_backup_infinite(self):
        B = gap_bound_matrix(ring(4), "backup")
        assert np.all(np.isinf(B[~np.eye(4, dtype=bool)]))

    def test_token_settings_finite(self):
        B = gap_bound_matrix(ring(6), "backup+tokens", max_ig=4)
        assert np.all(np.isfinite(B))

    def test_notify_ack_never_looser_than_standard(self):
        topo = ring_based(8)
        ack = gap_bound_matrix(topo, "notify_ack")
        std = gap_bound_matrix(topo, "standard")
        assert np.all(ack <= std + 1e-9)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            gap_bound_matrix(ring(4), "staleness")  # missing s
        with pytest.raises(ValueError):
            gap_bound_matrix(ring(4), "standard+tokens")  # missing max_ig
        with pytest.raises(ValueError):
            gap_bound_matrix(ring(4), "nonsense")

    def test_diagonal_zero(self):
        B = gap_bound_matrix(ring(4), "standard")
        assert np.all(np.diag(B) == 0)


class TestGapTracker:
    def test_records_max_gap(self):
        tracker = GapTracker(3)
        tracker.record(0, 1)
        tracker.record(0, 2)
        tracker.record(1, 1)
        assert tracker.observed_gap(0, 1) == 2.0  # before 1 advanced
        assert tracker.observed_gap(0, 2) == 2.0
        assert tracker.observed_gap(2, 0) == 0.0

    def test_max_observed(self):
        tracker = GapTracker(2)
        tracker.record(0, 5)
        assert tracker.max_observed() == 5.0

    def test_violations_empty_when_within_bounds(self):
        tracker = GapTracker(2)
        tracker.record(0, 1)
        bounds = np.full((2, 2), 2.0)
        assert tracker.violations(bounds) == {}

    def test_violations_detected(self):
        tracker = GapTracker(2)
        tracker.record(0, 5)
        bounds = np.full((2, 2), 2.0)
        violations = tracker.violations(bounds)
        assert (0, 1) in violations
        assert violations[(0, 1)] == pytest.approx(3.0)

    def test_transitions_counted(self):
        tracker = GapTracker(2)
        for k in range(4):
            tracker.record(0, k)
        assert tracker.transitions == 4
