"""Property-based tests of the protocol's central invariants.

The crown jewels: on random connected graphs with random heterogeneity
the realized iteration gaps must respect Theorems 1 and 2, runs must be
deadlock-free, and the token-queue invariant
``size == Iter(owner) - Iter(consumer) + max_ig`` must hold.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    HopCluster,
    HopConfig,
    STANDARD,
    backup_config,
    gap_bound_matrix,
    staleness_config,
)
from repro.graphs import Topology
from repro.hetero import ComputeModel
from repro.ml import build_svm, synthetic_webspam
from repro.ml.optim import SGD


DATASET = synthetic_webspam(
    np.random.default_rng(0), n_train=128, n_test=32, n_features=8
)


@st.composite
def random_symmetric_topology(draw):
    """Random connected bidirectional topology with 3-7 nodes."""
    n = draw(st.integers(min_value=3, max_value=7))
    edges = set()
    for node in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        edges.add((parent, node))
        edges.add((node, parent))
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a != b:
            edges.add((a, b))
            edges.add((b, a))
    return Topology(n, edges, name="random")


def run_cluster(topology, config, base_times, max_iter=12, seed=0):
    compute = ComputeModel(base_time=base_times)
    cluster = HopCluster(
        topology=topology,
        config=config,
        model_factory=lambda rng: build_svm(rng, 8),
        dataset=DATASET,
        optimizer=SGD(lr=0.5),
        compute_model=compute,
        batch_size=16,
        max_iter=max_iter,
        seed=seed,
        evaluate=False,
    )
    return cluster.run()


@settings(max_examples=15, deadline=None)
@given(
    topo=random_symmetric_topology(),
    speeds=st.lists(
        st.floats(min_value=0.01, max_value=0.5),
        min_size=7,
        max_size=7,
    ),
)
def test_standard_gaps_respect_theorem_1(topo, speeds):
    config = HopConfig(use_token_queues=False)
    run = run_cluster(topo, config, speeds[: topo.n])
    bounds = gap_bound_matrix(topo, "standard")
    assert run.gap.violations(bounds) == {}
    assert run.iterations_completed == [12] * topo.n


@settings(max_examples=15, deadline=None)
@given(
    topo=random_symmetric_topology(),
    speeds=st.lists(
        st.floats(min_value=0.01, max_value=0.5),
        min_size=7,
        max_size=7,
    ),
    max_ig=st.integers(min_value=1, max_value=5),
)
def test_token_gaps_respect_theorem_2(topo, speeds, max_ig):
    config = HopConfig(max_ig=max_ig)
    run = run_cluster(topo, config, speeds[: topo.n])
    bounds = gap_bound_matrix(topo, "standard+tokens", max_ig=max_ig)
    assert run.gap.violations(bounds) == {}


@settings(max_examples=10, deadline=None)
@given(
    topo=random_symmetric_topology(),
    speeds=st.lists(
        st.floats(min_value=0.01, max_value=0.5),
        min_size=7,
        max_size=7,
    ),
)
def test_backup_mode_deadlock_free_when_feasible(topo, speeds):
    min_in = min(topo.in_degree(i) for i in range(topo.n))
    if min_in < 3:
        return  # n_backup=1 would leave <2 required updates; skip case
    run = run_cluster(topo, backup_config(1, 3), speeds[: topo.n])
    assert run.iterations_completed == [12] * topo.n
    bounds = gap_bound_matrix(topo, "backup+tokens", max_ig=3)
    assert run.gap.violations(bounds) == {}


@settings(max_examples=10, deadline=None)
@given(
    topo=random_symmetric_topology(),
    speeds=st.lists(
        st.floats(min_value=0.01, max_value=0.5),
        min_size=7,
        max_size=7,
    ),
    s=st.integers(min_value=1, max_value=4),
)
def test_staleness_mode_deadlock_free(topo, speeds, s):
    run = run_cluster(topo, staleness_config(s, s + 2), speeds[: topo.n])
    assert run.iterations_completed == [12] * topo.n
    bounds = gap_bound_matrix(
        topo, "staleness+tokens", max_ig=s + 2, staleness=s
    )
    assert run.gap.violations(bounds) == {}


@settings(max_examples=8, deadline=None)
@given(
    topo=random_symmetric_topology(),
    seed=st.integers(min_value=0, max_value=100),
)
def test_determinism_across_runs(topo, seed):
    run_a = run_cluster(topo, STANDARD, [0.05] * topo.n, seed=seed)
    run_b = run_cluster(topo, STANDARD, [0.05] * topo.n, seed=seed)
    assert run_a.wall_time == run_b.wall_time
    assert np.array_equal(run_a.final_params, run_b.final_params)


@settings(max_examples=8, deadline=None)
@given(topo=random_symmetric_topology())
def test_consensus_improves_with_training(topo):
    """Gossip averaging must pull replicas together over time."""
    short = run_cluster(topo, STANDARD, [0.05] * topo.n, max_iter=2)
    long = run_cluster(topo, STANDARD, [0.05] * topo.n, max_iter=30)
    norm = float(np.linalg.norm(long.final_params)) + 1e-9
    assert long.consensus / norm < 1.0
