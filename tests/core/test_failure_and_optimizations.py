"""Failure injection and the Section 6.2 optimizations.

Covers behaviors the paper claims in prose:

* Section 3.4: backup workers tolerate slow workers "or even
  accidental node crashes" — and with token queues, the blast radius
  of a crash is *exactly* Theorem 2's bound: neighbors advance at most
  ``max_ig`` further iterations, then stop (no corruption, no
  deadlock crash).
* Section 6.2(b): inquiring the receiver's iteration before sending
  suppresses updates that would arrive stale.
* Section 4.4: the Eq. (2) weighted reduce vs the simple average.
"""

import numpy as np
import pytest

from repro.core import (
    HopCluster,
    HopConfig,
    STANDARD,
    StalenessRecv,
    backup_config,
    staleness_config,
)
from repro.core.cluster import DeadlockError
from repro.graphs import ring, ring_based
from repro.hetero import ComputeModel, DeterministicSlowdown
from repro.ml import build_svm, synthetic_webspam
from repro.ml.optim import SGD


N_FEATURES = 16


@pytest.fixture(scope="module")
def dataset():
    return synthetic_webspam(
        np.random.default_rng(0), n_train=256, n_test=64, n_features=N_FEATURES
    )


def make_cluster(dataset, config, n=6, max_iter=30, slowdown=None, **kwargs):
    return HopCluster(
        topology=ring_based(n),
        config=config,
        model_factory=lambda rng: build_svm(rng, N_FEATURES),
        dataset=dataset,
        optimizer=SGD(lr=0.5, momentum=0.9),
        compute_model=ComputeModel(
            base_time=0.05, n_workers=n, slowdown=slowdown
        ),
        max_iter=max_iter,
        seed=2,
        **kwargs,
    )


class TestCrashInjection:
    """A worker that halts cold mid-training (Section 3.4's crashes)."""

    def test_crash_halts_the_crashed_worker_only_initially(self, dataset):
        crash_iteration = 5
        run = make_cluster(
            dataset,
            backup_config(n_backup=1, max_ig=3),
            max_iter=20,
            crash_at={0: crash_iteration},
        ).run()
        assert run.iterations_completed[0] == crash_iteration

    def test_blast_radius_is_exactly_max_ig(self, dataset):
        """Theorem 2 in action: neighbors of a crashed worker advance
        exactly ``crash_iteration + max_ig`` iterations, then stop."""
        crash_iteration, max_ig = 5, 3
        run = make_cluster(
            dataset,
            backup_config(n_backup=1, max_ig=max_ig),
            max_iter=50,  # far beyond what the crash allows
            crash_at={0: crash_iteration},
        ).run()
        topo = ring_based(6)
        for neighbor in topo.out_neighbors(0, include_self=False):
            # The crashed worker inserted tokens for iterations
            # 0..crash-1 plus the initial max_ig - 1: neighbors enter
            # at most iteration crash + max_ig - 1 (completing it).
            assert run.iterations_completed[neighbor] == (
                crash_iteration + max_ig
            )

    def test_crash_before_end_does_not_affect_short_runs(self, dataset):
        """If training ends before the blast radius bites, all finish."""
        run = make_cluster(
            dataset,
            backup_config(n_backup=1, max_ig=4),
            max_iter=6,
            crash_at={0: 3},
        ).run()
        survivors = run.iterations_completed[1:]
        assert all(done == 6 for done in survivors)

    def test_standard_mode_without_crash_still_validates_deadlocks(
        self, dataset
    ):
        """Genuine deadlocks (no injected crash) still raise."""
        run = make_cluster(dataset, STANDARD, max_iter=10).run()
        assert run.iterations_completed == [10] * 6  # sanity: no deadlock

    def test_crash_only_supported_for_hop(self, dataset):
        with pytest.raises(ValueError, match="only supported for hop"):
            make_cluster(
                dataset,
                STANDARD,
                protocol="notify_ack",
                crash_at={0: 2},
            )

    def test_negative_crash_iteration_rejected(self, dataset):
        with pytest.raises(ValueError):
            make_cluster(dataset, STANDARD, crash_at={0: -1}).run()

    def test_backup_mode_survives_a_slow_but_alive_worker(self, dataset):
        """A 20x straggler (alive, not crashed) does not deadlock."""
        run = make_cluster(
            dataset,
            backup_config(n_backup=1, max_ig=3),
            max_iter=15,
            slowdown=DeterministicSlowdown({0: 20.0}),
        ).run()
        assert run.iterations_completed == [15] * 6
        assert run.gap.max_observed() <= 3 * ring_based(6).diameter()


class TestReceiverIterationCheck:
    """Section 6.2(b): suppress sends to receivers that moved on."""

    def test_suppression_counted_under_straggler(self, dataset):
        config = HopConfig(
            mode="backup",
            n_backup=1,
            max_ig=4,
            check_receiver_iteration=True,
        )
        run = make_cluster(
            dataset,
            config,
            max_iter=25,
            slowdown=DeterministicSlowdown({0: 6.0}),
        ).run()
        suppressed = sum(
            stats.get("n_suppressed_sends", 0) for stats in run.worker_stats
        )
        # The straggler's updates for old iterations get suppressed.
        assert suppressed > 0
        assert run.iterations_completed == [25] * 6

    def test_no_suppression_in_homogeneous_run(self, dataset):
        config = HopConfig(
            mode="backup", n_backup=1, max_ig=4, check_receiver_iteration=True
        )
        run = make_cluster(dataset, config, max_iter=20).run()
        suppressed = sum(
            stats.get("n_suppressed_sends", 0) for stats in run.worker_stats
        )
        assert suppressed == 0

    def test_convergence_unaffected(self, dataset):
        """Suppressed updates would have been dropped anyway."""
        base = make_cluster(
            dataset,
            backup_config(n_backup=1, max_ig=4),
            max_iter=25,
            slowdown=DeterministicSlowdown({0: 6.0}),
        ).run()
        checked = make_cluster(
            dataset,
            HopConfig(
                mode="backup",
                n_backup=1,
                max_ig=4,
                check_receiver_iteration=True,
            ),
            max_iter=25,
            slowdown=DeterministicSlowdown({0: 6.0}),
        ).run()
        _, base_losses = base.smoothed_loss_series(window=16)
        _, checked_losses = checked.smoothed_loss_series(window=16)
        assert checked_losses[-1] < base_losses[0]  # still converges
        # And strictly fewer parameter messages cross the network.
        assert checked.messages_sent <= base.messages_sent


class TestStaleReduceFlavors:
    def test_uniform_flavor_runs(self, dataset):
        config = staleness_config(staleness=3, max_ig=6, stale_reduce="uniform")
        run = make_cluster(dataset, config, max_iter=20).run()
        _, losses = run.smoothed_loss_series(window=16)
        assert losses[-1] < losses[0]

    def test_flavors_differ_numerically_under_slowdown(self, dataset):
        runs = {}
        for flavor in ("weighted", "uniform"):
            config = staleness_config(
                staleness=3, max_ig=6, stale_reduce=flavor
            )
            runs[flavor] = make_cluster(
                dataset,
                config,
                max_iter=20,
                slowdown=DeterministicSlowdown({0: 3.0}),
            ).run()
        # Same timing (aggregation doesn't change blocking) ...
        assert runs["weighted"].wall_time == runs["uniform"].wall_time
        # ... but different arithmetic once stale updates appear.
        assert not np.array_equal(
            runs["weighted"].final_params, runs["uniform"].final_params
        )

    def test_invalid_flavor_rejected(self):
        with pytest.raises(ValueError):
            staleness_config(stale_reduce="median")
        with pytest.raises(ValueError):
            StalenessRecv(2, reduce_flavor="median")
