"""Durability tests: the result cache verifies, the journal replays."""

import json

import pytest

from repro.service.cache import ResultCache, entry_digest
from repro.service.journal import RunJournal

HASH = "ab" + "0" * 62
OTHER = "cd" + "1" * 62

FINGERPRINT = {"final_loss": "0x1.8p-1", "final_params_sha256": "f" * 64}
RESULT = {"stats": {"messages_sent": 60}}
SPEC = {"workers": 4, "max_iter": 5}


class TestResultCache:
    def make(self, tmp_path):
        return ResultCache(tmp_path / "cache")

    def test_round_trip(self, tmp_path):
        cache = self.make(tmp_path)
        assert cache.get(HASH) is None  # cold miss
        put = cache.put(HASH, SPEC, FINGERPRINT, RESULT)
        got = cache.get(HASH)
        assert got == put
        assert got["fingerprint"] == FINGERPRINT
        assert cache.stats() == {"hits": 1, "misses": 1, "corruptions": 0}

    def test_entries_fan_out_by_prefix(self, tmp_path):
        cache = self.make(tmp_path)
        assert cache.path_for(HASH).parent.name == "ab"

    def test_truncated_entry_is_quarantined_and_recomputable(self, tmp_path):
        cache = self.make(tmp_path)
        cache.put(HASH, SPEC, FINGERPRINT, RESULT)
        path = cache.path_for(HASH)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.get(HASH) is None  # detected, never served
        assert not path.exists()  # quarantined -> recompute repopulates
        assert cache.stats()["corruptions"] == 1
        cache.put(HASH, SPEC, FINGERPRINT, RESULT)
        assert cache.get(HASH) is not None

    def test_bit_flip_in_result_fails_integrity(self, tmp_path):
        cache = self.make(tmp_path)
        cache.put(HASH, SPEC, FINGERPRINT, RESULT)
        path = cache.path_for(HASH)
        entry = json.loads(path.read_text())
        entry["result"]["stats"]["messages_sent"] += 1  # silent flip
        path.write_text(json.dumps(entry))
        assert cache.get(HASH) is None
        assert cache.stats()["corruptions"] == 1

    def test_tampered_fingerprint_fails_integrity(self, tmp_path):
        cache = self.make(tmp_path)
        cache.put(HASH, SPEC, FINGERPRINT, RESULT)
        path = cache.path_for(HASH)
        entry = json.loads(path.read_text())
        entry["fingerprint"]["final_loss"] = "0x1.0p+0"
        path.write_text(json.dumps(entry))
        assert cache.get(HASH) is None

    def test_entry_under_wrong_address_is_rejected(self, tmp_path):
        cache = self.make(tmp_path)
        entry = cache.put(HASH, SPEC, FINGERPRINT, RESULT)
        # Copy a (self-consistent!) entry to a different address: the
        # spec-hash binding must catch it even though the integrity
        # digest checks out.
        wrong = cache.path_for(OTHER)
        wrong.parent.mkdir(parents=True, exist_ok=True)
        wrong.write_text(json.dumps(entry))
        assert cache.get(OTHER) is None

    def test_missing_keys_read_as_corruption(self, tmp_path):
        cache = self.make(tmp_path)
        path = cache.path_for(HASH)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"spec_hash": HASH}))
        assert cache.get(HASH) is None
        assert cache.stats()["corruptions"] == 1

    def test_entry_digest_is_order_insensitive(self):
        a = entry_digest(HASH, {"a": 1, "b": 2}, FINGERPRINT, RESULT)
        b = entry_digest(HASH, {"b": 2, "a": 1}, FINGERPRINT, RESULT)
        assert a == b


class TestRunJournal:
    def make(self, tmp_path):
        return RunJournal(tmp_path / "journal.jsonl")

    def test_empty_journal_replays_empty(self, tmp_path):
        assert self.make(tmp_path).replay() == {}

    def test_replay_reconstructs_sweeps(self, tmp_path):
        journal = self.make(tmp_path)
        cells = [{"hash": HASH, "payload": SPEC},
                 {"hash": OTHER, "payload": {"workers": 8}}]
        journal.sweep_submitted("s000001", cells)
        journal.cell_done("s000001", HASH, cache_hit=False, attempts=1)
        state = journal.replay()
        sweep = state["s000001"]
        assert not sweep.complete
        assert [c["hash"] for c in sweep.pending] == [OTHER]
        journal.cell_done("s000001", OTHER, cache_hit=True, attempts=0)
        journal.sweep_done("s000001")
        assert journal.replay()["s000001"].complete

    def test_torn_final_line_is_tolerated(self, tmp_path):
        journal = self.make(tmp_path)
        journal.sweep_submitted("s000001", [{"hash": HASH, "payload": SPEC}])
        journal.cell_done("s000001", HASH, cache_hit=False, attempts=1)
        with open(journal.path, "a") as handle:
            handle.write('{"kind": "done", "sweep_id": "s0000')  # kill -9
        state = journal.replay()
        assert HASH in state["s000001"].done

    def test_append_after_torn_tail_truncates_the_fragment(self, tmp_path):
        # A kill -9 mid-append leaves a torn tail with no newline; the
        # next process's first append must not glue its record onto
        # the fragment (that would corrupt a mid-file line and poison
        # every later replay).
        journal = self.make(tmp_path)
        journal.sweep_submitted("s000001", [{"hash": HASH, "payload": SPEC}])
        journal.cell_done("s000001", HASH, cache_hit=False, attempts=1)
        with open(journal.path, "a") as handle:
            handle.write('{"kind": "done", "sweep_id": "s0000')  # kill -9
        restarted = RunJournal(journal.path)  # fresh process
        restarted.sweep_done("s000001")
        state = restarted.replay()  # must not raise
        assert state["s000001"].complete
        assert HASH in state["s000001"].done
        for line in journal.path.read_text().splitlines():
            json.loads(line)  # every surviving line is intact

    def test_corruption_elsewhere_raises(self, tmp_path):
        journal = self.make(tmp_path)
        journal.sweep_submitted("s000001", [{"hash": HASH, "payload": SPEC}])
        journal.cell_done("s000001", HASH, cache_hit=False, attempts=1)
        lines = journal.path.read_text().splitlines()
        lines[0] = lines[0][:20]  # not the tail: external damage
        journal.path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="corrupt journal line 1"):
            journal.replay()

    def test_next_sweep_seq_advances_past_journaled_ids(self, tmp_path):
        journal = self.make(tmp_path)
        assert journal.next_sweep_seq() == 1
        journal.sweep_submitted("s000007", [{"hash": HASH, "payload": SPEC}])
        journal.sweep_submitted("custom-id", [{"hash": OTHER, "payload": {}}])
        assert journal.next_sweep_seq() == 8

    def test_checkpoint_drops_completed_sweeps(self, tmp_path):
        journal = self.make(tmp_path)
        journal.sweep_submitted("s000001", [{"hash": HASH, "payload": SPEC}])
        journal.cell_done("s000001", HASH, cache_hit=False, attempts=1)
        journal.sweep_done("s000001")
        journal.sweep_submitted("s000002", [{"hash": OTHER, "payload": {}}])
        kept = journal.checkpoint()
        assert kept == 1
        state = journal.replay()
        assert set(state) == {"s000002"}
        # The compacted journal is still a valid journal.
        journal.cell_done("s000002", OTHER, cache_hit=False, attempts=1)
        journal.sweep_done("s000002")
        assert journal.replay()["s000002"].complete

    def test_checkpoint_preserves_the_sweep_sequence(self, tmp_path):
        # Compaction drops completed sweeps but must not let a
        # restarted server reuse their ids.
        journal = self.make(tmp_path)
        journal.sweep_submitted("s000005", [{"hash": HASH, "payload": SPEC}])
        journal.cell_done("s000005", HASH, cache_hit=False, attempts=1)
        journal.sweep_done("s000005")
        journal.checkpoint()
        assert journal.replay() == {}  # the sweep itself is gone
        assert journal.next_sweep_seq() == 6  # but its id stays burned
        journal.checkpoint()  # the high-water-mark survives recompaction
        assert journal.next_sweep_seq() == 6
