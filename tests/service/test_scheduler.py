"""Scheduler tests: cache-first, deterministic retries, admission.

Fast paths run ``inline=True`` (cells execute in the dispatcher
thread); the process-pool failure modes — a crashed worker breaking
the pool, a hung worker tripping the run timeout — use a real
``ProcessPoolExecutor`` with the runner's chaos knobs.
"""

import time

import pytest

from repro.service.cache import ResultCache
from repro.service.journal import RunJournal
from repro.service.runner import execute_cell
from repro.service.scheduler import (
    RunScheduler,
    SchedulerDraining,
    ServiceOverloaded,
)
from repro.service.specio import spec_hash

#: A complete run in well under a second.
PAYLOAD = {"workers": 4, "max_iter": 2, "seed": 3}


def make_scheduler(tmp_path, **kwargs):
    kwargs.setdefault("inline", True)
    kwargs.setdefault("backoff_base", 0.001)
    return RunScheduler(
        ResultCache(tmp_path / "cache"),
        RunJournal(tmp_path / "journal.jsonl"),
        **kwargs,
    )


def wait(sweep, timeout=60.0):
    assert sweep.finished.wait(timeout), "sweep did not finish"
    return sweep.snapshot()


class TestHappyPathAndCache:
    def test_computes_then_serves_from_cache(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        digest = spec_hash(PAYLOAD)
        first = wait(scheduler.submit_sweep("s1", [(digest, PAYLOAD)]))
        assert first["cells"][digest] == {
            "status": "done", "cache_hit": False, "attempts": 1,
            "error": None,
        }
        second = wait(scheduler.submit_sweep("s2", [(digest, PAYLOAD)]))
        assert second["cells"][digest]["cache_hit"] is True
        assert second["cells"][digest]["attempts"] == 0
        assert scheduler.counters["runs_computed"] == 1
        scheduler.shutdown(timeout=5)

    def test_duplicate_hashes_collapse_to_one_cell(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        digest = spec_hash(PAYLOAD)
        snapshot = wait(
            scheduler.submit_sweep("s1", [(digest, PAYLOAD)] * 3)
        )
        assert snapshot["total"] == 1
        assert scheduler.counters["runs_computed"] == 1
        scheduler.shutdown(timeout=5)

    def test_journal_records_the_whole_story(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        digest = spec_hash(PAYLOAD)
        wait(scheduler.submit_sweep("s1", [(digest, PAYLOAD)]))
        state = scheduler.journal.replay()
        assert state["s1"].complete
        assert state["s1"].done[digest]["cache_hit"] is False
        scheduler.shutdown(timeout=5)


class TestRetries:
    def test_injected_failures_retry_and_match_clean_run_bitwise(
        self, tmp_path
    ):
        scheduler = make_scheduler(tmp_path, attempts=3)
        chaotic = {**PAYLOAD, "chaos": {"fail_attempts": 2}}
        digest = spec_hash(chaotic)
        assert digest == spec_hash(PAYLOAD)  # chaos is not hashed
        snapshot = wait(scheduler.submit_sweep("s1", [(digest, chaotic)]))
        cell = snapshot["cells"][digest]
        assert cell["status"] == "done"
        assert cell["attempts"] == 3  # two injected failures + success
        assert scheduler.counters["retries"] == 2
        # The retried run's stats are bitwise identical to a clean,
        # uninterrupted run of the same spec.
        clean = execute_cell(dict(PAYLOAD))
        entry = scheduler.cache.get(digest)
        assert entry["fingerprint"] == clean["fingerprint"]
        assert entry["result"] == clean["result"]
        scheduler.shutdown(timeout=5)

    def test_exhausted_attempts_mark_the_cell_failed(self, tmp_path):
        scheduler = make_scheduler(tmp_path, attempts=2)
        chaotic = {**PAYLOAD, "chaos": {"fail_attempts": 99}}
        digest = spec_hash(chaotic)
        snapshot = wait(scheduler.submit_sweep("s1", [(digest, chaotic)]))
        cell = snapshot["cells"][digest]
        assert cell["status"] == "failed"
        assert "injected failure" in cell["error"]
        assert snapshot["failed"] == [digest]
        assert scheduler.counters["run_failures"] == 1
        # A failed sweep is complete for clients but NOT journaled
        # done, so a restart retries it.
        assert scheduler.journal.replay()["s1"].complete is False
        scheduler.shutdown(timeout=5)

    def test_failed_cell_does_not_poison_the_cache(self, tmp_path):
        scheduler = make_scheduler(tmp_path, attempts=1)
        chaotic = {**PAYLOAD, "chaos": {"fail_attempts": 99}}
        digest = spec_hash(chaotic)
        wait(scheduler.submit_sweep("s1", [(digest, chaotic)]))
        assert scheduler.cache.get(digest) is None
        scheduler.shutdown(timeout=5)


class TestAdmission:
    def test_overload_sheds_with_service_overloaded(self, tmp_path):
        scheduler = make_scheduler(tmp_path, max_pending=1)
        slow = {**PAYLOAD, "chaos": {"delay_seconds": 0.5}}
        digest = spec_hash(slow)
        sweep = scheduler.submit_sweep("s1", [(digest, slow)])
        other = {**PAYLOAD, "seed": 4}
        with pytest.raises(ServiceOverloaded):
            scheduler.submit_sweep("s2", [(spec_hash(other), other)])
        assert scheduler.counters["shed"] == 1
        wait(sweep)
        # Capacity freed: the same submit is admitted now.
        scheduler.submit_sweep("s2", [(spec_hash(other), other)])
        scheduler.shutdown(timeout=10)

    def test_force_bypasses_the_admission_bound(self, tmp_path):
        scheduler = make_scheduler(tmp_path, max_pending=0)
        digest = spec_hash(PAYLOAD)
        with pytest.raises(ServiceOverloaded):
            scheduler.submit_sweep("s1", [(digest, PAYLOAD)])
        sweep = scheduler.submit_sweep(
            "s2", [(digest, PAYLOAD)], force=True
        )
        wait(sweep)
        scheduler.shutdown(timeout=5)

    def test_draining_rejects_new_sweeps(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        scheduler.drain(timeout=5)
        with pytest.raises(SchedulerDraining):
            scheduler.submit_sweep("s1", [(spec_hash(PAYLOAD), PAYLOAD)])
        assert scheduler.accepting is False
        scheduler.shutdown(timeout=5)

    def test_duplicate_sweep_id_rejected(self, tmp_path):
        scheduler = make_scheduler(tmp_path)
        digest = spec_hash(PAYLOAD)
        sweep = scheduler.submit_sweep("s1", [(digest, PAYLOAD)])
        with pytest.raises(ValueError, match="already submitted"):
            scheduler.submit_sweep("s1", [(digest, PAYLOAD)])
        wait(sweep)
        scheduler.shutdown(timeout=5)


class TestProcessPoolFailures:
    def test_crashed_worker_respawns_pool_and_retries(self, tmp_path):
        scheduler = make_scheduler(
            tmp_path, inline=False, pool_workers=1, attempts=3,
            run_timeout=60.0,
        )
        chaotic = {**PAYLOAD, "chaos": {"crash_attempts": 1}}
        digest = spec_hash(chaotic)
        snapshot = wait(
            scheduler.submit_sweep("s1", [(digest, chaotic)]), timeout=120
        )
        cell = snapshot["cells"][digest]
        assert cell["status"] == "done"
        assert cell["attempts"] >= 2
        assert scheduler.counters["worker_crashes"] >= 1
        # Crash-retried stats are still bitwise clean.
        clean = execute_cell(dict(PAYLOAD))
        assert scheduler.cache.get(digest)["fingerprint"] == (
            clean["fingerprint"]
        )
        scheduler.shutdown(timeout=10)

    def test_hung_worker_trips_timeout_and_recovers(self, tmp_path):
        scheduler = make_scheduler(
            tmp_path, inline=False, pool_workers=1, attempts=2,
            run_timeout=1.0,
        )
        chaotic = {
            **PAYLOAD,
            "chaos": {"hang_attempts": 1, "hang_seconds": 30.0},
        }
        digest = spec_hash(chaotic)
        start = time.monotonic()
        snapshot = wait(
            scheduler.submit_sweep("s1", [(digest, chaotic)]), timeout=120
        )
        elapsed = time.monotonic() - start
        cell = snapshot["cells"][digest]
        assert cell["status"] == "done"
        assert scheduler.counters["timeouts"] == 1
        # The hung attempt was abandoned at the timeout, not awaited.
        assert elapsed < 25.0
        scheduler.shutdown(timeout=10)
