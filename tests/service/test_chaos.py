"""Chaos harness: kill the real server and watch it come back right.

These tests drive ``python -m repro serve`` as a subprocess — the same
entry point operators use — and assert the crash-safety contract:

* ``kill -9`` mid-sweep, restart on the same state dir -> the sweep
  resumes and completes, cells finished before the kill are served as
  verified cache hits, and nothing computes twice;
* corrupting a cache entry on disk -> the restart detects the bad
  fingerprint/integrity and recomputes instead of serving it;
* SIGTERM while a sweep is in flight -> the server drains (finishes
  the work, then exits 0) instead of dropping it.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

from repro.service.client import ServiceClient
from repro.service.specio import spec_hash

#: One cell is a sub-second run; delay_seconds stretches the sweep so
#: a kill provably lands mid-flight.
BASE = {"workers": 4, "max_iter": 2}


def sweep_specs(n=4, delay=0.4):
    return [
        {**BASE, "seed": seed, "chaos": {"delay_seconds": delay}}
        for seed in range(n)
    ]


class ServerProcess:
    """A ``repro serve`` subprocess bound to an OS-assigned port."""

    def __init__(self, state_dir, pool_workers=1, extra=()):
        env = dict(os.environ)
        src = str(
            os.path.join(os.path.dirname(__file__), "..", "..", "src")
        )
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, env.get("PYTHONPATH")) if p
        )
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--state-dir", str(state_dir),
                "--port", "0",
                "--pool-workers", str(pool_workers),
                *extra,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        line = self.proc.stdout.readline()
        match = re.search(r"listening on http://[\d.]+:(\d+)", line)
        assert match, f"no listen line, got: {line!r}"
        self.url = f"http://127.0.0.1:{match.group(1)}"
        self.client = ServiceClient(self.url, timeout=10.0)

    def kill9(self):
        self.proc.kill()
        self.proc.wait(timeout=30)

    def sigterm(self):
        self.proc.send_signal(signal.SIGTERM)

    def cleanup(self):
        if self.proc.poll() is None:
            self.proc.kill()
        self.proc.wait(timeout=30)


@pytest.fixture
def state_dir(tmp_path):
    return tmp_path / "state"


def test_kill9_mid_sweep_then_restart_completes_without_recompute(
    state_dir,
):
    specs = sweep_specs(n=4, delay=0.4)
    hashes = [spec_hash(s) for s in specs]
    server = ServerProcess(state_dir)
    try:
        ticket = server.client.submit(specs, sweep_id="chaos-sweep")
        assert ticket["cells"] == hashes
        # Wait until the sweep is provably *mid-flight*: some cells
        # done, some not.
        deadline = time.monotonic() + 60
        while True:
            snapshot = server.client.sweep("chaos-sweep")
            if 1 <= snapshot["done"] < snapshot["total"]:
                break
            assert time.monotonic() < deadline, "never reached mid-sweep"
            time.sleep(0.05)
        server.kill9()  # no drain, no goodbye
        done_before = {
            h for h, cell in snapshot["cells"].items()
            if cell["status"] == "done"
        }
        assert done_before and len(done_before) < len(hashes)
    finally:
        server.cleanup()

    restarted = ServerProcess(state_dir)
    try:
        final = restarted.client.wait_for_sweep("chaos-sweep", timeout=120)
        assert final["failed"] == []
        assert final["total"] == len(hashes)
        # Every cell that finished before the kill comes back as a
        # verified cache hit...
        for digest in done_before:
            assert final["cells"][digest]["cache_hit"] is True
        # ...and nothing computed twice: recomputes + cache hits cover
        # the sweep exactly.
        stats = restarted.client.stats()
        hits = sum(
            1 for cell in final["cells"].values() if cell["cache_hit"]
        )
        assert stats["runs_computed"] + hits == len(hashes)
        assert stats["runs_computed"] <= len(hashes) - len(done_before)
        # Results are intact and self-consistent.
        for digest in hashes:
            entry = restarted.client.result(digest)
            assert entry["spec_hash"] == digest
    finally:
        restarted.cleanup()


def test_corrupted_cache_entry_is_recomputed_not_served(state_dir):
    spec = {**BASE, "seed": 1}
    digest = spec_hash(spec)
    server = ServerProcess(state_dir)
    try:
        ticket = server.client.submit([spec])
        server.client.wait_for_sweep(ticket["sweep_id"], timeout=60)
        pristine = server.client.result(digest)
        server.sigterm()
        server.proc.wait(timeout=30)
    finally:
        server.cleanup()

    # Flip bits in the stored result while the server is down.
    entry_path = state_dir / "cache" / digest[:2] / f"{digest}.json"
    entry = json.loads(entry_path.read_text())
    entry["result"]["messages_sent"] = 10**9
    entry_path.write_text(json.dumps(entry))

    restarted = ServerProcess(state_dir)
    try:
        ticket = restarted.client.submit([spec])
        snapshot = restarted.client.wait_for_sweep(
            ticket["sweep_id"], timeout=60
        )
        cell = snapshot["cells"][digest]
        # Detected via the integrity check: recomputed, not served.
        assert cell["cache_hit"] is False
        stats = restarted.client.stats()
        assert stats["cache"]["corruptions"] == 1
        assert stats["runs_computed"] == 1
        healed = restarted.client.result(digest)
        assert healed["fingerprint"] == pristine["fingerprint"]
        assert healed["result"] == pristine["result"]
    finally:
        restarted.cleanup()


def test_sigterm_drains_in_flight_sweep_then_exits_zero(state_dir):
    specs = sweep_specs(n=2, delay=0.5)
    server = ServerProcess(state_dir)
    try:
        server.client.submit(specs, sweep_id="drain-me")
        # Mid-flight SIGTERM: the server must finish the sweep, not
        # drop it.
        time.sleep(0.3)
        server.sigterm()
        assert server.proc.wait(timeout=120) == 0
        output = server.proc.stdout.read()
        assert "drained cleanly" in output
    finally:
        server.cleanup()

    # The drained sweep is journaled complete: a restart resumes
    # nothing and serves both results from cache.
    restarted = ServerProcess(state_dir)
    try:
        for spec in specs:
            entry = restarted.client.result(spec_hash(spec))
            assert entry["spec_hash"] == spec_hash(spec)
    finally:
        restarted.cleanup()


def test_worker_crash_chaos_recovers_through_the_full_stack(state_dir):
    # End-to-end version of the scheduler-level crash test: the worker
    # process dies via os._exit inside the pool, the server retries,
    # and the final stats match a clean run bitwise.
    chaotic = {**BASE, "seed": 7, "chaos": {"crash_attempts": 1}}
    clean = {**BASE, "seed": 7}
    digest = spec_hash(chaotic)
    assert digest == spec_hash(clean)

    server = ServerProcess(state_dir, extra=("--attempts", "3"))
    try:
        ticket = server.client.submit([chaotic])
        snapshot = server.client.wait_for_sweep(
            ticket["sweep_id"], timeout=120
        )
        cell = snapshot["cells"][digest]
        assert cell["status"] == "done"
        assert cell["attempts"] >= 2
        stats = server.client.stats()
        assert stats["worker_crashes"] >= 1
        crashed_entry = server.client.result(digest)
    finally:
        server.cleanup()

    # A pristine state dir computes the same spec without chaos: the
    # fingerprints must be bitwise identical.
    clean_dir = state_dir.parent / "clean-state"
    clean_server = ServerProcess(clean_dir)
    try:
        ticket = clean_server.client.submit([clean])
        clean_server.client.wait_for_sweep(ticket["sweep_id"], timeout=60)
        clean_entry = clean_server.client.result(digest)
        assert crashed_entry["fingerprint"] == clean_entry["fingerprint"]
        assert crashed_entry["result"] == clean_entry["result"]
    finally:
        clean_server.cleanup()
