"""HTTP-layer tests against an in-process server (inline scheduler).

Each test binds a real ``ThreadingHTTPServer`` on an OS-assigned port
and talks to it through :class:`repro.service.client.ServiceClient` —
the same stack ``repro serve`` / ``repro submit`` use.
"""

import json
import socket
import threading

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ExperimentService, make_server
from repro.service.specio import canonical_spec, spec_hash

PAYLOAD = {"workers": 4, "max_iter": 2, "seed": 3}


@pytest.fixture
def service_stack(tmp_path):
    service = ExperimentService(
        tmp_path / "state", pool_workers=2, inline=True, max_pending=8
    )
    httpd = make_server(service, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(
        f"http://127.0.0.1:{httpd.server_address[1]}", timeout=10.0
    )
    yield service, client
    httpd.shutdown()
    httpd.server_close()
    service.scheduler.shutdown(timeout=10)


class TestEndpoints:
    def test_submit_poll_result_round_trip(self, service_stack):
        _, client = service_stack
        ticket = client.submit_one(dict(PAYLOAD))
        assert ticket["sweep_id"] == "s000001"
        digest = ticket["cells"][0]
        assert digest == spec_hash(PAYLOAD)
        snapshot = client.wait_for_sweep(ticket["sweep_id"], timeout=60)
        assert snapshot["complete"] is True
        assert snapshot["cells"][digest]["status"] == "done"
        entry = client.result(digest)
        assert entry["spec_hash"] == digest
        assert entry["spec"] == canonical_spec(PAYLOAD)
        assert "final_params_sha256" in entry["fingerprint"]

    def test_multi_spec_sweep_with_explicit_id(self, service_stack):
        _, client = service_stack
        specs = [dict(PAYLOAD), {**PAYLOAD, "seed": 4}]
        ticket = client.submit(specs, sweep_id="mine")
        assert ticket["sweep_id"] == "mine"
        snapshot = client.wait_for_sweep("mine", timeout=60)
        assert snapshot["total"] == 2
        assert snapshot["failed"] == []

    def test_second_submit_is_a_cache_hit(self, service_stack):
        _, client = service_stack
        first = client.submit_one(dict(PAYLOAD))
        client.wait_for_sweep(first["sweep_id"], timeout=60)
        second = client.submit_one(dict(PAYLOAD))
        snapshot = client.wait_for_sweep(second["sweep_id"], timeout=60)
        digest = spec_hash(PAYLOAD)
        assert snapshot["cells"][digest]["cache_hit"] is True
        assert client.stats()["runs_computed"] == 1

    def test_bad_spec_is_a_400_with_the_validation_message(
        self, service_stack
    ):
        _, client = service_stack
        with pytest.raises(ServiceError) as info:
            client.submit_one({"workers": 4, "bogus": True})
        assert info.value.status == 400
        assert "unknown spec field" in str(info.value)

    def test_malformed_json_is_a_400(self, service_stack):
        _, client = service_stack
        import urllib.request
        request = urllib.request.Request(
            client.url + "/submit", data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400

    def test_unknown_sweep_and_result_are_404(self, service_stack):
        _, client = service_stack
        for path in ("/sweep/nope", "/result/" + "0" * 64, "/nope"):
            with pytest.raises(ServiceError) as info:
                client._request(path)
            assert info.value.status == 404

    def test_duplicate_sweep_id_is_a_409(self, service_stack):
        _, client = service_stack
        client.submit([dict(PAYLOAD)], sweep_id="dup")
        with pytest.raises(ServiceError) as info:
            client.submit([{**PAYLOAD, "seed": 9}], sweep_id="dup")
        assert info.value.status == 409
        client.wait_for_sweep("dup", timeout=60)

    def test_resubmitting_identical_sweep_is_idempotent(self, service_stack):
        # A client retry after a lost response re-sends the same
        # sweep_id + cells; the server must acknowledge with the
        # existing ticket, not 409, and never duplicate the sweep.
        _, client = service_stack
        first = client.submit([dict(PAYLOAD)], sweep_id="retry")
        second = client.submit([dict(PAYLOAD)], sweep_id="retry")
        assert second == first
        snapshot = client.wait_for_sweep("retry", timeout=60)
        assert snapshot["total"] == 1
        assert client.stats()["runs_computed"] == 1


class TestDegradation:
    def test_healthz_always_answers(self, service_stack):
        _, client = service_stack
        assert client.healthz() == {"ok": True}

    def test_overload_sheds_with_429_and_readyz_reflects_it(self, tmp_path):
        service = ExperimentService(
            tmp_path / "state", inline=True, max_pending=1
        )
        httpd = make_server(service, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(
            f"http://127.0.0.1:{httpd.server_address[1]}", timeout=10.0
        )
        try:
            slow = {**PAYLOAD, "chaos": {"delay_seconds": 1.0}}
            ticket = client.submit_one(slow)
            with pytest.raises(ServiceError) as info:
                client.submit_one({**PAYLOAD, "seed": 5})
            assert info.value.status == 429
            assert client.readyz() is False  # saturated
            assert client.healthz() == {"ok": True}  # but alive
            client.wait_for_sweep(ticket["sweep_id"], timeout=60)
            assert client.readyz() is True  # recovered
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.scheduler.shutdown(timeout=10)

    def test_draining_returns_503_and_unready(self, service_stack):
        service, client = service_stack
        service.scheduler.drain(timeout=10)
        with pytest.raises(ServiceError) as info:
            client.submit_one(dict(PAYLOAD))
        assert info.value.status == 503
        assert client.readyz() is False

    def test_slow_client_does_not_block_other_requests(self, service_stack):
        _, client = service_stack
        # Open a connection and... do nothing with it (a stalled
        # client holding a socket); health checks must still answer.
        host, port = client.url.rsplit(":", 1)[0][7:], int(
            client.url.rsplit(":", 1)[1]
        )
        stalled = socket.create_connection((host, port))
        try:
            stalled.sendall(b"POST /submit HTTP/1.1\r\n")  # never finishes
            assert client.healthz() == {"ok": True}
            ticket = client.submit_one(dict(PAYLOAD))
            assert client.wait_for_sweep(ticket["sweep_id"], timeout=60)
        finally:
            stalled.close()


class TestResume:
    def test_resume_replays_incomplete_sweeps_from_cache(self, tmp_path):
        state = tmp_path / "state"
        first = ExperimentService(state, inline=True)
        ticket = first.submit(dict(PAYLOAD))
        sweep = first.scheduler.sweep(ticket["sweep_id"])
        assert sweep.finished.wait(60)
        # Simulate dying *before* sweep-done landed: rebuild the
        # journal without the final record.
        digest = spec_hash(PAYLOAD)
        lines = [
            json.dumps(
                {"kind": "sweep", "sweep_id": "s000001",
                 "cells": [{"hash": digest, "payload": PAYLOAD}]}
            )
        ]
        (state / "journal.jsonl").write_text("\n".join(lines) + "\n")
        first.scheduler.shutdown(timeout=10)

        second = ExperimentService(state, inline=True)
        resumed = second.resume()
        assert resumed == ["s000001"]
        sweep = second.scheduler.sweep("s000001")
        assert sweep.finished.wait(60)
        cell = sweep.snapshot()["cells"][digest]
        # The pre-crash result is found in the cache: no recompute.
        assert cell["cache_hit"] is True
        assert second.scheduler.counters["runs_computed"] == 0
        assert second.journal.replay()["s000001"].complete
        second.scheduler.shutdown(timeout=10)

    def test_completed_sweeps_are_not_resumed(self, tmp_path):
        state = tmp_path / "state"
        first = ExperimentService(state, inline=True)
        ticket = first.submit(dict(PAYLOAD))
        sweep = first.scheduler.sweep(ticket["sweep_id"])
        assert sweep.finished.wait(60)
        first.scheduler.shutdown(timeout=10)

        second = ExperimentService(state, inline=True)
        assert second.resume() == []
        # ...and the sweep-id sequence continues, never reuses.
        ticket = second.submit({**PAYLOAD, "seed": 11})
        assert ticket["sweep_id"] == "s000002"
        second.scheduler.sweep("s000002").finished.wait(60)
        second.scheduler.shutdown(timeout=10)
