"""Property tests for the service's canonical spec form + cache key.

The spec hash is the result cache's address, so two invariants carry
the whole correctness story:

* requests describing the *same* experiment hash identically — under
  JSON key reordering, default-field elision, alias spellings, and
  label fields (``name``/``chaos``), and
* requests describing *different* experiments never collide on the
  canonical form.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.specio import (
    DEFAULTS,
    SpecError,
    canonical_json,
    canonical_spec,
    spec_from_dict,
    spec_hash,
)

# ----------------------------------------------------------------------
# Strategies: valid spec payloads
# ----------------------------------------------------------------------
spec_payloads = st.fixed_dictionaries(
    {},
    optional={
        "workload": st.sampled_from(["svm", "cnn"]),
        "preset": st.sampled_from(["smoke", "bench"]),
        # Every sampled graph accepts every sampled worker count
        # (ring_based needs even n >= 4; double_ring needs n % 4 == 0).
        "graph": st.sampled_from(
            ["ring_based", "double_ring", "ring", "complete"]
        ),
        "workers": st.sampled_from([8, 12]),
        "protocol": st.sampled_from(
            ["hop", "allreduce", "adpsgd", "ps", "ps-async"]
        ),
        "max_iter": st.integers(min_value=1, max_value=50),
        "seed": st.integers(min_value=0, max_value=10_000),
        "group_size": st.integers(min_value=2, max_value=6),
        "static_groups": st.booleans(),
        "momentum_mode": st.sampled_from(["tracking", "quasi-global"]),
        "name": st.text(min_size=1, max_size=12),
    },
)


def shuffled(payload: dict, rnd) -> dict:
    items = list(payload.items())
    rnd.shuffle(items)
    return dict(items)


# ----------------------------------------------------------------------
# Invariance: same experiment -> same hash
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(payload=spec_payloads, data=st.data())
def test_hash_invariant_under_key_reordering(payload, data):
    reordered = dict(
        data.draw(st.permutations(list(payload.items())), label="order")
    )
    assert spec_hash(reordered) == spec_hash(payload)


@settings(max_examples=50, deadline=None)
@given(payload=spec_payloads, data=st.data())
def test_hash_invariant_under_default_field_elision(payload, data):
    # Spelling out any subset of defaulted fields must not move the
    # hash: {"protocol": "hop"} and {} name the same experiment.
    non_label = {k: v for k, v in DEFAULTS.items()}
    explicit = dict(payload)
    for field in data.draw(
        st.sets(st.sampled_from(sorted(non_label))), label="spelled"
    ):
        explicit.setdefault(field, non_label[field])
    assert spec_hash(explicit) == spec_hash(payload)


@settings(max_examples=50, deadline=None)
@given(payload=spec_payloads, label=st.text(max_size=16))
def test_hash_ignores_name_and_chaos_labels(payload, label):
    relabeled = {**payload, "name": label, "chaos": {"fail_attempts": 2}}
    assert spec_hash(relabeled) == spec_hash(payload)


@settings(max_examples=50, deadline=None)
@given(payload=spec_payloads)
def test_canonical_form_is_a_fixpoint(payload):
    canonical = canonical_spec(payload)
    assert canonical_spec(canonical) == canonical
    # ...and round-trips through its own JSON serialization.
    assert canonical_spec(json.loads(canonical_json(canonical))) == canonical


# ----------------------------------------------------------------------
# Injectivity: different experiments never collide
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(first=spec_payloads, second=spec_payloads)
def test_distinct_canonical_specs_never_collide(first, second):
    c1, c2 = canonical_spec(first), canonical_spec(second)
    if c1 != c2:
        assert spec_hash(first) != spec_hash(second)
    else:
        assert spec_hash(first) == spec_hash(second)


def test_each_field_change_moves_the_hash():
    base = {"workers": 4, "max_iter": 5, "seed": 1}
    baseline = spec_hash(base)
    variants = [
        {**base, "workers": 6},
        {**base, "max_iter": 6},
        {**base, "seed": 2},
        {**base, "protocol": "allreduce"},
        {**base, "workload": "cnn"},
        {**base, "graph": "complete"},
        {**base, "scenario": {"family": "straggler"}},
        {**base, "compression": {"scheme": "topk",
                                 "params": {"ratio": 0.5}}},
    ]
    hashes = [spec_hash(v) for v in variants]
    assert baseline not in hashes
    assert len(set(hashes)) == len(hashes)


# ----------------------------------------------------------------------
# Aliases and normalization
# ----------------------------------------------------------------------
def test_protocol_aliases_share_a_hash():
    assert spec_hash({"protocol": "ps"}) == spec_hash({"protocol": "ps-bsp"})
    assert spec_hash({"protocol": "prague"}) == spec_hash(
        {"protocol": "partial-allreduce"}
    )


def test_graph_alias_spellings_share_a_hash():
    assert spec_hash({"graph": "ring-based"}) == spec_hash(
        {"graph": "ring_based"}
    )


def test_none_scenario_and_compression_elide_to_defaults():
    assert spec_hash({"scenario": {"family": "none"}}) == spec_hash({})
    assert spec_hash({"compression": {"scheme": "none"}}) == spec_hash({})


# ----------------------------------------------------------------------
# Validation errors
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "payload,fragment",
    [
        ({"bogus": 1}, "unknown spec field"),
        ({"workers": "four"}, "workers must be an integer"),
        ({"workers": True}, "workers must be an integer"),
        ({"workers": 0}, "workers must be >= 1"),
        ({"max_iter": 0}, "max_iter must be >= 1"),
        ({"preset": "huge"}, "unknown preset"),
        ({"workload": "resnet"}, "unknown workload"),
        ({"momentum_mode": "both"}, "momentum_mode"),
        ({"static_groups": "yes"}, "static_groups must be a boolean"),
        ({"scenario": {"params": {}}}, "scenario must be"),
        ({"scenario": {"family": "none", "extra": 1}},
         "unknown scenario field"),
        ({"compression": {"params": {}}}, "compression must be"),
        ([], "must be a JSON object"),
    ],
)
def test_invalid_payloads_raise_spec_error(payload, fragment):
    with pytest.raises(SpecError, match=fragment):
        canonical_spec(payload)


def test_unknown_registry_names_surface_registry_message():
    with pytest.raises(SpecError):
        canonical_spec({"protocol": "nope"})
    with pytest.raises(SpecError):
        canonical_spec({"scenario": {"family": "nope"}})
    with pytest.raises(SpecError):
        canonical_spec({"compression": {"scheme": "nope"}})
    with pytest.raises(SpecError):
        canonical_spec({"graph": "nope"})


# ----------------------------------------------------------------------
# spec_from_dict
# ----------------------------------------------------------------------
def test_spec_from_dict_builds_runnable_spec():
    spec, canonical, digest = spec_from_dict(
        {"workers": 4, "max_iter": 5, "seed": 1, "name": "mine"}
    )
    assert spec.name == "mine"
    assert spec.topology.n == 4
    assert spec.max_iter == 5
    assert digest == spec_hash({"workers": 4, "max_iter": 5, "seed": 1})
    assert canonical == {"max_iter": 5, "seed": 1, "workers": 4}


def test_spec_from_dict_default_name_embeds_hash():
    spec, _, digest = spec_from_dict({"workers": 4})
    assert spec.name == f"service/{digest[:12]}"
