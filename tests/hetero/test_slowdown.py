"""Tests for slowdown models and the compute-time oracle."""

import numpy as np
import pytest

from repro.hetero import (
    ComposedSlowdown,
    ComputeModel,
    DeterministicSlowdown,
    NoSlowdown,
    RandomSlowdown,
)
from repro.sim import RngStreams


class TestNoSlowdown:
    def test_always_one(self):
        model = NoSlowdown()
        assert model.factor(0, 0) == 1.0
        assert model.factor(7, 1234) == 1.0


class TestRandomSlowdown:
    def test_factors_are_one_or_slow(self):
        model = RandomSlowdown(RngStreams(0), factor=6.0, probability=0.25)
        factors = {model.factor(w, k) for w in range(4) for k in range(100)}
        assert factors <= {1.0, 6.0}

    def test_empirical_rate_matches_probability(self):
        model = RandomSlowdown(RngStreams(1), factor=6.0, probability=1 / 16)
        draws = [model.factor(0, k) for k in range(4000)]
        rate = np.mean([d == 6.0 for d in draws])
        assert abs(rate - 1 / 16) < 0.02

    def test_memoized_per_worker_iteration(self):
        model = RandomSlowdown(RngStreams(2), probability=0.5)
        assert model.factor(3, 7) == model.factor(3, 7)

    def test_reproducible_across_instances(self):
        a = RandomSlowdown(RngStreams(3), probability=0.5)
        b = RandomSlowdown(RngStreams(3), probability=0.5)
        draws_a = [a.factor(1, k) for k in range(50)]
        draws_b = [b.factor(1, k) for k in range(50)]
        assert draws_a == draws_b

    def test_workers_independent(self):
        model = RandomSlowdown(RngStreams(4), probability=0.5)
        a = [model.factor(0, k) for k in range(100)]
        b = [model.factor(1, k) for k in range(100)]
        assert a != b

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomSlowdown(RngStreams(0), factor=0.5)
        with pytest.raises(ValueError):
            RandomSlowdown(RngStreams(0), probability=1.5)

    def test_describe(self):
        model = RandomSlowdown(RngStreams(0), factor=6.0, probability=0.0625)
        assert "6" in model.describe()


class TestRandomSlowdownStateless:
    """The counter-based rewrite must reproduce the legacy memo draws."""

    def test_identical_factors_to_legacy_sequential_stream(self):
        # The original implementation consumed one draw per query from
        # streams.stream("slowdown", worker) and memoized the result.
        # Workers query their iterations in order, so the iteration-k
        # factor was the k-th draw of that stream.  Re-derive those
        # draws here and require the stateless model to match exactly.
        from repro.sim.rng import derive_seed

        for seed in (0, 1, 3, 42):
            model = RandomSlowdown(
                RngStreams(seed), factor=6.0, probability=0.25
            )
            for worker in range(3):
                legacy_rng = np.random.default_rng(
                    derive_seed(seed, f"slowdown/{worker}")
                )
                legacy = [
                    6.0 if legacy_rng.random() < 0.25 else 1.0
                    for _ in range(64)
                ]
                fresh = [model.factor(worker, k) for k in range(64)]
                assert fresh == legacy

    def test_no_unbounded_memo(self):
        model = RandomSlowdown(RngStreams(0), probability=0.5)
        for k in range(0, 10_000, 7):
            model.factor(0, k)
        # Stateless draws: nothing per-iteration may accumulate.
        assert not hasattr(model, "_memo")
        per_iteration_state = [
            v for v in vars(model).values() if isinstance(v, dict) and len(v) > 100
        ]
        assert not per_iteration_state

    def test_far_future_iteration_is_cheap_and_consistent(self):
        model = RandomSlowdown(RngStreams(9), probability=0.5)
        far = model.factor(2, 10**12)
        assert far in (1.0, model.slow_factor)
        assert model.factor(2, 10**12) == far

    def test_query_order_independent(self):
        a = RandomSlowdown(RngStreams(5), probability=0.5)
        b = RandomSlowdown(RngStreams(5), probability=0.5)
        keys = [(w, k) for w in range(3) for k in range(30)]
        forward = {key: a.factor(*key) for key in keys}
        backward = {key: b.factor(*key) for key in reversed(keys)}
        assert forward == backward

    def test_rejects_negative_iteration(self):
        model = RandomSlowdown(RngStreams(0))
        with pytest.raises(ValueError):
            model.factor(0, -1)


class TestDeterministicSlowdown:
    def test_only_chosen_worker_slow(self):
        model = DeterministicSlowdown({2: 4.0})
        assert model.factor(2, 0) == 4.0
        assert model.factor(2, 999) == 4.0
        assert model.factor(0, 0) == 1.0

    def test_multiple_stragglers(self):
        model = DeterministicSlowdown({0: 2.0, 5: 3.0})
        assert model.factor(0, 1) == 2.0
        assert model.factor(5, 1) == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DeterministicSlowdown({1: 0.5})


class TestComposedSlowdown:
    def test_factors_multiply(self):
        model = ComposedSlowdown(
            [DeterministicSlowdown({0: 2.0}), DeterministicSlowdown({0: 3.0})]
        )
        assert model.factor(0, 0) == 6.0
        assert model.factor(1, 0) == 1.0

    def test_requires_models(self):
        with pytest.raises(ValueError):
            ComposedSlowdown([])


class TestComputeModel:
    def test_scalar_base_time(self):
        model = ComputeModel(base_time=0.2, n_workers=4)
        assert model.n_workers == 4
        assert model.duration(0, 0) == pytest.approx(0.2)

    def test_per_worker_base_times(self):
        model = ComputeModel(base_time=[0.1, 0.4])
        assert model.duration(1, 0) == pytest.approx(0.4)

    def test_slowdown_applied(self):
        model = ComputeModel(
            base_time=0.1,
            n_workers=2,
            slowdown=DeterministicSlowdown({1: 4.0}),
        )
        assert model.duration(1, 5) == pytest.approx(0.4)
        assert model.duration(0, 5) == pytest.approx(0.1)

    def test_jitter_perturbs_but_stays_positive(self):
        model = ComputeModel(
            base_time=0.1, n_workers=1, jitter=0.2, streams=RngStreams(0)
        )
        durations = [model.duration(0, k) for k in range(50)]
        assert all(d > 0 for d in durations)
        assert len(set(durations)) > 1

    def test_no_jitter_is_deterministic(self):
        model = ComputeModel(base_time=0.1, n_workers=1)
        assert model.duration(0, 1) == model.duration(0, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            ComputeModel(base_time=0.1)  # n_workers missing
        with pytest.raises(ValueError):
            ComputeModel(base_time=-1.0, n_workers=2)
        with pytest.raises(ValueError):
            ComputeModel(base_time=0.1, n_workers=1, jitter=-0.5)

    def test_describe_mentions_slowdown(self):
        model = ComputeModel(
            base_time=0.1, n_workers=2, slowdown=DeterministicSlowdown({0: 2.0})
        )
        assert "deterministic" in model.describe()
