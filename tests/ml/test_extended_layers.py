"""Tests for the extended activation and pooling layers."""

import numpy as np
import pytest

from repro.ml import AvgPool2D, Sigmoid, Tanh, numerical_gradient, relative_error


RNG = lambda: np.random.default_rng(7)  # noqa: E731 - test brevity


def input_gradcheck(layer, x, tol=1e-6):
    out = layer.forward(x.copy(), training=True)
    dx = layer.backward(np.ones_like(out))

    def f(x_flat):
        return float(np.sum(layer.forward(x_flat, training=True)))

    numeric = numerical_gradient(f, x.copy())
    assert relative_error(dx, numeric) < tol


class TestTanh:
    def test_range(self):
        out = Tanh().forward(RNG().normal(size=(3, 5)) * 10)
        assert np.all(np.abs(out) <= 1.0)

    def test_zero_maps_to_zero(self):
        assert Tanh().forward(np.zeros((1, 1)))[0, 0] == 0.0

    def test_gradcheck(self):
        input_gradcheck(Tanh(), RNG().normal(size=(4, 6)))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            Tanh().backward(np.ones((1, 1)))


class TestSigmoid:
    def test_range(self):
        out = Sigmoid().forward(RNG().normal(size=(3, 5)) * 10)
        assert np.all((out > 0) & (out < 1))

    def test_zero_maps_to_half(self):
        assert Sigmoid().forward(np.zeros((1, 1)))[0, 0] == pytest.approx(0.5)

    def test_extreme_inputs_stable(self):
        out = Sigmoid().forward(np.array([[1000.0, -1000.0]]))
        assert np.all(np.isfinite(out))

    def test_gradcheck(self):
        input_gradcheck(Sigmoid(), RNG().normal(size=(4, 6)))


class TestAvgPool2D:
    def test_forward_averages(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = AvgPool2D(2).forward(x)
        assert out[0, 0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_backward_distributes_evenly(self):
        layer = AvgPool2D(2)
        x = RNG().normal(size=(1, 1, 4, 4))
        layer.forward(x, training=True)
        dx = layer.backward(np.ones((1, 1, 2, 2)))
        assert np.allclose(dx, 0.25)

    def test_gradcheck(self):
        input_gradcheck(AvgPool2D(2), RNG().normal(size=(2, 3, 4, 4)))

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            AvgPool2D(2).forward(np.ones((1, 1, 5, 4)))

    def test_size_validation(self):
        with pytest.raises(ValueError):
            AvgPool2D(0)

    def test_in_a_small_network(self):
        """AvgPool composes with conv layers end to end."""
        from repro.ml import Conv2D, Dense, Flatten, Model, ReLU, Sequential
        from repro.ml.losses import SoftmaxCrossEntropy

        rng = RNG()
        model = Model(
            Sequential(
                [
                    Conv2D(1, 2, 3, rng, pad=1),
                    ReLU(),
                    AvgPool2D(2),
                    Flatten(),
                    Dense(2 * 4, 3, rng),
                ]
            ),
            SoftmaxCrossEntropy(),
        )
        x = rng.normal(size=(4, 1, 4, 4))
        y = rng.integers(0, 3, size=4)
        loss, grad = model.loss_and_grad(x, y)
        assert np.isfinite(loss)
        assert grad.shape == (model.dim,)
