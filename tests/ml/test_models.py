"""Model facade tests: flat params, gradients, training sanity."""

import numpy as np
import pytest

from repro.ml import (
    SGD,
    Batcher,
    build_mlp,
    build_svm,
    build_vgg_lite,
    check_model_gradient,
    synthetic_images,
    synthetic_webspam,
)


def test_flat_round_trip():
    model = build_mlp(np.random.default_rng(0), 6, [5], 3)
    flat = model.get_params()
    assert flat.shape == (model.dim,)
    model.set_params(np.zeros(model.dim))
    assert np.all(model.get_params() == 0)
    model.set_params(flat)
    assert np.array_equal(model.get_params(), flat)


def test_set_params_wrong_size_rejected():
    model = build_mlp(np.random.default_rng(0), 4, [], 2)
    with pytest.raises(ValueError):
        model.set_params(np.zeros(model.dim + 1))


def test_mlp_gradcheck():
    rng = np.random.default_rng(1)
    model = build_mlp(rng, 5, [4], 3)
    x = rng.normal(size=(6, 5))
    y = rng.integers(0, 3, size=6)
    assert check_model_gradient(model, x, y) < 1e-5


def test_svm_gradcheck():
    rng = np.random.default_rng(2)
    model = build_svm(rng, 8)
    x = rng.normal(size=(10, 8))
    y = rng.integers(0, 2, size=10)
    assert check_model_gradient(model, x, y) < 1e-6


def test_vgg_lite_gradcheck_small():
    rng = np.random.default_rng(3)
    model = build_vgg_lite(
        rng, image_size=4, channels=1, n_classes=3, base_filters=2, hidden=4
    )
    x = rng.normal(size=(2, 1, 4, 4))
    y = rng.integers(0, 3, size=2)
    assert check_model_gradient(model, x, y) < 1e-4


def test_l2_term_included_in_loss_and_grad():
    rng = np.random.default_rng(4)
    plain = build_svm(rng, 4)
    regularized = build_svm(np.random.default_rng(4), 4)
    regularized.l2 = 0.1

    x = rng.normal(size=(5, 4))
    y = rng.integers(0, 2, size=5)
    loss_plain, grad_plain = plain.loss_and_grad(x, y)
    loss_reg, grad_reg = regularized.loss_and_grad(x, y)
    flat = plain.get_params()
    assert loss_reg == pytest.approx(loss_plain + 0.05 * float(flat @ flat))
    assert np.allclose(grad_reg, grad_plain + 0.1 * flat)


def test_vgg_lite_rejects_bad_image_size():
    with pytest.raises(ValueError):
        build_vgg_lite(np.random.default_rng(0), image_size=6)


def test_predict_multiclass_and_binary():
    rng = np.random.default_rng(5)
    mlp = build_mlp(rng, 4, [], 3)
    assert mlp.predict(rng.normal(size=(7, 4))).shape == (7,)

    svm = build_svm(rng, 4)
    preds = svm.predict(rng.normal(size=(7, 4)))
    assert set(np.unique(preds)) <= {0, 1}


def test_training_reduces_loss_svm():
    rng = np.random.default_rng(6)
    data = synthetic_webspam(rng, n_train=512, n_test=128, n_features=32)
    model = build_svm(rng, 32)
    optimizer = SGD(lr=1.0, momentum=0.9, weight_decay=1e-7)
    batcher = Batcher(data.x_train, data.y_train, 64, rng)

    initial_loss = model.loss_value(data.x_test, data.y_test)
    for step in range(60):
        xb, yb = batcher.next_batch()
        _, grad = model.loss_and_grad(xb, yb)
        model.set_params(
            model.get_params() + optimizer.step(model.get_params(), grad, step)
        )
    final_loss, acc = model.evaluate(data.x_test, data.y_test)
    assert final_loss < 0.6 * initial_loss
    assert acc > 0.8


def test_training_reduces_loss_cnn():
    rng = np.random.default_rng(7)
    data = synthetic_images(rng, n_train=512, n_test=128, image_size=8)
    model = build_vgg_lite(rng, image_size=8, base_filters=4, hidden=16)
    optimizer = SGD(lr=0.05, momentum=0.9, weight_decay=1e-4)
    batcher = Batcher(data.x_train, data.y_train, 64, rng)

    initial_loss = model.loss_value(data.x_test, data.y_test)
    for step in range(80):
        xb, yb = batcher.next_batch()
        _, grad = model.loss_and_grad(xb, yb)
        model.set_params(
            model.get_params() + optimizer.step(model.get_params(), grad, step)
        )
    final_loss, acc = model.evaluate(data.x_test, data.y_test)
    assert final_loss < initial_loss
    assert acc > 0.3  # 10 classes, chance = 0.1


def test_evaluate_returns_loss_and_accuracy():
    rng = np.random.default_rng(8)
    model = build_svm(rng, 4)
    x = rng.normal(size=(20, 4))
    y = rng.integers(0, 2, size=20)
    loss, acc = model.evaluate(x, y)
    assert loss > 0
    assert 0.0 <= acc <= 1.0
