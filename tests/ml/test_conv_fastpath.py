"""Parity suite: the conv/pool fast paths vs the reference kernels.

The fast implementations in ``repro.ml.layers`` (cached im2col plan,
bincount / sparse-matvec col2im, flat-gather pooling) must reproduce
the seed implementations preserved in ``repro.ml.reference`` across
stride/pad/dtype combinations, and must agree with central-difference
numerical gradients.
"""

import numpy as np
import pytest

import repro.ml.layers as layers_module
from repro.ml.gradcheck import numerical_gradient, relative_error
from repro.ml.layers import Conv2D, Dropout, MaxPool2D, _conv_plan
from repro.ml.reference import (
    conv2d_backward_reference,
    conv2d_forward_reference,
    maxpool_backward_reference,
    maxpool_forward_reference,
)


def RNG(seed=0):
    return np.random.default_rng(seed)


def make_conv(c, f, k, stride, pad, dtype):
    layer = Conv2D(c, f, k, RNG(7), stride=stride, pad=pad)
    layer.W.data = layer.W.data.astype(dtype)
    layer.W.grad = np.zeros_like(layer.W.data)
    layer.b.data = layer.b.data.astype(dtype)
    layer.b.grad = np.zeros_like(layer.b.data)
    return layer

CONV_CONFIGS = [
    # (n, c, h, filters, k, stride, pad)
    (2, 3, 8, 4, 3, 1, 1),     # the VGG-lite block shape
    (4, 4, 4, 8, 3, 1, 1),     # second block shape
    (2, 3, 9, 5, 3, 2, 1),     # strided
    (2, 2, 7, 3, 2, 1, 0),     # even kernel, no padding
    (3, 2, 11, 4, 3, 2, 2),    # stride + wide padding
    (1, 1, 5, 1, 5, 1, 0),     # kernel covers the whole input
    (2, 3, 6, 2, 3, 3, 1),     # stride > kernel//2
]


def tolerance(dtype):
    return dict(rtol=1e-4, atol=1e-4) if dtype == np.float32 else dict(
        rtol=1e-10, atol=1e-12
    )


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
@pytest.mark.parametrize("config", CONV_CONFIGS)
class TestConvParity:
    def test_forward_matches_reference(self, config, dtype):
        n, c, h, f, k, stride, pad = config
        layer = make_conv(c, f, k, stride, pad, dtype)
        x = RNG(1).normal(size=(n, c, h, h)).astype(dtype)
        out = layer.forward(x)
        ref = conv2d_forward_reference(
            x.astype(np.float64),
            layer.W.data.astype(np.float64),
            layer.b.data.astype(np.float64),
            stride,
            pad,
        )
        assert out.shape == ref.shape
        assert np.allclose(out, ref, **tolerance(dtype))

    def test_backward_matches_reference(self, config, dtype):
        n, c, h, f, k, stride, pad = config
        layer = make_conv(c, f, k, stride, pad, dtype)
        x = RNG(1).normal(size=(n, c, h, h)).astype(dtype)
        out = layer.forward(x, training=True)
        dout = RNG(2).normal(size=out.shape).astype(dtype)
        dx = layer.backward(dout)
        ref_dx, ref_dw, ref_db = conv2d_backward_reference(
            x.astype(np.float64),
            layer.W.data.astype(np.float64),
            dout.astype(np.float64),
            stride,
            pad,
        )
        tol = tolerance(dtype)
        assert dx.shape == x.shape
        assert np.allclose(dx, ref_dx, **tol)
        assert np.allclose(layer.W.grad, ref_dw, **tol)
        assert np.allclose(layer.b.grad, ref_db, **tol)

    def test_backward_bincount_fallback_matches_reference(
        self, config, dtype, monkeypatch
    ):
        """The scipy-free col2im path must agree with the reference too."""
        n, c, h, f, k, stride, pad = config
        monkeypatch.setattr(
            layers_module, "_col2im_operator", lambda *args: None
        )
        layer = make_conv(c, f, k, stride, pad, dtype)
        x = RNG(1).normal(size=(n, c, h, h)).astype(dtype)
        out = layer.forward(x, training=True)
        dout = RNG(2).normal(size=out.shape).astype(dtype)
        dx = layer.backward(dout)
        ref_dx, _, _ = conv2d_backward_reference(
            x.astype(np.float64),
            layer.W.data.astype(np.float64),
            dout.astype(np.float64),
            stride,
            pad,
        )
        assert dx.dtype == dtype
        assert np.allclose(dx, ref_dx, **tolerance(dtype))


class TestConvFastPathDetails:
    def test_float64_parity_is_tight(self):
        """In float64 the fast path matches the reference to ~1 ulp."""
        layer = make_conv(3, 4, 3, 1, 1, np.float64)
        x = RNG(3).normal(size=(4, 3, 8, 8))
        out = layer.forward(x, training=True)
        dout = RNG(4).normal(size=out.shape)
        dx = layer.backward(dout)
        ref_out = conv2d_forward_reference(
            x, layer.W.data, layer.b.data, 1, 1
        )
        ref_dx, ref_dw, ref_db = conv2d_backward_reference(
            x, layer.W.data, dout, 1, 1
        )
        assert relative_error(out, ref_out) < 1e-12
        assert relative_error(dx, ref_dx) < 1e-10
        assert relative_error(layer.W.grad, ref_dw) < 1e-10
        assert relative_error(layer.b.grad, ref_db) < 1e-12

    def test_numerical_gradient_wrt_input(self):
        layer = make_conv(2, 3, 3, 1, 1, np.float64)
        x = RNG(5).normal(size=(2, 2, 5, 5))
        projection = RNG(6).normal(size=layer.forward(x).shape)

        def loss(x_val):
            return float(np.sum(layer.forward(x_val) * projection))

        layer.forward(x, training=True)
        dx = layer.backward(projection)
        numeric = numerical_gradient(loss, x.copy())
        assert relative_error(dx, numeric) < 1e-6

    def test_numerical_gradient_wrt_weights(self):
        layer = make_conv(2, 3, 3, 2, 1, np.float64)
        x = RNG(5).normal(size=(2, 2, 6, 6))
        projection = RNG(6).normal(size=layer.forward(x).shape)

        def loss(w_val):
            layer.W.data = w_val
            return float(np.sum(layer.forward(x) * projection))

        layer.forward(x, training=True)
        layer.backward(projection)
        analytic = layer.W.grad.copy()
        numeric = numerical_gradient(loss, layer.W.data.copy())
        assert relative_error(analytic, numeric) < 1e-6

    def test_plan_is_cached_per_shape(self):
        _conv_plan.cache_clear()
        layer = make_conv(3, 4, 3, 1, 1, np.float64)
        x = RNG(0).normal(size=(2, 3, 8, 8))
        for _ in range(3):
            layer.forward(x, training=True)
            layer.backward(RNG(1).normal(size=(2, 4, 8, 8)))
        info = _conv_plan.cache_info()
        assert info.misses == 1
        assert info.hits >= 2

    def test_dtype_honored_end_to_end(self):
        layer = make_conv(3, 4, 3, 1, 1, np.float32)
        x = RNG(0).normal(size=(2, 3, 8, 8)).astype(np.float32)
        out = layer.forward(x, training=True)
        dx = layer.backward(out)
        assert out.dtype == np.float32
        assert dx.dtype == np.float32
        assert layer.W.grad.dtype == np.float32
        assert layer.b.grad.dtype == np.float32


class TestMaxPoolParity:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("shape,size", [
        ((2, 3, 8, 8), 2),
        ((3, 2, 9, 9), 3),
        ((1, 1, 4, 4), 4),
    ])
    def test_forward_backward_match_reference(self, shape, size, dtype):
        layer = MaxPool2D(size)
        x = RNG(1).normal(size=shape).astype(dtype)
        out = layer.forward(x, training=True)
        ref_out, mask = maxpool_forward_reference(x, size)
        assert np.array_equal(out, ref_out)
        dout = RNG(2).normal(size=out.shape).astype(dtype)
        dx = layer.backward(dout)
        ref_dx = maxpool_backward_reference(dout, shape, mask, size)
        assert dx.dtype == dtype
        assert np.allclose(dx, ref_dx, **tolerance(dtype))

    def test_ties_route_gradient_to_first_max_only(self):
        """Constant windows: only the first position gets gradient."""
        layer = MaxPool2D(2)
        x = np.ones((1, 1, 4, 4))
        out = layer.forward(x, training=True)
        dx = layer.backward(np.ones_like(out))
        ref_out, mask = maxpool_forward_reference(x, 2)
        ref_dx = maxpool_backward_reference(np.ones_like(ref_out), x.shape, mask, 2)
        assert np.array_equal(dx, ref_dx)
        # exactly one gradient entry per window
        assert dx.sum() == out.size
        assert ((dx == 0) | (dx == 1)).all()

    def test_numerical_gradient(self):
        layer = MaxPool2D(2)
        x = RNG(3).normal(size=(2, 2, 4, 4))
        projection = RNG(4).normal(size=(2, 2, 2, 2))

        def loss(x_val):
            return float(np.sum(layer.forward(x_val) * projection))

        layer.forward(x, training=True)
        dx = layer.backward(projection)
        numeric = numerical_gradient(loss, x.copy())
        assert relative_error(dx, numeric) < 1e-6


class TestDropoutGuard:
    def test_backward_before_any_forward_raises(self):
        layer = Dropout(0.5, RNG())
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((2, 2)))

    def test_backward_after_eval_forward_raises(self):
        layer = Dropout(0.5, RNG())
        layer.forward(np.ones((2, 2)), training=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((2, 2)))

    def test_rate_zero_training_backward_is_identity(self):
        layer = Dropout(0.0, RNG())
        x = RNG(1).normal(size=(3, 3))
        layer.forward(x, training=True)
        dout = RNG(2).normal(size=(3, 3))
        assert np.array_equal(layer.backward(dout), dout)

    def test_eval_after_training_invalidates_mask(self):
        layer = Dropout(0.5, RNG())
        layer.forward(np.ones((2, 2)), training=True)
        layer.forward(np.ones((2, 2)), training=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((2, 2)))
