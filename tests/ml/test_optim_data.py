"""Tests for optimizers, schedules, datasets, batching, and params."""

import numpy as np
import pytest

from repro.ml import (
    SGD,
    Batcher,
    ConstantLR,
    Parameter,
    StepDecayLR,
    accuracy,
    flatten_grads,
    flatten_params,
    shard_dataset,
    smooth_series,
    synthetic_images,
    synthetic_webspam,
    total_size,
    unflatten_into,
)


class TestSGD:
    def test_plain_step_is_negative_lr_grad(self):
        sgd = SGD(lr=0.5)
        delta = sgd.step(np.zeros(3), np.array([1.0, -2.0, 0.0]))
        assert np.allclose(delta, [-0.5, 1.0, 0.0])

    def test_momentum_accumulates(self):
        sgd = SGD(lr=1.0, momentum=0.9)
        grad = np.array([1.0])
        first = sgd.step(np.zeros(1), grad)
        second = sgd.step(np.zeros(1), grad)
        assert first[0] == pytest.approx(-1.0)
        assert second[0] == pytest.approx(-1.9)

    def test_weight_decay_pulls_toward_zero(self):
        sgd = SGD(lr=1.0, weight_decay=0.1)
        delta = sgd.step(np.array([10.0]), np.zeros(1))
        assert delta[0] == pytest.approx(-1.0)

    def test_reset_clears_momentum(self):
        sgd = SGD(lr=1.0, momentum=0.9)
        sgd.step(np.zeros(1), np.array([1.0]))
        sgd.reset()
        delta = sgd.step(np.zeros(1), np.array([1.0]))
        assert delta[0] == pytest.approx(-1.0)

    def test_clone_has_fresh_state(self):
        sgd = SGD(lr=1.0, momentum=0.9)
        sgd.step(np.zeros(1), np.array([1.0]))
        clone = sgd.clone()
        delta = clone.step(np.zeros(1), np.array([1.0]))
        assert delta[0] == pytest.approx(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD(lr=1.0, momentum=1.0)
        with pytest.raises(ValueError):
            SGD(lr=1.0, weight_decay=-0.1)
        with pytest.raises(ValueError):
            ConstantLR(0.0)


class TestSchedules:
    def test_constant(self):
        schedule = ConstantLR(0.1)
        assert schedule(0) == schedule(1000) == 0.1

    def test_step_decay(self):
        schedule = StepDecayLR(1.0, step_size=10, gamma=0.1)
        assert schedule(0) == 1.0
        assert schedule(9) == 1.0
        assert schedule(10) == pytest.approx(0.1)
        assert schedule(20) == pytest.approx(0.01)

    def test_step_decay_validation(self):
        with pytest.raises(ValueError):
            StepDecayLR(1.0, step_size=0)

    def test_sgd_uses_schedule(self):
        sgd = SGD(lr=1.0, schedule=StepDecayLR(1.0, step_size=5))
        early = sgd.step(np.zeros(1), np.ones(1), iteration=0)
        late = sgd.step(np.zeros(1), np.ones(1), iteration=5)
        assert abs(late[0]) < abs(early[0])


class TestParams:
    def test_flatten_round_trip(self):
        params = [
            Parameter(np.arange(6, dtype=float).reshape(2, 3), "a"),
            Parameter(np.arange(4, dtype=float), "b"),
        ]
        flat = flatten_params(params)
        assert flat.shape == (10,)
        unflatten_into(params, flat * 2)
        assert np.array_equal(params[0].data, np.arange(6).reshape(2, 3) * 2)

    def test_flatten_grads(self):
        p = Parameter(np.zeros((2, 2)), "p")
        p.grad[...] = 3.0
        assert np.all(flatten_grads([p]) == 3.0)

    def test_unflatten_size_mismatch(self):
        p = Parameter(np.zeros(3), "p")
        with pytest.raises(ValueError):
            unflatten_into([p], np.zeros(4))

    def test_total_size(self):
        params = [Parameter(np.zeros((2, 3)), "a"), Parameter(np.zeros(5), "b")]
        assert total_size(params) == 11

    def test_empty_flatten(self):
        assert flatten_params([]).shape == (0,)


class TestDatasets:
    def test_synthetic_images_shapes(self):
        data = synthetic_images(
            np.random.default_rng(0), n_train=100, n_test=20, image_size=8
        )
        assert data.x_train.shape == (100, 3, 8, 8)
        assert data.y_train.shape == (100,)
        assert data.n_test == 20

    def test_synthetic_images_learnable(self):
        """Nearest-template classification must beat chance by a lot."""
        rng = np.random.default_rng(1)
        data = synthetic_images(rng, n_train=400, n_test=100, noise=0.5)
        # Estimate class means from train, classify test by nearest mean.
        means = np.stack(
            [
                data.x_train[data.y_train == c].mean(axis=0)
                for c in range(10)
            ]
        )
        flat_test = data.x_test.reshape(len(data.x_test), -1)
        flat_means = means.reshape(10, -1)
        d2 = ((flat_test[:, None, :] - flat_means[None, :, :]) ** 2).sum(-1)
        predictions = d2.argmin(axis=1)
        assert accuracy(predictions, data.y_test) > 0.5

    def test_synthetic_webspam_separable(self):
        data = synthetic_webspam(
            np.random.default_rng(2), n_train=500, n_test=100
        )
        assert set(np.unique(data.y_train)) <= {0, 1}
        # Features are sparse-ish.
        assert np.mean(data.x_train == 0) > 0.5

    def test_dataset_validation(self):
        from repro.ml import Dataset

        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(2), np.zeros((1, 2)), np.zeros(1), "bad")

    def test_determinism(self):
        a = synthetic_webspam(np.random.default_rng(3), n_train=50, n_test=10)
        b = synthetic_webspam(np.random.default_rng(3), n_train=50, n_test=10)
        assert np.array_equal(a.x_train, b.x_train)


class TestBatcher:
    def test_batch_shapes(self):
        rng = np.random.default_rng(0)
        x, y = rng.normal(size=(100, 4)), rng.integers(0, 2, 100)
        batcher = Batcher(x, y, 32, rng)
        xb, yb = batcher.next_batch()
        assert xb.shape == (32, 4)
        assert yb.shape == (32,)

    def test_different_streams_different_batches(self):
        x = np.arange(1000, dtype=float).reshape(100, 10)
        y = np.zeros(100, dtype=int)
        b1 = Batcher(x, y, 16, np.random.default_rng(1))
        b2 = Batcher(x, y, 16, np.random.default_rng(2))
        assert not np.array_equal(b1.next_batch()[0], b2.next_batch()[0])

    def test_validation(self):
        x, y = np.zeros((10, 2)), np.zeros(10)
        with pytest.raises(ValueError):
            Batcher(x, y, 0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            Batcher(x, y, 11, np.random.default_rng(0))
        with pytest.raises(ValueError):
            Batcher(x, np.zeros(9), 2, np.random.default_rng(0))


class TestSharding:
    def test_shards_cover_dataset(self):
        data = synthetic_webspam(
            np.random.default_rng(4), n_train=100, n_test=10
        )
        total = sum(len(shard_dataset(data, 3, s)[0]) for s in range(3))
        assert total == 100

    def test_last_shard_takes_remainder(self):
        data = synthetic_webspam(
            np.random.default_rng(5), n_train=101, n_test=10
        )
        assert len(shard_dataset(data, 4, 3)[0]) == 101 - 3 * 25

    def test_out_of_range_shard(self):
        data = synthetic_webspam(np.random.default_rng(6), n_train=20, n_test=5)
        with pytest.raises(ValueError):
            shard_dataset(data, 4, 4)


class TestMetrics:
    def test_accuracy_basic(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 1, 1])) == pytest.approx(
            2 / 3
        )

    def test_accuracy_pm_labels(self):
        assert accuracy(np.array([1, 0]), np.array([1, -1])) == 1.0

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros(3), np.zeros(4))

    def test_smooth_series_constant_preserved(self):
        values = np.full(10, 3.0)
        assert np.allclose(smooth_series(values, 4), 3.0)

    def test_smooth_series_length_preserved(self):
        values = np.random.default_rng(0).normal(size=17)
        assert smooth_series(values, 5).shape == values.shape

    def test_smooth_window_one_is_identity(self):
        values = np.array([1.0, 5.0, 2.0])
        assert np.array_equal(smooth_series(values, 1), values)
