"""Loss tests: values, gradients, label conventions."""

import numpy as np
import pytest

from repro.ml import (
    HingeLoss,
    LogisticLoss,
    SoftmaxCrossEntropy,
    numerical_gradient,
    relative_error,
)


def loss_gradcheck(loss, scores, targets, tol=1e-6):
    _, analytic = loss.value_and_grad(scores.copy(), targets)

    def f(s):
        return loss.value_and_grad(s, targets)[0]

    numeric = numerical_gradient(f, scores.copy())
    assert relative_error(analytic, numeric) < tol


class TestSoftmaxCrossEntropy:
    def test_uniform_scores_give_log_k(self):
        loss = SoftmaxCrossEntropy()
        scores = np.zeros((4, 10))
        targets = np.array([0, 3, 5, 9])
        value, _ = loss.value_and_grad(scores, targets)
        assert value == pytest.approx(np.log(10.0))

    def test_confident_correct_gives_small_loss(self):
        loss = SoftmaxCrossEntropy()
        scores = np.array([[10.0, 0.0, 0.0]])
        value, _ = loss.value_and_grad(scores, np.array([0]))
        assert value < 1e-3

    def test_gradient_rows_sum_to_zero(self):
        loss = SoftmaxCrossEntropy()
        scores = np.random.default_rng(0).normal(size=(5, 7))
        _, grad = loss.value_and_grad(scores, np.arange(5))
        assert np.allclose(grad.sum(axis=1), 0.0)

    def test_gradcheck(self):
        rng = np.random.default_rng(1)
        loss_gradcheck(
            SoftmaxCrossEntropy(),
            rng.normal(size=(6, 4)),
            rng.integers(0, 4, size=6),
        )

    def test_numerical_stability_large_scores(self):
        loss = SoftmaxCrossEntropy()
        scores = np.array([[1000.0, 0.0], [0.0, 1000.0]])
        value, grad = loss.value_and_grad(scores, np.array([0, 1]))
        assert np.isfinite(value)
        assert np.all(np.isfinite(grad))


class TestLogisticLoss:
    def test_zero_margin_gives_log2(self):
        loss = LogisticLoss()
        value, _ = loss.value_and_grad(np.zeros(4), np.array([1, 0, 1, 0]))
        assert value == pytest.approx(np.log(2.0))

    def test_accepts_both_label_conventions(self):
        loss = LogisticLoss()
        scores = np.array([1.0, -2.0])
        v01, _ = loss.value_and_grad(scores, np.array([1, 0]))
        vpm, _ = loss.value_and_grad(scores, np.array([1, -1]))
        assert v01 == pytest.approx(vpm)

    def test_rejects_other_labels(self):
        with pytest.raises(ValueError):
            LogisticLoss().value_and_grad(np.zeros(2), np.array([2, 3]))

    def test_gradcheck(self):
        rng = np.random.default_rng(2)
        loss_gradcheck(
            LogisticLoss(),
            rng.normal(size=(8,)),
            rng.integers(0, 2, size=8),
        )

    def test_gradient_shape_matches_input(self):
        loss = LogisticLoss()
        scores = np.zeros((5, 1))
        _, grad = loss.value_and_grad(scores, np.ones(5))
        assert grad.shape == (5, 1)

    def test_stability_large_margins(self):
        loss = LogisticLoss()
        value, grad = loss.value_and_grad(
            np.array([1000.0, -1000.0]), np.array([1, 0])
        )
        assert np.isfinite(value)
        assert np.all(np.isfinite(grad))
        assert value < 1e-6

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            LogisticLoss().value_and_grad(np.zeros(3), np.array([1, 0]))


class TestHingeLoss:
    def test_value_on_known_margins(self):
        loss = HingeLoss()
        # y=+1, s=2 -> margin ok, loss 0; y=+1, s=0 -> loss 1.
        value, _ = loss.value_and_grad(np.array([2.0, 0.0]), np.array([1, 1]))
        assert value == pytest.approx(0.5)

    def test_gradient_zero_beyond_margin(self):
        loss = HingeLoss()
        _, grad = loss.value_and_grad(np.array([5.0]), np.array([1]))
        assert grad[0] == 0.0

    def test_gradcheck_away_from_kink(self):
        rng = np.random.default_rng(3)
        scores = rng.normal(size=10) * 3.0
        scores[np.abs(1 - np.abs(scores)) < 0.05] += 0.2  # dodge kinks
        loss_gradcheck(HingeLoss(), scores, (scores > 0).astype(int))
