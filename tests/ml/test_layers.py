"""Layer tests: shapes, semantics, and numerical gradient checks."""

import numpy as np
import pytest

from repro.ml import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
    numerical_gradient,
    relative_error,
)


RNG = lambda: np.random.default_rng(42)  # noqa: E731 - test brevity


def layer_input_gradcheck(layer, x, tol=1e-6):
    """Check d(sum(forward(x)))/dx against central differences."""
    out = layer.forward(x.copy(), training=True)
    dx = layer.backward(np.ones_like(out))

    def f(x_flat):
        return float(np.sum(layer.forward(x_flat, training=True)))

    numeric = numerical_gradient(f, x.copy())
    assert relative_error(dx, numeric) < tol


def layer_param_gradcheck(layer, x, tol=1e-6):
    """Check parameter gradients against central differences."""
    for p in layer.parameters():
        p.zero_grad()
    out = layer.forward(x, training=True)
    layer.backward(np.ones_like(out))
    for p in layer.parameters():
        analytic = p.grad.copy()
        data = p.data

        def f(_):
            return float(np.sum(layer.forward(x, training=True)))

        numeric = numerical_gradient(lambda _: f(None), data)
        assert relative_error(analytic, numeric) < tol, p.name


class TestDense:
    def test_forward_shape(self):
        layer = Dense(4, 3, RNG())
        out = layer.forward(np.ones((2, 4)))
        assert out.shape == (2, 3)

    def test_forward_values(self):
        layer = Dense(2, 1, RNG())
        layer.W.data[...] = [[2.0, -1.0]]
        layer.b.data[...] = [0.5]
        out = layer.forward(np.array([[1.0, 1.0]]))
        assert out[0, 0] == pytest.approx(1.5)

    def test_input_gradient(self):
        layer = Dense(5, 4, RNG())
        layer_input_gradcheck(layer, RNG().normal(size=(3, 5)))

    def test_param_gradients(self):
        layer = Dense(5, 4, RNG())
        layer_param_gradcheck(layer, RNG().normal(size=(3, 5)))

    def test_wrong_input_shape_rejected(self):
        layer = Dense(4, 3, RNG())
        with pytest.raises(ValueError):
            layer.forward(np.ones((2, 7)))

    def test_backward_before_forward_raises(self):
        layer = Dense(4, 3, RNG())
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((2, 3)))


class TestReLU:
    def test_forward_clips_negatives(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        assert np.array_equal(out, [[0.0, 0.0, 2.0]])

    def test_gradient_masks_negatives(self):
        layer = ReLU()
        x = np.array([[-1.0, 3.0]])
        layer.forward(x, training=True)
        dx = layer.backward(np.array([[5.0, 5.0]]))
        assert np.array_equal(dx, [[0.0, 5.0]])

    def test_input_gradcheck(self):
        x = RNG().normal(size=(4, 6)) + 0.1  # avoid kink at exactly 0
        layer_input_gradcheck(ReLU(), x)


class TestFlatten:
    def test_round_trip(self):
        layer = Flatten()
        x = RNG().normal(size=(2, 3, 4, 4))
        out = layer.forward(x)
        assert out.shape == (2, 48)
        back = layer.backward(out)
        assert np.array_equal(back, x)


class TestDropout:
    def test_eval_mode_is_identity(self):
        layer = Dropout(0.5, RNG())
        x = RNG().normal(size=(3, 7))
        assert np.array_equal(layer.forward(x, training=False), x)

    def test_training_mode_scales_survivors(self):
        layer = Dropout(0.5, RNG())
        x = np.ones((1, 10000))
        out = layer.forward(x, training=True)
        survivors = out[out != 0]
        assert np.allclose(survivors, 2.0)
        # Expected survival rate ~ 0.5
        assert abs(len(survivors) / 10000 - 0.5) < 0.05

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.3, RNG())
        x = np.ones((2, 50))
        out = layer.forward(x, training=True)
        dx = layer.backward(np.ones_like(out))
        assert np.array_equal(dx != 0, out != 0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0, RNG())


class TestConv2D:
    def test_output_shape_with_padding(self):
        layer = Conv2D(3, 5, 3, RNG(), pad=1)
        out = layer.forward(RNG().normal(size=(2, 3, 8, 8)))
        assert out.shape == (2, 5, 8, 8)

    def test_output_shape_stride(self):
        layer = Conv2D(1, 2, 3, RNG(), stride=2, pad=1)
        out = layer.forward(RNG().normal(size=(1, 1, 8, 8)))
        assert out.shape == (1, 2, 4, 4)

    def test_identity_kernel(self):
        layer = Conv2D(1, 1, 1, RNG())
        layer.W.data[...] = 1.0
        layer.b.data[...] = 0.0
        x = RNG().normal(size=(1, 1, 4, 4))
        assert np.allclose(layer.forward(x), x)

    def test_matches_naive_convolution(self):
        rng = RNG()
        layer = Conv2D(2, 3, 3, rng, pad=1)
        x = rng.normal(size=(2, 2, 5, 5))
        out = layer.forward(x)

        x_pad = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        naive = np.zeros_like(out)
        for n in range(2):
            for f in range(3):
                for i in range(5):
                    for j in range(5):
                        patch = x_pad[n, :, i : i + 3, j : j + 3]
                        naive[n, f, i, j] = (
                            np.sum(patch * layer.W.data[f]) + layer.b.data[f]
                        )
        assert np.allclose(out, naive)

    def test_input_gradient(self):
        layer = Conv2D(2, 3, 3, RNG(), pad=1)
        layer_input_gradcheck(layer, RNG().normal(size=(2, 2, 4, 4)), tol=1e-5)

    def test_param_gradients(self):
        layer = Conv2D(2, 3, 3, RNG(), pad=1)
        layer_param_gradcheck(layer, RNG().normal(size=(2, 2, 4, 4)), tol=1e-5)

    def test_wrong_channels_rejected(self):
        layer = Conv2D(3, 2, 3, RNG())
        with pytest.raises(ValueError):
            layer.forward(np.ones((1, 2, 8, 8)))


class TestMaxPool2D:
    def test_forward_picks_maxima(self):
        layer = MaxPool2D(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        assert np.array_equal(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_backward_routes_to_argmax(self):
        layer = MaxPool2D(2)
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        layer.forward(x, training=True)
        dx = layer.backward(np.ones((1, 1, 2, 2)))
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1.0
        assert np.array_equal(dx[0, 0], expected)

    def test_gradcheck(self):
        x = RNG().normal(size=(2, 2, 4, 4))
        # Perturb duplicates away so argmax is stable under +-eps.
        x += np.linspace(0, 0.01, x.size).reshape(x.shape)
        layer_input_gradcheck(MaxPool2D(2), x, tol=1e-5)

    def test_indivisible_input_rejected(self):
        with pytest.raises(ValueError):
            MaxPool2D(2).forward(np.ones((1, 1, 5, 5)))

    def test_tie_gradient_goes_to_single_cell(self):
        layer = MaxPool2D(2)
        x = np.ones((1, 1, 2, 2))
        layer.forward(x, training=True)
        dx = layer.backward(np.ones((1, 1, 1, 1)))
        assert dx.sum() == 1.0
