"""Tests for the Network fabric and the SharedNic hotspot model."""

import pytest

from repro.net import Link, LinkModel, Message, Network, SharedNic
from repro.sim import Environment, Store


def test_send_delivers_after_transfer_time():
    env = Environment()
    network = Network(env, LinkModel(default=Link(latency=0.5, bandwidth=10.0)))
    inbox = []

    message = Message(src=0, dst=1, kind="update", payload="params", size=5.0)
    network.send(message, deliver=lambda m: inbox.append((env.now, m.payload)))
    env.run()
    assert inbox == [(1.0, "params")]  # 0.5 latency + 5/10 serialization


def test_send_is_non_blocking():
    env = Environment()
    network = Network(env, LinkModel(default=Link(latency=10.0, bandwidth=1.0)))
    progress = []

    def sender(env, network):
        network.send(Message(0, 1, "update", size=1.0), deliver=lambda m: None)
        progress.append(env.now)  # reached immediately
        yield env.timeout(0.0)

    env.process(sender(env, network))
    env.run()
    assert progress == [0.0]


def test_transfer_event_timing():
    env = Environment()
    network = Network(env, LinkModel(default=Link(latency=0.1, bandwidth=100.0)))

    def proc(env, network):
        yield network.transfer(0, 1, 10.0)
        return env.now

    p = env.process(proc(env, network))
    env.run()
    assert p.value == pytest.approx(0.1 + 0.1)


def test_rpc_costs_round_trip():
    env = Environment()
    network = Network(env, LinkModel(default=Link(latency=0.3, bandwidth=1e9)))

    def proc(env, network):
        yield network.rpc(0, 1)
        return env.now

    p = env.process(proc(env, network))
    env.run()
    assert p.value == pytest.approx(0.6)


def test_message_statistics():
    env = Environment()
    network = Network(env)
    network.send(Message(0, 1, "update", size=3.0), deliver=lambda m: None)
    network.send(Message(1, 0, "update", size=5.0), deliver=lambda m: None)
    env.run()
    assert network.messages_sent == 2
    assert network.bytes_sent.total == pytest.approx(8.0)


def test_messages_stamped_with_send_time():
    env = Environment()
    network = Network(env)
    stamped = []

    def proc(env, network):
        yield env.timeout(2.5)
        message = Message(0, 1, "update", size=0.0)
        network.send(message, deliver=lambda m: stamped.append(m.sent_at))

    env.process(proc(env, network))
    env.run()
    assert stamped == [2.5]


class TestSharedNic:
    def test_concurrent_transfers_serialize(self):
        env = Environment()
        nic = SharedNic(env, bandwidth=10.0, latency=0.0)
        done = []

        def pusher(env, nic, name):
            yield from nic.transfer(10.0)  # 1 second each at bw=10
            done.append((name, env.now))

        for name in ("a", "b", "c"):
            env.process(pusher(env, nic, name))
        env.run()
        assert done == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_queue_length_visible(self):
        env = Environment()
        nic = SharedNic(env, bandwidth=1.0, latency=0.0)

        def pusher(env, nic):
            yield from nic.transfer(5.0)

        env.process(pusher(env, nic))
        env.process(pusher(env, nic))
        env.run(until=1.0)
        assert nic.queue_length == 1

    def test_busy_time_accumulates(self):
        env = Environment()
        nic = SharedNic(env, bandwidth=10.0, latency=0.0)

        def pusher(env, nic):
            yield from nic.transfer(20.0)

        env.process(pusher(env, nic))
        env.run()
        assert nic.busy_time == pytest.approx(2.0)

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            SharedNic(env, bandwidth=0.0)
        nic = SharedNic(env)
        with pytest.raises(ValueError):
            list(nic.transfer(-1.0))
