"""Byte-accounting contract: delivered / dropped / control / attempted.

The accounting split fixed two bugs the compression plane exposed:
``bytes_sent`` used to credit launch-time traffic that membership
departures later dropped, and zero/tiny control messages (ACKs,
tokens, RPCs) polluted the payload-volume stats.  These tests pin the
conservation law the split guarantees — ``bytes_sent + bytes_dropped``
equals the sum of every launched payload's size, exactly — plus the
classification rules, at the Network unit level and on full traced
runs with a mid-flight leaver.
"""

import pytest

from repro.harness.golden import churn_conformance_spec, conformance_spec
from repro.harness.io import run_to_dict
from repro.harness.spec import run_spec
from repro.net import Link, LinkModel, Message, Network
from repro.scenarios.faults import MessageLoss
from repro.sim import Environment


class FakeMembership:
    """Minimal membership runtime: an activity set + a drop counter."""

    def __init__(self, n):
        self.active = set(range(n))
        self.messages_dropped = 0

    def is_active(self, wid):
        return wid in self.active


def _network(env, n=4, latency=0.5, bandwidth=1.0):
    network = Network(
        env, LinkModel(default=Link(latency=latency, bandwidth=bandwidth))
    )
    network.membership = FakeMembership(n)
    return network


class TestConservation:
    def test_mid_flight_leaver_splits_sent_and_dropped(self):
        # Power-of-two sizes: float accumulation of the per-message
        # payloads is exact, so the conservation law holds with ==.
        env = Environment()
        network = _network(env)
        sizes = [8.0, 4.0, 2.0, 16.0]
        inbox = []
        for i, size in enumerate(sizes):
            network.push(0, 1, size, payload=i, deliver=inbox.append)

        def leaver(env):
            # Deactivate the destination while all four transfers are
            # still in flight (each takes 0.5 + size/1.0 >= 2.5s).
            yield env.timeout(1.0)
            network.membership.active.discard(1)

        env.process(leaver(env))
        env.run()
        assert inbox == []
        assert network.bytes_sent.total == 0.0
        assert network.bytes_dropped.total == sum(sizes)
        assert network.messages_dropped == len(sizes)
        # The legacy launch-time aggregate still counts everything.
        assert network.bytes_attempted.total == sum(sizes)

    def test_sent_plus_dropped_is_every_launched_payload(self):
        env = Environment()
        network = _network(env)
        sizes = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0]
        delivered = []
        # Interleave survivors (dst 2) with casualties (dst 1).
        for i, size in enumerate(sizes):
            dst = 1 if i % 2 else 2
            network.push(0, dst, size, payload=i, deliver=delivered.append)

        def leaver(env):
            yield env.timeout(0.1)
            network.membership.active.discard(1)

        env.process(leaver(env))
        env.run()
        assert (
            network.bytes_sent.total + network.bytes_dropped.total
            == sum(sizes)
        )
        assert network.bytes_dropped.total == sum(sizes[1::2])
        assert len(delivered) == 3

    def test_static_fast_path_credits_at_launch(self):
        env = Environment()
        network = Network(env)
        network.push(0, 1, 8.0, payload="u", deliver=lambda p: None)
        # No membership installed: delivery is guaranteed, so the
        # credit happens synchronously at launch.
        assert network.bytes_sent.total == 8.0
        assert network.bytes_dropped.total == 0.0
        env.run()
        assert network.bytes_sent.total == 8.0


class TestControlClassification:
    def test_control_push_excluded_from_payload_stats(self):
        env = Environment()
        network = Network(env)
        network.push(0, 1, 8.0, payload="u", deliver=lambda p: None)
        network.push(0, 1, 1e-4, payload="ack", deliver=lambda p: None,
                     control=True)
        env.run()
        assert network.bytes_sent.total == 8.0
        assert network.control_bytes.total == 1e-4
        assert network.bytes_attempted.total == 8.0 + 1e-4

    def test_control_send_excluded_from_payload_stats(self):
        env = Environment()
        network = Network(env)
        message = Message(0, 1, "token", size=1e-4)
        network.send(message, deliver=lambda m: None, control=True)
        env.run()
        assert network.bytes_sent.total == 0.0
        assert network.control_bytes.total == 1e-4

    def test_rpc_is_control_plane_even_at_zero_size(self):
        env = Environment()
        network = Network(env)

        def proc(env):
            yield network.rpc(0, 1, size=0.0)
            yield network.rpc(0, 1, size=0.25)

        env.process(proc(env))
        env.run()
        assert network.bytes_sent.total == 0.0
        assert network.control_bytes.total == 0.25
        assert network.messages_sent == 4  # two round trips

    def test_dropped_control_message_counts_drop_not_bytes(self):
        env = Environment()
        network = _network(env)
        network.membership.active.discard(1)
        delivered = []
        network.push(0, 1, 1e-4, payload="ack", deliver=delivered.append,
                     control=True)
        env.run()
        assert delivered == []
        # Control bytes are charged at launch either way; the drop is
        # visible in the message counter, not the payload stats.
        assert network.control_bytes.total == 1e-4
        assert network.bytes_dropped.total == 0.0
        assert network.messages_dropped == 1


class TestRetransmits:
    def test_lost_attempts_count_separately_from_delivery(self):
        env = Environment()
        loss = MessageLoss(probability=0.9, retransmit_timeout=0.0)
        network = Network(
            env,
            LinkModel(default=Link(latency=0.1, bandwidth=100.0)),
            message_loss=loss,
        )
        delivered = []
        for i in range(8):
            network.push(0, 1, 4.0, payload=i, deliver=delivered.append)
        env.run()
        assert len(delivered) == 8
        # The delivered copy is counted exactly once per message; the
        # burned attempts accumulate separately.
        assert network.bytes_sent.total == 8 * 4.0
        assert network.bytes_retransmitted.total == loss.messages_dropped * 4.0
        assert loss.messages_dropped > 0


class TestTracedRuns:
    """Integration: the acceptance-criterion run with a mid-flight leaver."""

    @pytest.mark.parametrize("protocol", ["hop", "notify_ack"])
    def test_churn_run_conserves_payload_bytes(self, protocol):
        run = run_spec(churn_conformance_spec(protocol, "churn"))
        assert run.messages_dropped > 0, "the leaver must strand messages"
        if protocol == "hop":
            # Hop broadcasts updates unconditionally, so the leaver
            # catches payload mid-flight.
            assert run.bytes_dropped > 0
        else:
            # NOTIFY-ACK's serial gating means only ACKs are in the
            # air when a worker departs: the drops are control-plane
            # and must not leak into the payload stats.
            assert run.bytes_dropped == 0.0
        assert run.bytes_sent + run.bytes_dropped <= run.bytes_attempted
        # update_size is 8.0 (a power of two) and every payload message
        # carries a whole number of updates, so launched payload bytes
        # are exact: attempted minus the (tiny, exact-at-1e-4) control
        # traffic recovers them bitwise.
        launched_payload = run.bytes_attempted - run.control_bytes
        assert run.bytes_sent + run.bytes_dropped == pytest.approx(
            launched_payload, abs=1e-9
        )

    def test_static_run_drops_nothing(self):
        run = run_spec(conformance_spec("hop", "none"))
        assert run.bytes_dropped == 0.0
        assert run.bytes_sent + run.control_bytes == pytest.approx(
            run.bytes_attempted
        )

    def test_notify_ack_acks_are_control_plane(self):
        run = run_spec(conformance_spec("notify_ack", "none"))
        assert run.control_bytes > 0.0
        # ACKs ride one per update message at CONTROL_SIZE each; the
        # payload stat must not contain them.
        assert run.bytes_sent == run.messages_sent / 2 * 8.0

    def test_run_json_surfaces_the_split(self):
        run = run_spec(conformance_spec("hop", "none"))
        payload = run_to_dict(run)
        for key in (
            "bytes_sent",
            "bytes_dropped",
            "control_bytes",
            "bytes_retransmitted",
            "bytes_attempted",
        ):
            assert key in payload
            assert isinstance(payload[key], float)
