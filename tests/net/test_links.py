"""Tests for link timing and link-model construction."""

import pytest

from repro.net import (
    Link,
    LinkModel,
    cluster_links,
    degraded_links,
    params_message_size,
    uniform_links,
)


class TestLink:
    def test_transfer_time_formula(self):
        link = Link(latency=0.01, bandwidth=100.0)
        assert link.transfer_time(50.0) == pytest.approx(0.01 + 0.5)

    def test_zero_size_costs_latency(self):
        link = Link(latency=0.02, bandwidth=10.0)
        assert link.transfer_time(0.0) == pytest.approx(0.02)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Link().transfer_time(-1.0)

    def test_scaled_slows_both_terms(self):
        link = Link(latency=0.01, bandwidth=100.0)
        slow = link.scaled(4.0)
        assert slow.latency == pytest.approx(0.04)
        assert slow.bandwidth == pytest.approx(25.0)
        assert slow.transfer_time(10.0) > link.transfer_time(10.0)

    def test_scaled_validates_factor(self):
        with pytest.raises(ValueError):
            Link().scaled(0.0)


class TestLinkModel:
    def test_default_and_override(self):
        fast = Link(latency=0.0, bandwidth=1000.0)
        model = LinkModel(default=Link(), overrides={(0, 1): fast})
        assert model.link(0, 1) is fast
        assert model.link(1, 0) is model.default

    def test_self_edges_essentially_free(self):
        model = LinkModel()
        assert model.transfer_time(3, 3, 100.0) < 1e-6

    def test_round_trip_adds_return_latency(self):
        model = LinkModel(default=Link(latency=0.1, bandwidth=1e9))
        assert model.round_trip(0, 1) == pytest.approx(0.2)


class TestUniformLinks:
    def test_all_pairs_identical(self):
        model = uniform_links(latency=0.001, bandwidth=10.0)
        assert model.transfer_time(0, 5, 1.0) == model.transfer_time(7, 2, 1.0)


class TestClusterLinks:
    def test_intra_faster_than_inter(self):
        machines = [0, 0, 1, 1]
        model = cluster_links(machines)
        intra = model.transfer_time(0, 1, 10.0)
        inter = model.transfer_time(0, 2, 10.0)
        assert intra < inter

    def test_respects_machine_map(self):
        machines = [0, 1, 0]
        model = cluster_links(machines)
        assert model.transfer_time(0, 2, 1.0) < model.transfer_time(0, 1, 1.0)


class TestDegradedLinks:
    def test_slows_selected_edges_only(self):
        base = uniform_links()
        degraded = degraded_links(base, {(0, 1): 10.0})
        assert degraded.transfer_time(0, 1, 1.0) > base.transfer_time(0, 1, 1.0)
        assert degraded.transfer_time(1, 0, 1.0) == base.transfer_time(1, 0, 1.0)


class TestLinkValidation:
    """Bad link parameters fail at construction, not as a
    ZeroDivisionError deep inside transfer_time much later."""

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="bandwidth must be positive"):
            Link(bandwidth=0.0)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError, match="bandwidth must be positive"):
            Link(bandwidth=-125.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match="latency must be non-negative"):
            Link(latency=-1e-4)

    def test_zero_latency_allowed(self):
        assert Link(latency=0.0).transfer_time(1.0) > 0.0

    def test_per_edge_override_validated_too(self):
        # Overrides are Links, so a bad one fails before it can hide
        # inside a model and blow up on whatever edge it landed on.
        with pytest.raises(ValueError, match="bandwidth must be positive"):
            LinkModel(default=Link(), overrides={(0, 1): Link(bandwidth=0.0)})

    def test_uniform_links_validated(self):
        with pytest.raises(ValueError, match="bandwidth must be positive"):
            uniform_links(bandwidth=-1.0)


def test_params_message_size():
    # 1M float32 parameters = 4 MB.
    assert params_message_size(1_000_000) == pytest.approx(4.0)
