"""Behavior tests for the partial-all-reduce and momentum-tracking
protocols."""

import numpy as np
import pytest

from repro.graphs import bipartite_ring, ring_based
from repro.harness import ExperimentSpec, run_spec, svm_workload
from repro.harness.spec import deterministic_straggler
from repro.protocols.momentum_tracking import MomentumTrackingCluster
from repro.protocols.partial_allreduce import PartialAllReduceCluster


@pytest.fixture(scope="module")
def workload():
    return svm_workload("smoke")


class TestPartialAllReduce:
    def test_run_is_deterministic(self, workload):
        spec = ExperimentSpec(
            "d",
            workload,
            ring_based(8),
            protocol="partial-allreduce",
            max_iter=6,
            seed=7,
        )
        a, b = run_spec(spec), run_spec(spec)
        assert a.wall_time == b.wall_time
        assert np.array_equal(a.final_params, b.final_params)

    def test_message_accounting_matches_partition(self, workload):
        # n=8, group_size=4 -> two groups of 4 per round: each runs a
        # chunked ring all-reduce of 2(g-1)g messages and 2(g-1)M bytes.
        iters = 5
        spec = ExperimentSpec(
            "m",
            workload,
            ring_based(8),
            protocol="partial-allreduce",
            group_size=4,
            max_iter=iters,
            seed=0,
        )
        run = run_spec(spec)
        per_round = 2 * (2 * 3 * 4)
        assert run.messages_sent == iters * per_round
        assert run.bytes_sent == pytest.approx(
            iters * 2 * (2 * 3 * workload.update_size)
        )

    def test_straggler_only_gates_its_group(self, workload):
        straggler = deterministic_straggler(worker=0, factor=4.0)
        runs = {
            protocol: run_spec(
                ExperimentSpec(
                    protocol,
                    workload,
                    ring_based(8),
                    protocol=protocol,
                    slowdown=straggler,
                    max_iter=8,
                    seed=0,
                )
            )
            for protocol in ("allreduce", "partial-allreduce")
        }
        assert (
            runs["partial-allreduce"].wall_time
            < runs["allreduce"].wall_time
        )

    def test_static_groups_never_reach_global_consensus(self, workload):
        runs = {}
        for label, static in (("random", False), ("static", True)):
            runs[label] = run_spec(
                ExperimentSpec(
                    label,
                    workload,
                    ring_based(8),
                    protocol="partial-allreduce",
                    static_groups=static,
                    max_iter=10,
                    seed=0,
                )
            )
        assert runs["random"].consensus < runs["static"].consensus

    def test_group_of_size_one_is_local_step(self, workload):
        # n=9, group_size=8 -> one group of 8 plus a singleton each
        # round; the singleton must not deadlock waiting for peers.
        # (partial all-reduce only uses the topology's worker count,
        # so an odd-sized chain graph is fine)
        from repro.graphs import chain

        spec = ExperimentSpec(
            "s",
            workload,
            chain(9),
            protocol="partial-allreduce",
            group_size=8,
            max_iter=4,
            seed=0,
        )
        run = run_spec(spec)
        assert run.iterations_completed == [4] * 9

    def test_cluster_validates_group_size(self, workload):
        with pytest.raises(ValueError):
            PartialAllReduceCluster(
                n_workers=4,
                model_factory=workload.model_factory,
                dataset=workload.dataset,
                group_size=1,
            )

    def test_protocol_label_and_description(self, workload):
        run = run_spec(
            ExperimentSpec(
                "l",
                workload,
                ring_based(8),
                protocol="partial-allreduce",
                max_iter=3,
            )
        )
        assert run.protocol == "partial-allreduce"
        assert "randomized groups of 4" in run.config_description


class TestMomentumTracking:
    def test_run_is_deterministic(self, workload):
        spec = ExperimentSpec(
            "d",
            workload,
            bipartite_ring(8),
            protocol="momentum-tracking",
            max_iter=6,
            seed=3,
        )
        a, b = run_spec(spec), run_spec(spec)
        assert a.wall_time == b.wall_time
        assert np.array_equal(a.final_params, b.final_params)

    @pytest.mark.parametrize("mode", ["tracking", "quasi-global"])
    def test_both_modes_converge(self, workload, mode):
        run = run_spec(
            ExperimentSpec(
                mode,
                workload,
                bipartite_ring(8),
                protocol="momentum-tracking",
                momentum_mode=mode,
                max_iter=12,
                seed=0,
            )
        )
        assert run.final_loss < 1.0
        assert mode in run.config_description

    def test_unknown_mode_rejected(self, workload):
        with pytest.raises(ValueError, match="momentum_mode"):
            MomentumTrackingCluster(
                topology=bipartite_ring(4),
                model_factory=workload.model_factory,
                dataset=workload.dataset,
                momentum_mode="psychic",
            )

    def test_beta_defaults_to_optimizer_momentum(self, workload):
        cluster = MomentumTrackingCluster(
            topology=bipartite_ring(4),
            model_factory=workload.model_factory,
            dataset=workload.dataset,
            optimizer=workload.optimizer_factory(),
        )
        assert cluster.beta == pytest.approx(0.9)

    def test_tracking_mode_pays_double_gossip_bandwidth(self, workload):
        runs = {}
        for mode in ("tracking", "quasi-global"):
            runs[mode] = run_spec(
                ExperimentSpec(
                    mode,
                    workload,
                    bipartite_ring(8),
                    protocol="momentum-tracking",
                    momentum_mode=mode,
                    max_iter=8,
                    seed=0,
                )
            )
        gossips = {
            mode: run.messages_sent // 2 for mode, run in runs.items()
        }
        assert runs["tracking"].bytes_sent == pytest.approx(
            4.0 * gossips["tracking"] * workload.update_size
        )
        assert runs["quasi-global"].bytes_sent == pytest.approx(
            2.0 * gossips["quasi-global"] * workload.update_size
        )

    def test_requires_bipartite_graph(self, workload):
        from repro.graphs import TopologyError

        with pytest.raises(TopologyError):
            run_spec(
                ExperimentSpec(
                    "bad",
                    workload,
                    ring_based(8),  # odd cycles: not bipartite
                    protocol="momentum-tracking",
                    max_iter=3,
                )
            )
