"""Closed-form payload pricing across the whole protocol registry.

Every protocol's send path routes through ``payload_bytes()`` — this
suite pins each one's per-run delivered payload (``bytes_sent``)
against a closed-form expectation derived from the protocol's
communication pattern: hop/NOTIFY-ACK broadcast one update per
out-edge, allreduce ships ``2(n-1)`` chunk volumes per iteration, the
parameter servers pay push + pull, the gossip pair prices one (adpsgd)
or two (momentum-tracking — the 2x the bespoke ``gossip_payload`` hook
used to hardcode) vectors per message, and partial-allreduce moves
``2(g-1)`` chunk volumes per group of ``g``.

The same formulas are then re-checked under compression with the
scheme's ``wire_ratio`` folded in, which is the whole point of the
shared helper: one pricing law, dense or compressed.
"""

import pytest

from repro.compression import CompressionSpec
from repro.compression.registry import build_compressor
from repro.harness.golden import MAX_ITER, N_WORKERS, conformance_spec
from repro.harness.spec import run_spec
from repro.net.message import payload_bytes
from repro.protocols import registered_protocols

#: svm smoke workload: dense per-update payload (abstract MB).
U = 8.0


def _graph_edges(run):
    """Directed non-self update edges of the run's 4-worker ring graph."""
    from repro.graphs import bipartite_ring, ring_based

    topology = (
        bipartite_ring(N_WORKERS)
        if run.protocol in ("adpsgd", "momentum-tracking")
        else ring_based(N_WORKERS)
    )
    return sum(
        1
        for i in range(N_WORKERS)
        for j in topology.out_neighbors(i)
        if j != i
    )


def expected_payload(run, ratio=1.0):
    """Closed-form delivered payload bytes for one conformance run."""
    n, t = N_WORKERS, MAX_ITER
    wire = payload_bytes(U, ratio)
    protocol = run.protocol
    if protocol in ("hop", "notify_ack"):
        # One update per directed out-edge per iteration.
        return t * _graph_edges(run) * wire
    if protocol == "allreduce":
        # Chunked ring: 2(n-1) rounds, each moving n chunks of u/n.
        return t * 2 * (n - 1) * wire
    if protocol.startswith("ps-"):
        # Push (compressible gradient) + pull (dense model) per worker.
        return t * n * (wire + U)
    if protocol == "adpsgd":
        # Pairwise gossip: 2 messages per gossip, one vector each.
        return run.messages_sent * payload_bytes(U, ratio, vectors=1.0)
    if protocol == "momentum-tracking":
        # Params + momentum buffer: the 2x pricing, now via vectors=2.
        return run.messages_sent * payload_bytes(U, ratio, vectors=2.0)
    if protocol == "partial-allreduce":
        # Groups of g: 2(g-1)g messages move 2(g-1) chunk volumes, so
        # bytes = messages * wire / g.  The 4-worker pin puts everyone
        # in one group (group_size=4).
        return run.messages_sent * wire / 4
    raise AssertionError(f"no closed form for {protocol}")


@pytest.mark.parametrize("protocol", registered_protocols())
def test_dense_payload_matches_closed_form(protocol):
    run = run_spec(conformance_spec(protocol, "none"))
    assert run.bytes_sent == expected_payload(run)


@pytest.mark.parametrize("protocol", registered_protocols())
def test_compressed_payload_matches_closed_form(protocol):
    spec = conformance_spec(protocol, "none").with_(
        compression=CompressionSpec("topk", {"ratio": 0.25})
    )
    run = run_spec(spec)
    dim = run.final_params.shape[-1]
    ratio = build_compressor(
        spec.compression, dim, run.final_params.dtype
    ).wire_ratio()
    assert ratio < 1.0
    assert run.bytes_sent == pytest.approx(
        expected_payload(run, ratio=ratio), rel=1e-12
    )


def test_momentum_tracking_prices_double_adpsgd():
    """The 2x vectors rule, protocol vs protocol on identical gossips."""
    adpsgd = run_spec(conformance_spec("adpsgd", "none"))
    tracking = run_spec(conformance_spec("momentum-tracking", "none"))
    assert adpsgd.bytes_sent == adpsgd.messages_sent * U
    assert tracking.bytes_sent == tracking.messages_sent * 2.0 * U


def test_payload_bytes_identities():
    """The FP identities the golden pins rely on."""
    assert payload_bytes(U) == U  # x * 1.0 is exact
    assert payload_bytes(U, 1.0, 2.0) == 2.0 * U
    assert payload_bytes(0.0) == 0.0
    with pytest.raises(ValueError):
        payload_bytes(-1.0)
