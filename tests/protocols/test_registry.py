"""Tests for the protocol registry and its CLI integration."""

import numpy as np
import pytest

from repro.cli import main
from repro.graphs import ring, ring_based
from repro.harness import ExperimentSpec, run_spec, svm_workload
from repro.protocols import (
    ProtocolCluster,
    ProtocolRuntime,
    build_cluster,
    get_protocol,
    protocol_table,
    register_protocol,
    registered_protocols,
    spec_common_kwargs,
)
from repro.protocols.partial_allreduce import GroupSchedule
from repro.protocols.registry import _REGISTRY

#: Protocols the issue requires `train --protocol` to resolve, with a
#: graph each can run on (gossip protocols need a bipartite graph).
REQUIRED_PROTOCOLS = {
    "hop": "ring_based",
    "ps": "ring_based",
    "allreduce": "ring_based",
    "adpsgd": "bipartite_ring",
    "partial-allreduce": "ring_based",
    "momentum-tracking": "bipartite_ring",
}


class TestRegistry:
    def test_all_builtins_registered(self):
        names = registered_protocols()
        assert {
            "hop",
            "notify_ack",
            "ps-bsp",
            "ps-async",
            "ps-ssp",
            "allreduce",
            "adpsgd",
            "partial-allreduce",
            "momentum-tracking",
        } <= set(names)

    def test_at_least_six_protocols(self):
        assert len(registered_protocols(include_aliases=True)) >= 6

    def test_unknown_protocol_error_lists_registered_names(self):
        with pytest.raises(ValueError) as excinfo:
            get_protocol("telepathy")
        message = str(excinfo.value)
        assert "telepathy" in message
        for name in registered_protocols(include_aliases=True):
            assert name in message

    def test_unknown_protocol_via_run_spec(self):
        spec = ExperimentSpec(
            "x", svm_workload("smoke"), ring(4), protocol="telepathy"
        )
        with pytest.raises(ValueError, match="registered protocols"):
            run_spec(spec)

    def test_aliases_resolve_to_canonical(self):
        assert get_protocol("ps").name == "ps-bsp"
        assert get_protocol("prague").name == "partial-allreduce"

    def test_protocol_table_has_citations(self):
        rows = protocol_table()
        assert {row["name"] for row in rows} == set(registered_protocols())
        for row in rows:
            assert row["summary"]
            assert row["paper"]

    def test_build_cluster_is_unrun(self):
        spec = ExperimentSpec(
            "b", svm_workload("smoke"), ring_based(6), max_iter=4
        )
        cluster = build_cluster(spec)
        assert isinstance(cluster, ProtocolCluster)
        assert cluster.max_iter == 4
        assert cluster.run().protocol == "hop"


class TestExtensionPoint:
    """A third-party protocol plugs in through the public API alone."""

    def test_register_and_run_custom_protocol(self):
        class LocalSGDCluster(ProtocolCluster):
            """No communication at all: every worker trains alone."""

            protocol = "local-only-test"

            def _start(self, runtime: ProtocolRuntime) -> None:
                env = runtime.env
                self._params = {}

                def worker(wid, model, optimizer, batcher):
                    params = model.get_params()
                    for k in range(self.max_iter):
                        runtime.gap.record(wid, k)
                        model.set_params(params)
                        xb, yb = batcher.next_batch()
                        loss, grad = model.loss_and_grad(xb, yb)
                        yield env.timeout(
                            self.compute_model.duration(wid, k)
                        )
                        params = params + optimizer.step(params, grad, k)
                        runtime.tracer.log(f"loss/{wid}", env.now, loss)
                        runtime.tracer.log(f"duration/{wid}", env.now, 0.0)
                    self._params[wid] = params
                    runtime.done[wid] = True

                for wid in range(self.n_workers):
                    env.process(
                        worker(
                            wid,
                            runtime.models[wid],
                            self.optimizer_proto.clone(),
                            self._make_batcher(wid),
                        )
                    )

            def _final_param_stack(self, runtime):
                return np.stack(
                    [self._params[w] for w in range(self.n_workers)]
                )

            def _config_description(self):
                return "local SGD, zero communication"

            def _topology_name(self):
                return f"isolated({self.n_workers})"

        def build(spec):
            return LocalSGDCluster(
                n_workers=spec.topology.n, **spec_common_kwargs(spec)
            )

        register_protocol(
            "local-only-test", build, summary="test-only", paper="n/a"
        )
        try:
            spec = ExperimentSpec(
                "local",
                svm_workload("smoke"),
                ring(4),
                protocol="local-only-test",
                max_iter=5,
            )
            run = run_spec(spec)
            assert run.protocol == "local-only-test"
            assert run.messages_sent == 0
            assert run.consensus > 0  # isolated replicas drift apart
        finally:
            _REGISTRY.pop("local-only-test", None)


class TestCLIRoundTrip:
    @pytest.mark.parametrize(
        "protocol,graph", sorted(REQUIRED_PROTOCOLS.items())
    )
    def test_required_protocols_train(self, protocol, graph, capsys):
        code = main(
            [
                "train",
                "--protocol", protocol,
                "--graph", graph,
                "--workers", "6",
                "--iterations", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wall_time" in out
        assert "protocol=" in out

    def test_every_registered_protocol_trains(self, capsys):
        bipartite_needed = {"adpsgd", "momentum-tracking"}
        for protocol in registered_protocols():
            graph = (
                "bipartite_ring"
                if protocol in bipartite_needed
                else "ring_based"
            )
            code = main(
                [
                    "train",
                    "--protocol", protocol,
                    "--graph", graph,
                    "--workers", "6",
                    "--iterations", "3",
                ]
            )
            assert code == 0, f"train --protocol {protocol} failed"
            assert "wall_time" in capsys.readouterr().out

    def test_protocols_command_lists_registry(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        for name in registered_protocols():
            assert name in out
        assert "arXiv:1909.08029" in out
        assert "arXiv:2209.15505" in out

    def test_partial_allreduce_knobs(self, capsys):
        code = main(
            [
                "train",
                "--protocol", "partial-allreduce",
                "--workers", "6",
                "--iterations", "4",
                "--group-size", "3",
                "--static-groups",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "static groups of 3" in out


class TestGroupScheduleConflicts:
    @pytest.mark.parametrize("n", [4, 6, 8, 9, 16, 17])
    @pytest.mark.parametrize("group_size", [2, 3, 4, 8])
    def test_never_schedules_conflicting_groups(self, n, group_size):
        schedule = GroupSchedule(n, group_size, seed=3)
        for k in range(50):
            groups = schedule.groups_for_round(k)
            GroupSchedule.validate_partition(groups, n)
            # membership lookup agrees with the partition
            for group in groups:
                for wid in group:
                    assert schedule.group_of(k, wid) == group

    def test_randomized_rounds_differ(self):
        schedule = GroupSchedule(8, 4, seed=0)
        rounds = {schedule.groups_for_round(k) for k in range(10)}
        assert len(rounds) > 1

    def test_static_rounds_identical(self):
        schedule = GroupSchedule(8, 4, seed=0, static=True)
        first = schedule.groups_for_round(0)
        assert all(
            schedule.groups_for_round(k) == first for k in range(10)
        )

    def test_validate_partition_rejects_conflicts(self):
        with pytest.raises(ValueError, match="two groups"):
            GroupSchedule.validate_partition(((0, 1), (1, 2)), 3)
        with pytest.raises(ValueError, match="cover"):
            GroupSchedule.validate_partition(((0, 1),), 3)

    def test_group_size_validation(self):
        with pytest.raises(ValueError):
            GroupSchedule(8, 1)
        with pytest.raises(ValueError):
            GroupSchedule(1, 2)
