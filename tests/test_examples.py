"""Smoke tests: every example script runs end to end.

Examples are the public face of the library; these tests keep them
executable as the API evolves. Scripts with a ``--preset`` flag run at
``smoke`` scale.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


def test_examples_directory_complete():
    names = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart.py",
        "heterogeneity_study.py",
        "topology_design.py",
        "protocol_comparison.py",
        "gap_theory_tour.py",
        "scenario_tour.py",
    } <= names


def test_quickstart():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "Backup workers recover" in result.stdout


def test_heterogeneity_study():
    result = run_example("heterogeneity_study.py", "--preset", "smoke")
    assert result.returncode == 0, result.stderr
    assert "Protocol x heterogeneity matrix" in result.stdout


def test_topology_design():
    result = run_example("topology_design.py", "--preset", "smoke")
    assert result.returncode == 0, result.stderr
    assert "ranked by wall-clock" in result.stdout


def test_protocol_comparison():
    result = run_example("protocol_comparison.py", "--preset", "smoke")
    assert result.returncode == 0, result.stderr
    assert "homogeneous" in result.stdout
    assert "adpsgd" in result.stdout
    # the registry's new heterogeneity-aware protocols compete too
    assert "partial-allreduce" in result.stdout
    assert "momentum-tracking/qg" in result.stdout


def test_gap_theory_tour():
    result = run_example("gap_theory_tour.py")
    assert result.returncode == 0, result.stderr
    assert "Theorem 2's containment guarantee" in result.stdout


def test_scenario_tour():
    result = run_example("scenario_tour.py", "--preset", "smoke")
    assert result.returncode == 0, result.stderr
    assert "Scenario sweep" in result.stdout
    assert "crashed" in result.stdout
    assert "restarted" in result.stdout
    assert "Trace replay" in result.stdout
