"""Unit and integration tests for scenario fault injection."""

import numpy as np
import pytest

from repro.core.config import STANDARD, backup_config
from repro.graphs import ring_based
from repro.harness import ExperimentSpec, run_spec, svm_workload
from repro.net.links import Link, LinkModel, uniform_links
from repro.scenarios import (
    CrashEvent,
    CrashStallSlowdown,
    FaultPlan,
    FlappingLinkModel,
    LinkFlap,
    MessageLoss,
    ScenarioSpec,
)
from repro.sim import RngStreams

WORKLOAD = svm_workload("smoke")


def hop_spec(scenario, n=6, max_iter=12, seed=0, config=STANDARD, **kw):
    return ExperimentSpec(
        name="faults",
        workload=WORKLOAD,
        topology=ring_based(n),
        protocol="hop",
        config=config,
        scenario=scenario,
        max_iter=max_iter,
        seed=seed,
        **kw,
    )


class TestCrashEvent:
    def test_permanent_vs_restart(self):
        assert CrashEvent(0, 3).permanent
        assert not CrashEvent(0, 3, downtime_iters=5.0).permanent

    def test_validation(self):
        with pytest.raises(ValueError):
            CrashEvent(0, -1)
        with pytest.raises(ValueError):
            CrashEvent(0, 1, downtime_iters=-2.0)

    def test_fault_plan_rejects_duplicate_workers(self):
        with pytest.raises(ValueError):
            FaultPlan(crashes=(CrashEvent(1, 2), CrashEvent(1, 5)))

    def test_out_of_range_crash_worker_rejected_at_build(self):
        """worker=99 on a 4-worker cluster must fail loudly, not
        silently run clean (and silently excuse real deadlocks)."""
        streams = RngStreams(0)
        for family, params in (
            ("crash", {"worker": 99, "at": 2}),
            ("crash", {"crashes": {99: 2}}),
            ("crash-restart", {"worker": 99, "at": 2}),
            ("crash-restart", {"worker": -1, "at": 2}),
        ):
            with pytest.raises(ValueError):
                ScenarioSpec(family, params).build(4, streams)

    def test_fault_events_ordered_causally_on_time_ties(self):
        run = run_spec(
            hop_spec(
                ScenarioSpec(
                    "crash-restart",
                    {"worker": 2, "at": 3, "downtime_iters": 5.0},
                )
            )
        )
        kinds = [event["kind"] for event in run.fault_events]
        assert kinds == ["crashed", "resynced", "restarted"]


class TestCrashStallSlowdown:
    def test_stall_at_crash_iteration_only(self):
        model = CrashStallSlowdown((CrashEvent(2, 4, downtime_iters=6.0),))
        assert model.factor(2, 4) == 7.0  # 1 + downtime
        assert model.factor(2, 3) == 1.0
        assert model.factor(1, 4) == 1.0

    def test_rejects_permanent_crashes(self):
        with pytest.raises(ValueError):
            CrashStallSlowdown((CrashEvent(0, 1),))

    def test_downtime_adds_rather_than_multiplies_with_slowdown(self):
        """The outage is absolute dead time: a 6x slowdown landing on
        the crash iteration must not scale the downtime (matching
        hop's native flat-timeout semantics)."""
        scenario = ScenarioSpec(
            "crash-restart",
            {
                "worker": 0,
                "at": 2,
                "downtime_iters": 10.0,
                "slowdown": {
                    "family": "straggler",
                    "params": {"workers": {0: 6.0}},
                },
            },
        ).build(4, RngStreams(0))
        combined = scenario.compute_slowdown(native_faults=False)
        assert combined.factor(0, 2) == 6.0 + 10.0  # not 6 * 11
        assert combined.factor(0, 1) == 6.0
        assert combined.factor(1, 2) == 1.0


class TestFlappingLinkModel:
    def test_degrades_only_inside_window(self):
        base = uniform_links(latency=1e-3, bandwidth=100.0)
        model = FlappingLinkModel(
            base, (LinkFlap(start=1.0, end=2.0, factor=10.0),)
        )
        clock = [0.0]
        model.bind_clock(lambda: clock[0])
        before = model.transfer_time(0, 1, 10.0)
        clock[0] = 1.5
        during = model.transfer_time(0, 1, 10.0)
        clock[0] = 2.0
        after = model.transfer_time(0, 1, 10.0)
        assert during == pytest.approx(10 * before)
        assert after == before

    def test_edge_scoped_flap(self):
        base = uniform_links()
        model = FlappingLinkModel(
            base, (LinkFlap(0.0, 9.0, 5.0, edges=((0, 1),)),)
        )
        model.bind_clock(lambda: 1.0)
        assert model.transfer_time(0, 1, 1.0) == pytest.approx(
            5 * base.transfer_time(0, 1, 1.0), rel=1e-6
        )
        assert model.transfer_time(1, 0, 1.0) == base.transfer_time(1, 0, 1.0)

    def test_self_edges_never_flap(self):
        model = FlappingLinkModel(uniform_links(), (LinkFlap(0.0, 9.0, 5.0),))
        model.bind_clock(lambda: 1.0)
        assert model.link(2, 2).latency == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkFlap(2.0, 1.0, 4.0)
        with pytest.raises(ValueError):
            LinkFlap(0.0, 1.0, 0.0)


class TestMessageLoss:
    def test_draws_are_geometricish(self):
        loss = MessageLoss(0.5, rng=np.random.default_rng(0))
        draws = [loss.draw_drops() for _ in range(2000)]
        rate = np.mean([d > 0 for d in draws])
        assert rate == pytest.approx(0.5, abs=0.05)
        assert loss.messages_dropped == sum(draws)

    def test_zero_probability_never_drops(self):
        loss = MessageLoss(0.0, rng=np.random.default_rng(0))
        assert all(loss.draw_drops() == 0 for _ in range(100))

    def test_bounded_retries(self):
        loss = MessageLoss(
            0.999999, max_retries=3, rng=np.random.default_rng(0)
        )
        assert max(loss.draw_drops() for _ in range(50)) <= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            MessageLoss(1.0)
        with pytest.raises(ValueError):
            MessageLoss(0.1, retransmit_timeout=-1.0)


class TestHopCrashRestart:
    def test_lifecycle_events_and_completion(self):
        run = run_spec(
            hop_spec(
                ScenarioSpec(
                    "crash-restart",
                    {"worker": 2, "at": 3, "downtime_iters": 5.0},
                )
            )
        )
        kinds = [event["kind"] for event in run.fault_events]
        assert kinds.count("crashed") == 1
        assert kinds.count("restarted") == 1
        assert kinds.count("resynced") == 1
        assert all(c == 12 for c in run.iterations_completed)
        crashed = next(
            e for e in run.fault_events if e["kind"] == "crashed"
        )
        assert crashed["worker"] == 2
        assert crashed["iteration"] == 3

    def test_restart_without_resync(self):
        run = run_spec(
            hop_spec(
                ScenarioSpec(
                    "crash-restart",
                    {
                        "worker": 2,
                        "at": 3,
                        "downtime_iters": 5.0,
                        "resync": False,
                    },
                )
            )
        )
        kinds = [event["kind"] for event in run.fault_events]
        assert "resynced" not in kinds
        assert "restarted" in kinds
        assert all(c == 12 for c in run.iterations_completed)

    def test_downtime_costs_wall_time(self):
        clean = run_spec(hop_spec(ScenarioSpec("none")))
        crashed = run_spec(
            hop_spec(
                ScenarioSpec(
                    "crash-restart",
                    {"worker": 0, "at": 2, "downtime_iters": 10.0},
                )
            )
        )
        assert crashed.wall_time > clean.wall_time

    def test_overlapping_restarts_skip_dark_resync_sources(self):
        """Two neighbors dark at once: a restarting worker must not
        copy parameters from a peer still in its own downtime; the run
        still completes for everyone."""
        from repro.core.cluster import HopCluster
        from repro.hetero.compute import ComputeModel

        cluster = HopCluster(
            topology=ring_based(6),
            config=STANDARD,
            model_factory=WORKLOAD.model_factory,
            dataset=WORKLOAD.dataset,
            optimizer=WORKLOAD.optimizer_factory(),
            batch_size=WORKLOAD.batch_size,
            compute_model=ComputeModel(
                base_time=WORKLOAD.base_compute_time, n_workers=6
            ),
            max_iter=12,
            seed=0,
            crash_events={
                1: CrashEvent(1, 3, downtime_iters=8.0),
                2: CrashEvent(2, 3, downtime_iters=8.0),
            },
        )
        run = cluster.run()
        assert all(c == 12 for c in run.iterations_completed)
        kinds = [e["kind"] for e in run.fault_events]
        assert kinds.count("crashed") == 2
        assert kinds.count("restarted") == 2

    def test_lossy_net_penalty_applies_on_shared_nic_path(self):
        """Machine-aware deployments (shared uplink NICs) must also pay
        for dropped messages."""
        machines = (0, 0, 1, 1, 2, 2)
        clean = run_spec(
            hop_spec(ScenarioSpec("none"), machines=machines)
        )
        lossy = run_spec(
            hop_spec(
                ScenarioSpec("lossy-net", {"probability": 0.3}),
                machines=machines,
            )
        )
        assert lossy.messages_dropped > 0
        assert lossy.wall_time > clean.wall_time

    def test_restart_count_in_worker_stats(self):
        run = run_spec(
            hop_spec(
                ScenarioSpec(
                    "crash-restart",
                    {"worker": 1, "at": 2, "downtime_iters": 4.0},
                )
            )
        )
        assert run.worker_stats[1]["n_restarts"] == 1
        assert run.worker_stats[0]["n_restarts"] == 0


class TestHopPermanentCrash:
    def test_crash_family_maps_to_legacy_fail_stop(self):
        run = run_spec(
            hop_spec(
                ScenarioSpec("crash", {"worker": 0, "at": 4}),
                config=backup_config(n_backup=1, max_ig=3),
            )
        )
        assert run.iterations_completed[0] == 4
        # Theorem 2 blast radius: neighbors reach crash + max_ig.
        assert max(run.iterations_completed[1:]) <= 4 + 3
        assert [e["kind"] for e in run.fault_events] == ["crashed"]

    def test_crash_restart_deadlock_detection_still_armed(self):
        """Crash-*restart* runs must finish; the permanent-crash excuse
        does not apply to them (a genuine stall would raise)."""
        # A successful run proves the non-excused path completes.
        run = run_spec(
            hop_spec(
                ScenarioSpec(
                    "crash-restart",
                    {"worker": 0, "at": 2, "downtime_iters": 3.0},
                )
            )
        )
        assert all(c == 12 for c in run.iterations_completed)


class TestNetworkFaultsInRuns:
    def test_lossy_net_drops_and_still_converges(self):
        run = run_spec(
            hop_spec(ScenarioSpec("lossy-net", {"probability": 0.2}))
        )
        assert run.messages_dropped > 0
        assert all(c == 12 for c in run.iterations_completed)
        clean = run_spec(hop_spec(ScenarioSpec("none")))
        assert run.wall_time > clean.wall_time  # loss costs time

    def test_flaky_net_slows_the_run(self):
        clean = run_spec(hop_spec(ScenarioSpec("none")))
        flaky = run_spec(
            hop_spec(
                ScenarioSpec(
                    "flaky-net",
                    {"start": 0.0, "end": 2.0, "factor": 20.0},
                )
            )
        )
        assert flaky.wall_time > clean.wall_time

    def test_faults_compose_with_nested_slowdown(self):
        scenario = ScenarioSpec(
            "lossy-net",
            {
                "probability": 0.1,
                "slowdown": {
                    "family": "straggler",
                    "params": {"workers": {0: 4.0}},
                },
            },
        )
        run = run_spec(hop_spec(scenario))
        assert run.messages_dropped > 0
        # The nested straggler bites: worker 0 is the slow one.
        durations = [
            s["iteration_duration_mean"] for s in run.worker_stats
        ]
        assert durations[0] == max(durations)

    def test_nested_slowdown_must_be_pure(self):
        scenario = ScenarioSpec(
            "lossy-net",
            {
                "probability": 0.1,
                "slowdown": {
                    "family": "crash-restart",
                    "params": {"worker": 0, "at": 1},
                },
            },
        )
        with pytest.raises(ValueError):
            run_spec(hop_spec(scenario))
