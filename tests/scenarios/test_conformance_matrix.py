"""The cross-protocol x cross-scenario conformance matrix.

The standing gate for every future protocol or scenario PR: *every*
registered protocol must complete under *every* universal scenario
family, with

* no deadlock (the run finishes; ``DeadlockError`` fails the cell),
* a finite final loss, and
* bitwise-identical ``TrainingRun`` stats across two same-seed runs
  (the whole stack — scenario models, fault injection, simulation —
  stays deterministic).

Non-universal families (permanent ``crash``) are excluded by
definition — they require native crash support — and covered by the
dedicated hop crash tests instead.  New protocols and new scenario
families are picked up automatically through the two registries.

Since the full-grid elasticity pass the churn families (``churn``,
``churn-poisson``, ``churn-trace``) are a second, equally standing
matrix: *every* protocol is elastic, so every protocol x churn-family
cell must complete without deadlock, keep finite loss, and stay
bitwise deterministic and golden-pinned — membership events included.

The determinism gate is two-layered: same-seed runs must agree with
*each other* (below), and every cell must agree bit-for-bit with the
golden fingerprints recorded in ``golden_stats.json`` before the PR 4
simulator-core refactor — so engine/reducer/parameter-plane rework
cannot silently shift any result.  Re-record the goldens (and review
the diff) with ``scripts/record_golden_stats.py`` only for intentional
semantic changes.
"""

import hashlib
import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.core.gap import gap_bound_matrix
from repro.graphs import ring_based
from repro.harness import ExperimentSpec, run_spec, svm_workload
from repro.harness.golden import (
    CHURN_CELLS,
    COMPRESSION_CELLS,
    ELASTIC_PROTOCOLS,
    MAX_ITER,
    N_WORKERS,
    churn_conformance_spec,
    compression_conformance_spec,
    conformance_spec,
    golden_fingerprint,
)
from repro.protocols import registered_protocols
from repro.protocols.registry import get_protocol
from repro.scenarios import ScenarioSpec, registered_scenarios

assert N_WORKERS == 4 and MAX_ITER == 5, "golden pin moved; re-record"

WORKLOAD = svm_workload("smoke")

GOLDEN_PATH = Path(__file__).parent / "golden_stats.json"
GOLDEN_CELLS = json.loads(GOLDEN_PATH.read_text())["cells"]

#: SHA-256 over the 90 pre-membership-plane cells (protocol x universal
#: family), pinned at the PR 4 recording.  The membership-plane PR adds
#: churn cells to the file but must never touch these.
PRE_MEMBERSHIP_CELLS_SHA256 = (
    "c05d6a52eb19c56270724f53d4f0f00c9ddc5a338b50b067d87d85ae4291658f"
)

#: The protocols that were already elastic before the full-grid
#: elasticity pass, and their two churn families recorded then.  Those
#: 6 churn cells plus the 90 static cells (96 total) predate the pass
#: and are pinned below: making the remaining six protocols elastic
#: must not perturb a single recorded byte.
FIRST_WAVE_ELASTIC = ("adpsgd", "hop", "partial-allreduce")
FIRST_WAVE_CHURN_FAMILIES = ("churn", "churn-poisson")
PRE_ELASTICITY_CELLS_SHA256 = (
    "83d30fd52c37e8531bf35cca06940a39c2b307ece10239289bc86033de42aa59"
)


def run_fingerprint(run) -> dict:
    """The exactly-comparable stats of a run (bitwise determinism)."""
    return {
        "wall_time": run.wall_time,
        "final_params": run.final_params.tobytes(),
        "final_loss": run.final_loss,
        "final_accuracy": run.final_accuracy,
        "iterations_completed": list(run.iterations_completed),
        "iterations_skipped": list(run.iterations_skipped),
        "messages_sent": run.messages_sent,
        "bytes_sent": run.bytes_sent,
        "messages_dropped": run.messages_dropped,
        "consensus": run.consensus,
        "max_gap": run.gap.max_observed(),
        "fault_events": run.fault_events,
        "membership_events": run.membership_events,
    }


@pytest.mark.parametrize("family", registered_scenarios(universal_only=True))
@pytest.mark.parametrize("protocol", registered_protocols())
def test_protocol_scenario_cell(protocol, family):
    """One matrix cell: completes, converges finitely, deterministic."""
    first = run_spec(conformance_spec(protocol, family))

    # No deadlock: every worker ran to the end.
    assert all(c == MAX_ITER for c in first.iterations_completed), (
        f"{protocol} under {family}: iterations "
        f"{first.iterations_completed}"
    )
    # Finite loss: training stayed numerically sane.
    assert first.final_loss is not None and math.isfinite(first.final_loss)
    assert np.isfinite(first.final_params).all()
    assert math.isfinite(first.wall_time) and first.wall_time > 0

    # Bitwise-identical stats across two same-seed runs.
    second = run_spec(conformance_spec(protocol, family))
    assert run_fingerprint(first) == run_fingerprint(second), (
        f"{protocol} under {family} is not deterministic"
    )

    # Bitwise-identical to the pre-refactor golden recording: pinned
    # event ordering and floating-point accumulation order.  A new
    # protocol/family without a golden yet fails loudly so the
    # recording is refreshed deliberately.
    key = f"{protocol}/{family}"
    assert key in GOLDEN_CELLS, (
        f"no golden recorded for {key}; run "
        "scripts/record_golden_stats.py and review the diff"
    )
    assert golden_fingerprint(first) == GOLDEN_CELLS[key], (
        f"{protocol} under {family} no longer matches the recorded "
        "golden stats: the simulator's numerical or event-ordering "
        "behavior changed"
    )


@pytest.mark.parametrize("family", sorted(CHURN_CELLS))
@pytest.mark.parametrize("protocol", ELASTIC_PROTOCOLS)
def test_elastic_protocol_churn_cell(protocol, family):
    """One churn cell: elastic protocols survive membership churn.

    Same contract as the universal cells, adapted to elasticity:
    every *never-leaving* worker completes all iterations, the
    membership lifecycle is recorded, and the whole run (membership
    events included) is bitwise deterministic and golden-pinned.
    """
    first = run_spec(churn_conformance_spec(protocol, family))

    leavers = {
        event["worker"]
        for event in first.membership_events
        if event["kind"] == "leave"
    }
    assert leavers, f"{protocol}/{family}: the pinned plan must churn"
    stalled = [
        wid
        for wid, completed in enumerate(first.iterations_completed)
        if completed != MAX_ITER and wid not in leavers
    ]
    assert not stalled, (
        f"{protocol} under {family}: non-leaving workers stalled "
        f"{stalled} (iterations {first.iterations_completed})"
    )
    assert first.final_loss is not None and math.isfinite(first.final_loss)
    assert np.isfinite(first.final_params).all()
    kinds = {event["kind"] for event in first.membership_events}
    assert "rewire" in kinds, "every transition must report its rewire"

    second = run_spec(churn_conformance_spec(protocol, family))
    assert run_fingerprint(first) == run_fingerprint(second), (
        f"{protocol} under {family} churn is not deterministic"
    )

    key = f"{protocol}/{family}"
    assert key in GOLDEN_CELLS, (
        f"no golden recorded for {key}; run "
        "scripts/record_golden_stats.py and review the diff"
    )
    assert golden_fingerprint(first) == GOLDEN_CELLS[key], (
        f"{protocol} under {family} no longer matches the recorded "
        "golden stats: the membership plane's numerical or "
        "event-ordering behavior changed"
    )


@pytest.mark.parametrize("scheme", sorted(COMPRESSION_CELLS))
@pytest.mark.parametrize("protocol", registered_protocols())
def test_compressed_protocol_cell(protocol, scheme):
    """One compressed cell: every protocol trains under every
    registered compression scheme, sends strictly fewer payload bytes
    than its dense twin, and stays bitwise deterministic and
    golden-pinned (the pin covers the error-feedback math and top-k's
    deterministic tie-breaking)."""
    first = run_spec(compression_conformance_spec(protocol, scheme))

    assert all(c == MAX_ITER for c in first.iterations_completed), (
        f"{protocol} under {scheme}: iterations "
        f"{first.iterations_completed}"
    )
    assert first.final_loss is not None and math.isfinite(first.final_loss)
    assert np.isfinite(first.final_params).all()

    dense = run_spec(conformance_spec(protocol, "none"))
    assert first.bytes_sent < dense.bytes_sent, (
        f"{protocol}/{scheme}: compression did not shrink the wire "
        f"({first.bytes_sent} vs dense {dense.bytes_sent})"
    )
    assert first.messages_sent == dense.messages_sent, (
        "compression changes payload sizes, never the message pattern"
    )

    second = run_spec(compression_conformance_spec(protocol, scheme))
    assert run_fingerprint(first) == run_fingerprint(second), (
        f"{protocol} under {scheme} is not deterministic"
    )

    key = f"{protocol}/compressed-{scheme}"
    assert key in GOLDEN_CELLS, (
        f"no golden recorded for {key}; run "
        "scripts/record_golden_stats.py and review the diff"
    )
    assert golden_fingerprint(first) == GOLDEN_CELLS[key], (
        f"{protocol} under {scheme} no longer matches the recorded "
        "golden stats: the compression plane's numerical behavior "
        "changed"
    )


def test_compression_none_matches_dense_bitwise():
    """`compression=None` and `CompressionSpec("none")` are the same
    run, byte for byte — the dense path must be untouched by the
    compression plane's existence."""
    from repro.compression import CompressionSpec

    base = conformance_spec("hop", "none")
    dense = run_spec(base)
    named_none = run_spec(
        base.with_(compression=CompressionSpec("none"))
    )
    assert run_fingerprint(dense) == run_fingerprint(named_none)


def test_pre_membership_golden_cells_untouched():
    """The 90 pre-refactor cells are immutable: static-membership runs
    must be unaffected by the membership plane, byte for byte."""
    original = {
        key: value
        for key, value in GOLDEN_CELLS.items()
        if key.split("/", 1)[1] not in CHURN_CELLS
        and not key.split("/", 1)[1].startswith("compressed-")
    }
    assert len(original) == 90
    blob = json.dumps(
        {key: original[key] for key in sorted(original)}, sort_keys=True
    ).encode()
    assert (
        hashlib.sha256(blob).hexdigest() == PRE_MEMBERSHIP_CELLS_SHA256
    ), (
        "a pre-membership golden cell changed; static runs must stay "
        "bitwise identical (re-recording these 90 cells is never part "
        "of an elasticity change)"
    )


def test_pre_elasticity_golden_cells_untouched():
    """The 96 cells recorded before the full-grid elasticity pass (90
    static + the first-wave trio's 6 churn cells) are immutable: making
    the other six protocols elastic must not move a byte of them."""
    keys = {
        key
        for key in GOLDEN_CELLS
        if key.split("/", 1)[1] not in CHURN_CELLS
        and not key.split("/", 1)[1].startswith("compressed-")
    }
    keys.update(
        f"{protocol}/{family}"
        for protocol in FIRST_WAVE_ELASTIC
        for family in FIRST_WAVE_CHURN_FAMILIES
    )
    assert len(keys) == 96
    blob = json.dumps(
        {key: GOLDEN_CELLS[key] for key in sorted(keys)}, sort_keys=True
    ).encode()
    assert (
        hashlib.sha256(blob).hexdigest() == PRE_ELASTICITY_CELLS_SHA256
    ), (
        "a pre-elasticity golden cell changed; converting the remaining "
        "protocols to elastic must leave every previously recorded cell "
        "bitwise identical"
    )


def test_churn_rejected_for_non_elastic_protocols():
    """The registry gate is a standing conformance obligation: a churn
    plan aimed at a protocol registered non-elastic must fail loudly at
    build time, never silently run a static cluster.  Every built-in is
    elastic now, so the gate is exercised through a throwaway
    registration."""
    from repro.protocols.registry import _REGISTRY, register_protocol

    name = "test-static-dummy"
    register_protocol(
        name,
        lambda spec: pytest.fail("builder must not run: gate fires first"),
        summary="non-elastic dummy for the churn registry gate",
    )
    try:
        assert not get_protocol(name).elastic
        for family in sorted(CHURN_CELLS):
            with pytest.raises(ValueError, match="not elastic"):
                run_spec(churn_conformance_spec(name, family))
    finally:
        _REGISTRY.pop(name, None)


def test_full_grid_is_elastic():
    """The tentpole obligation: every registered protocol is elastic,
    ELASTIC_PROTOCOLS mirrors the registry flags, and therefore every
    protocol runs every churn family in the matrix above."""
    flagged = tuple(
        sorted(
            name
            for name in registered_protocols()
            if get_protocol(name).elastic
        )
    )
    assert flagged == tuple(sorted(ELASTIC_PROTOCOLS))
    assert flagged == tuple(registered_protocols()), (
        "a registered protocol is not elastic; the full-grid contract "
        "requires every built-in to survive membership churn"
    )


def test_matrix_covers_at_least_six_families():
    assert len(registered_scenarios(universal_only=True)) >= 6


def test_matrix_covers_every_registered_protocol():
    assert len(registered_protocols()) >= 6


class TestCrashRestartBlastRadius:
    """The acceptance cell: crash-restart's neighbor blast radius must
    respect Theorem 2's iteration-gap bound."""

    def test_hop_crash_restart_gap_within_theorem2_bound(self):
        from repro.core.config import backup_config

        topology = ring_based(6)
        config = backup_config(n_backup=1, max_ig=3)
        spec = ExperimentSpec(
            name="crash-restart-gap",
            workload=WORKLOAD,
            topology=topology,
            protocol="hop",
            config=config,
            scenario=ScenarioSpec(
                "crash-restart",
                {"worker": 2, "at": 4, "downtime_iters": 8.0},
            ),
            max_iter=16,
            seed=3,
        )
        run = run_spec(spec)
        assert all(c == 16 for c in run.iterations_completed)
        bounds = gap_bound_matrix(topology, "backup+tokens", max_ig=3)
        assert not run.gap.violations(bounds)
        kinds = [event["kind"] for event in run.fault_events]
        assert kinds.count("crashed") == 1
        assert kinds.count("restarted") == 1

    def test_crash_restart_under_every_protocol(self):
        """The crash-restart family is universal: nobody deadlocks."""
        for protocol in registered_protocols():
            run = run_spec(conformance_spec(protocol, "crash-restart"))
            assert all(c == MAX_ITER for c in run.iterations_completed), (
                f"{protocol} stalled under crash-restart"
            )
