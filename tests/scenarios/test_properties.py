"""Property-based tests for scenario models (hypothesis).

The scenario-engine contract, checked over generated parameters and
query patterns:

* factors are always >= 1 (a slowdown never speeds a worker up),
* draws are query-order independent (memoization/counter schemes must
  not leak the access pattern into the values),
* ``ComposedSlowdown`` is associative, and
* trace record -> replay round-trips exactly.
"""

import json

import pytest

pytest.importorskip(
    "hypothesis",
    reason="property tests need hypothesis (not a runtime dependency)",
)
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.hetero.slowdown import (
    ComposedSlowdown,
    DeterministicSlowdown,
    NoSlowdown,
    RandomSlowdown,
)
from repro.scenarios import (
    DiurnalSlowdown,
    MarkovSlowdown,
    RecordingSlowdown,
    TieredSlowdown,
    TraceSlowdown,
)
from repro.sim import RngStreams

#: (worker, iteration) query points.
KEYS = st.tuples(
    st.integers(min_value=0, max_value=7),
    st.integers(min_value=0, max_value=99),
)

FACTORS = st.floats(min_value=1.0, max_value=64.0, allow_nan=False)
PROBS = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def model_strategy():
    """Any scenario model, built from generated parameters."""
    return st.one_of(
        st.just(NoSlowdown()),
        st.builds(
            RandomSlowdown,
            st.integers(min_value=0, max_value=99).map(RngStreams),
            factor=FACTORS,
            probability=PROBS,
        ),
        st.builds(
            MarkovSlowdown,
            st.integers(min_value=0, max_value=99).map(RngStreams),
            factor=FACTORS,
            p_enter=PROBS,
            p_exit=PROBS,
        ),
        st.builds(
            TieredSlowdown,
            st.lists(FACTORS, min_size=1, max_size=5).map(tuple),
        ),
        st.builds(
            DiurnalSlowdown,
            period=st.floats(min_value=1.0, max_value=200.0),
            peak=FACTORS,
        ),
        st.builds(
            DeterministicSlowdown,
            st.dictionaries(
                st.integers(min_value=0, max_value=7), FACTORS, max_size=4
            ),
        ),
    )


@settings(max_examples=60, deadline=None)
@given(model=model_strategy(), keys=st.lists(KEYS, min_size=1, max_size=40))
def test_factors_always_at_least_one(model, keys):
    for worker, iteration in keys:
        assert model.factor(worker, iteration) >= 1.0


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=99),
    keys=st.lists(KEYS, min_size=2, max_size=40, unique=True),
    order=st.randoms(use_true_random=False),
)
@pytest.mark.parametrize("model_class", [RandomSlowdown, MarkovSlowdown])
def test_draws_are_query_order_independent(model_class, seed, keys, order):
    """Two identical models queried in different orders agree on every
    key — the memoized/counter draws cannot depend on access order."""
    in_order = model_class(RngStreams(seed))
    shuffled_model = model_class(RngStreams(seed))
    shuffled = list(keys)
    order.shuffle(shuffled)
    expected = {key: in_order.factor(*key) for key in keys}
    observed = {key: shuffled_model.factor(*key) for key in shuffled}
    assert observed == expected


@settings(max_examples=60, deadline=None)
@given(
    factors=st.lists(
        st.dictionaries(
            st.integers(min_value=0, max_value=7),
            st.sampled_from([1.0, 2.0, 3.0, 4.0, 6.0]),
            max_size=4,
        ),
        min_size=3,
        max_size=3,
    ),
    keys=st.lists(KEYS, min_size=1, max_size=20),
)
def test_composed_slowdown_is_associative(factors, keys):
    """(a * b) * c == a * (b * c), exactly, for integer-valued factors
    (whose float products are exact)."""
    a, b, c = (DeterministicSlowdown(f) for f in factors)
    left = ComposedSlowdown([ComposedSlowdown([a, b]), c])
    right = ComposedSlowdown([a, ComposedSlowdown([b, c])])
    flat = ComposedSlowdown([a, b, c])
    for worker, iteration in keys:
        assert (
            left.factor(worker, iteration)
            == right.factor(worker, iteration)
            == flat.factor(worker, iteration)
        )


@settings(max_examples=60, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=99),
    keys=st.lists(KEYS, min_size=1, max_size=60),
)
def test_trace_record_replay_round_trips_exactly(seed, keys):
    """record -> JSON -> replay serves bit-identical factors, including
    on keys that were never recorded (the default)."""
    recorder = RecordingSlowdown(MarkovSlowdown(RngStreams(seed), factor=6.0))
    served = {key: recorder.factor(*key) for key in keys}
    payload = json.loads(json.dumps(recorder.to_trace().to_dict()))
    replay = TraceSlowdown.from_dict(payload)
    assert {key: replay.factor(*key) for key in keys} == served
    assert replay.factor(6, 10_000) == 1.0  # unrecorded -> default


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.tuples(KEYS, st.floats(min_value=1.0, max_value=100.0)),
        min_size=1,
        max_size=30,
        unique_by=lambda pair: pair[0],
    )
)
def test_trace_json_round_trip_preserves_arbitrary_floats(values):
    """JSON float serialization (repr-based) is exact for any factor."""
    table = {key: factor for key, factor in values}
    original = TraceSlowdown(table)
    restored = TraceSlowdown.from_dict(
        json.loads(json.dumps(original.to_dict()))
    )
    # The sparse format drops entries equal to the default, so compare
    # behavior (served factors), which must be bit-identical.
    for key in table:
        assert restored.factor(*key) == original.factor(*key)
