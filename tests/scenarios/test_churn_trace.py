"""The churn-trace family: presets, JSON record/replay, and the
replay-equivalence contract (a recorded trace reproduces the recorded
run bit-for-bit across every elastic protocol)."""

import json
from pathlib import Path

import pytest

from repro.harness.golden import (
    CHURN_CELLS,
    ELASTIC_PROTOCOLS,
    churn_conformance_spec,
    conformance_spec,
    golden_fingerprint,
)
from repro.harness.spec import run_spec
from repro.membership import ChurnPlan
from repro.scenarios import ScenarioSpec
from repro.scenarios.churn_trace import (
    CHURN_TRACE_FORMAT,
    churn_trace_from_dict,
    churn_trace_to_dict,
    diurnal_availability_plan,
    load_churn_trace,
    record_churn_trace,
    spot_preemption_plan,
)

FIXTURE = Path(__file__).parent / "fixtures" / "spot_preemption_trace.json"


class TestSpotPreemptionPlan:
    def test_wave_takes_the_requested_fraction(self):
        plan = spot_preemption_plan(8, waves=[3], fraction=0.5)
        # Eligible capacity is workers 2..7; half of six is three.
        assert len(plan.events) == 3
        assert all(e.leave_at == 3 for e in plan.events)
        assert all(e.worker >= 2 for e in plan.events)
        assert all(e.join_at is None for e in plan.events)

    def test_restart_after_schedules_rejoin(self):
        plan = spot_preemption_plan(
            6, waves=[2], fraction=1.0, restart_after=3
        )
        assert all(e.join_at == 5 for e in plan.events)

    def test_reserved_capacity_never_preempted(self):
        plan = spot_preemption_plan(
            6, waves=[1, 2, 3], fraction=1.0, min_active=4
        )
        assert {e.worker for e in plan.events} == {4, 5}

    def test_each_worker_preempted_at_most_once(self):
        plan = spot_preemption_plan(6, waves=[1, 2, 3, 4], fraction=0.5)
        workers = [e.worker for e in plan.events]
        assert len(workers) == len(set(workers))

    def test_seeded_draw_is_deterministic(self):
        import numpy as np

        draws = [
            spot_preemption_plan(
                10,
                waves=[1, 3],
                fraction=0.5,
                rng=np.random.default_rng(7),
            ).to_dict()
            for _ in range(2)
        ]
        assert draws[0] == draws[1]

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError, match="fraction"):
            spot_preemption_plan(4, waves=[1], fraction=0.0)

    def test_negative_wave_rejected(self):
        with pytest.raises(ValueError, match="wave"):
            spot_preemption_plan(4, waves=[-1])


class TestDiurnalAvailabilityPlan:
    def test_staggered_off_windows(self):
        plan = diurnal_availability_plan(5, phase=2, night=3, stagger=1)
        assert [(e.worker, e.leave_at, e.join_at) for e in plan.events] == [
            (2, 2, 5),
            (3, 3, 6),
            (4, 4, 7),
        ]

    def test_zero_night_rejected(self):
        with pytest.raises(ValueError, match="night"):
            diurnal_availability_plan(4, night=0)


class TestRecordReplay:
    def test_round_trip_preserves_the_plan(self, tmp_path):
        plan = spot_preemption_plan(
            6, waves=[1, 3], fraction=0.5, restart_after=2
        )
        path = record_churn_trace(
            plan, tmp_path / "trace.json", source="unit"
        )
        replayed = load_churn_trace(path)
        assert replayed.to_dict() == plan.to_dict()
        payload = json.loads(path.read_text())
        assert payload["format"] == CHURN_TRACE_FORMAT
        assert payload["source"] == "unit"

    def test_dict_round_trip(self):
        plan = diurnal_availability_plan(5, stagger=1)
        assert (
            churn_trace_from_dict(churn_trace_to_dict(plan)).to_dict()
            == plan.to_dict()
        )

    def test_foreign_format_rejected(self):
        with pytest.raises(ValueError, match="churn-trace"):
            churn_trace_from_dict(
                {"format": "repro.slowdown-trace/v1", "events": []}
            )


def _build(params, n_workers=4, seed=1):
    from repro.sim.rng import RngStreams

    return ScenarioSpec("churn-trace", params).build(
        n_workers, RngStreams(seed)
    )


class TestBuilder:
    def test_path_and_events_mutually_exclusive(self, tmp_path):
        path = record_churn_trace(
            spot_preemption_plan(4, waves=[1]), tmp_path / "t.json"
        )
        with pytest.raises(ValueError, match="at most one"):
            _build({"path": str(path), "events": []})

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="preset"):
            _build({"preset": "lunar"})

    def test_inline_events(self):
        scenario = _build({"events": [{"worker": 3, "leave_at": 2}]})
        assert isinstance(scenario.churn, ChurnPlan)
        assert scenario.churn.events[0].worker == 3


class TestReplayEquivalence:
    """Satellite contract: a recorded trace replays the recorded run
    bitwise — membership events and stats included — for every elastic
    protocol.  The checked-in fixture is the spot wave the golden
    churn-trace cells were recorded under, so replaying it must also
    match the goldens exactly."""

    def test_fixture_matches_the_pinned_preset(self):
        from repro.sim.rng import RngStreams

        from repro.scenarios.builtin import _build_churn_trace

        preset = _build_churn_trace(
            dict(CHURN_CELLS["churn-trace"]), 4, RngStreams(1)
        )
        assert (
            load_churn_trace(FIXTURE).to_dict() == preset.churn.to_dict()
        )

    @pytest.mark.parametrize("protocol", ELASTIC_PROTOCOLS)
    def test_replay_is_bitwise_identical_to_the_recording(self, protocol):
        recorded = run_spec(churn_conformance_spec(protocol, "churn-trace"))
        replayed = run_spec(
            conformance_spec(
                protocol, "churn-trace", params={"path": str(FIXTURE)}
            )
        )
        assert replayed.membership_events == recorded.membership_events
        assert (
            replayed.final_params.tobytes()
            == recorded.final_params.tobytes()
        )
        assert golden_fingerprint(replayed) == golden_fingerprint(recorded)
