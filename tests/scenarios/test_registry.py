"""Tests for the scenario registry, ScenarioSpec and CLI integration."""

import json

import pytest

from repro.cli import main
from repro.graphs import ring_based
from repro.harness import ExperimentSpec, SlowdownSpec, run_spec, svm_workload
from repro.harness.spec import RANDOM_6X, deterministic_straggler
from repro.scenarios import (
    Scenario,
    ScenarioSpec,
    get_scenario,
    register_scenario,
    registered_scenarios,
    scenario_table,
)
from repro.scenarios.registry import _REGISTRY
from repro.sim import RngStreams

#: Families the issue requires the registry to expose.
REQUIRED_FAMILIES = {
    "none",
    "random",
    "straggler",
    "bursty",
    "tiered",
    "diurnal",
    "trace",
    "crash",
    "crash-restart",
    "flaky-net",
    "lossy-net",
}


class TestRegistry:
    def test_all_builtins_registered(self):
        assert REQUIRED_FAMILIES <= set(registered_scenarios())

    def test_at_least_six_families(self):
        assert len(registered_scenarios()) >= 6

    def test_universal_excludes_permanent_crash(self):
        universal = set(registered_scenarios(universal_only=True))
        assert "crash" not in universal
        assert "crash-restart" in universal
        assert len(universal) >= 6

    def test_aliases_resolve(self):
        assert get_scenario("markov").name == "bursty"
        assert get_scenario("clean").name == "none"
        assert get_scenario("whimpy").name == "tiered"

    def test_unknown_scenario_error_lists_registered_names(self):
        with pytest.raises(ValueError) as excinfo:
            get_scenario("sharknado")
        message = str(excinfo.value)
        assert "sharknado" in message
        for name in registered_scenarios(include_aliases=True):
            assert name in message

    def test_scenario_table_rows(self):
        rows = {row["name"]: row for row in scenario_table()}
        assert rows["bursty"]["aliases"] == "markov"
        assert "1909.08029" in rows["bursty"]["paper"]
        assert rows["crash"]["universal"] is False
        assert all(row["summary"] for row in rows.values())


class TestScenarioSpec:
    def test_every_family_builds(self):
        streams = RngStreams(0).spawn("slowdown")
        for family in registered_scenarios():
            scenario = ScenarioSpec(family).build(8, streams)
            assert scenario.slowdown.factor(0, 0) >= 1.0
            assert scenario.describe()

    def test_out_of_range_straggler_worker_rejected(self):
        """A straggler pinned to a nonexistent worker must fail loudly,
        not silently run a clean cluster (mirrors the crash families)."""
        streams = RngStreams(0)
        with pytest.raises(ValueError):
            ScenarioSpec("straggler", {"workers": {9: 4.0}}).build(4, streams)
        with pytest.raises(ValueError):
            ScenarioSpec("straggler", {"worker": -1}).build(4, streams)
        with pytest.raises(SystemExit):
            main(
                [
                    "train",
                    "--workers", "4",
                    "--iterations", "4",
                    "--slowdown", "straggler",
                    "--stragglers", "9:4",
                ]
            )

    def test_serialization_round_trip(self):
        spec = ScenarioSpec(
            "straggler", {"workers": {0: 4.0, 3: 2.0}}
        )
        payload = json.loads(json.dumps(spec.to_dict()))
        restored = ScenarioSpec.from_dict(payload)
        assert restored == spec

    def test_from_slowdown_matches_legacy_factors(self):
        """The converted scenario reproduces the legacy SlowdownSpec's
        factors draw-for-draw (back compatibility)."""
        for legacy in (
            SlowdownSpec(),
            RANDOM_6X,
            SlowdownSpec(kind="random", factor=3.0, probability=0.25),
            deterministic_straggler(worker=2, factor=5.0),
        ):
            streams_a = RngStreams(7).spawn("slowdown")
            streams_b = RngStreams(7).spawn("slowdown")
            old = legacy.build(8, streams_a)
            new = ScenarioSpec.from_slowdown(legacy).build(8, streams_b)
            for worker in range(8):
                for k in range(20):
                    assert new.slowdown.factor(worker, k) == old.factor(
                        worker, k
                    )

    def test_spec_scenario_overrides_slowdown(self):
        spec = ExperimentSpec(
            "s",
            svm_workload("smoke"),
            ring_based(4),
            slowdown=RANDOM_6X,
            scenario=ScenarioSpec("none"),
        )
        assert spec.resolved_scenario().family == "none"

    def test_legacy_slowdown_still_drives_runs(self):
        spec = ExperimentSpec(
            "s",
            svm_workload("smoke"),
            ring_based(4),
            slowdown=deterministic_straggler(worker=0, factor=6.0),
            max_iter=6,
        )
        run = run_spec(spec)
        durations = [
            s["iteration_duration_mean"] for s in run.worker_stats
        ]
        assert durations[0] == max(durations)


class TestExtensionPoint:
    """The docs/ARCHITECTURE.md add-a-scenario walkthrough, verified."""

    def test_register_and_run_a_custom_scenario(self):
        from repro.hetero.slowdown import SlowdownModel

        class EveryNthSlowdown(SlowdownModel):
            """Worker 0 is slow every nth iteration (a GC-pause model)."""

            def __init__(self, every: int = 4, factor: float = 8.0):
                self.every = every
                self.slow_factor = factor

            def factor(self, worker: int, iteration: int) -> float:
                if worker == 0 and iteration % self.every == 0:
                    return self.slow_factor
                return 1.0

            def describe(self) -> str:
                return f"gc-pause(every {self.every})"

        def build_gc_pause(params, n_workers, streams):
            return Scenario(
                "gc-pause",
                EveryNthSlowdown(
                    every=int(params.get("every", 4)),
                    factor=float(params.get("factor", 8.0)),
                ),
            )

        register_scenario(
            "gc-pause",
            build_gc_pause,
            summary="periodic stop-the-world pauses on worker 0",
            paper="n/a",
        )
        try:
            assert "gc-pause" in registered_scenarios()
            spec = ExperimentSpec(
                "gc",
                svm_workload("smoke"),
                ring_based(4),
                scenario=ScenarioSpec("gc-pause", {"every": 2}),
                max_iter=6,
            )
            run = run_spec(spec)
            assert all(c == 6 for c in run.iterations_completed)
            durations = [
                s["iteration_duration_mean"] for s in run.worker_stats
            ]
            assert durations[0] == max(durations)
        finally:
            _REGISTRY.pop("gc-pause", None)


class TestCLI:
    def test_scenarios_command_lists_registry(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for family in REQUIRED_FAMILIES:
            assert family in out
        assert "not universal" in out  # the permanent-crash caveat

    def test_train_with_scenario(self, capsys):
        code = main(
            [
                "train",
                "--workers", "6",
                "--iterations", "6",
                "--scenario", "crash-restart",
                "--scenario-param", "worker=2",
                "--scenario-param", "downtime_iters=4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "crashed w2" in out
        assert "restarted w2" in out

    def test_train_with_bursty_scenario_alias(self, capsys):
        assert (
            main(
                [
                    "train",
                    "--workers", "6",
                    "--iterations", "6",
                    "--scenario", "markov",
                ]
            )
            == 0
        )
        assert "wall_time" in capsys.readouterr().out

    def test_scenario_param_accepts_python_and_json_literals(self):
        from repro.cli import _scenario_param

        assert _scenario_param("resync=False") == ("resync", False)
        assert _scenario_param("resync=false") == ("resync", False)
        assert _scenario_param("resync=True") == ("resync", True)
        assert _scenario_param("probability=0.2") == ("probability", 0.2)
        assert _scenario_param("path=/tmp/t.json") == ("path", "/tmp/t.json")

    def test_train_scenario_param_false_disables_resync(self, capsys):
        code = main(
            [
                "train",
                "--workers", "6",
                "--iterations", "6",
                "--scenario", "crash-restart",
                "--scenario-param", "worker=2",
                "--scenario-param", "resync=False",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "restarted w2" in out
        assert "resynced" not in out

    def test_custom_protocol_with_native_faults_flag(self):
        """A downstream protocol that wires crash events natively must
        register native_faults=True and then NOT be double-charged."""
        from repro.protocols import get_protocol

        assert get_protocol("hop").native_faults is True
        assert get_protocol("allreduce").native_faults is False
        assert get_protocol("adpsgd").native_faults is False

    def test_train_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            main(["train", "--scenario", "nope"])

    def test_train_rejects_malformed_scenario_param(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "train",
                    "--scenario", "bursty",
                    "--scenario-param", "no-equals-sign",
                ]
            )
