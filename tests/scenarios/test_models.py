"""Unit tests for the scenario slowdown models and trace replay."""

import json

import pytest

from repro.scenarios import (
    DiurnalSlowdown,
    MarkovSlowdown,
    RecordingSlowdown,
    TieredSlowdown,
    TraceSlowdown,
    record_run_factors,
)
from repro.sim import RngStreams


class TestMarkovSlowdown:
    def test_factors_are_one_or_slow(self):
        model = MarkovSlowdown(RngStreams(0), factor=6.0)
        values = {model.factor(w, k) for w in range(4) for k in range(200)}
        assert values <= {1.0, 6.0}

    def test_bursts_are_temporally_correlated(self):
        """Given it is slow now, the chain is far likelier than the
        marginal rate to stay slow next iteration."""
        model = MarkovSlowdown(
            RngStreams(1), factor=6.0, p_enter=0.05, p_exit=0.25
        )
        stay_slow = total_slow = slow_any = total = 0
        for w in range(8):
            for k in range(500):
                now = model.factor(w, k) == 6.0
                nxt = model.factor(w, k + 1) == 6.0
                total += 1
                slow_any += now
                if now:
                    total_slow += 1
                    stay_slow += nxt
        marginal = slow_any / total
        conditional = stay_slow / total_slow
        assert conditional > 2 * marginal
        assert conditional == pytest.approx(1 - 0.25, abs=0.1)

    def test_query_order_independent(self):
        a = MarkovSlowdown(RngStreams(2))
        b = MarkovSlowdown(RngStreams(2))
        keys = [(w, k) for w in range(3) for k in range(50)]
        forward = {key: a.factor(*key) for key in keys}
        backward = {key: b.factor(*key) for key in reversed(keys)}
        assert forward == backward

    def test_workers_have_independent_chains(self):
        model = MarkovSlowdown(RngStreams(3), p_enter=0.3, p_exit=0.3)
        a = [model.factor(0, k) for k in range(200)]
        b = [model.factor(1, k) for k in range(200)]
        assert a != b

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovSlowdown(RngStreams(0), factor=0.5)
        with pytest.raises(ValueError):
            MarkovSlowdown(RngStreams(0), p_enter=1.5)
        with pytest.raises(ValueError):
            MarkovSlowdown(RngStreams(0), p_exit=-0.1)
        with pytest.raises(ValueError):
            MarkovSlowdown(RngStreams(0)).factor(0, -1)

    def test_describe(self):
        assert "markov" in MarkovSlowdown(RngStreams(0)).describe()


class TestTieredSlowdown:
    def test_round_robin_assignment(self):
        model = TieredSlowdown((1.0, 2.0, 4.0))
        assert model.factor(0, 0) == 1.0
        assert model.factor(1, 99) == 2.0
        assert model.factor(2, 0) == 4.0
        assert model.factor(3, 0) == 1.0  # wraps

    def test_explicit_assignment(self):
        model = TieredSlowdown((1.0, 8.0), tier_of_worker=(1, 0, 0, 1))
        assert model.factor(0, 0) == 8.0
        assert model.factor(1, 0) == 1.0
        assert model.factor(3, 7) == 8.0

    def test_iteration_invariant(self):
        model = TieredSlowdown((1.0, 3.0))
        assert model.factor(1, 0) == model.factor(1, 10_000)

    def test_validation(self):
        with pytest.raises(ValueError):
            TieredSlowdown(())
        with pytest.raises(ValueError):
            TieredSlowdown((0.5,))
        with pytest.raises(ValueError):
            TieredSlowdown((1.0, 2.0), tier_of_worker=(5,))

    def test_explicit_assignment_must_cover_queried_workers(self):
        """A pinned assignment must not silently wrap for extra
        workers — that would run a different heterogeneity profile
        than the user specified."""
        model = TieredSlowdown((1.0, 8.0), tier_of_worker=(1, 0))
        with pytest.raises(ValueError):
            model.factor(2, 0)


class TestDiurnalSlowdown:
    def test_oscillates_between_one_and_peak(self):
        model = DiurnalSlowdown(period=16, peak=3.0)
        values = [model.factor(0, k) for k in range(64)]
        assert min(values) >= 1.0
        assert max(values) <= 3.0
        assert max(values) > 2.5  # actually reaches near the peak

    def test_periodic(self):
        model = DiurnalSlowdown(period=8, peak=2.0)
        for k in range(8):
            assert model.factor(0, k) == pytest.approx(model.factor(0, k + 8))

    def test_workers_phase_shifted(self):
        model = DiurnalSlowdown(period=16, peak=4.0)
        a = [model.factor(0, k) for k in range(16)]
        b = [model.factor(1, k) for k in range(16)]
        assert a != b

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalSlowdown(period=0)
        with pytest.raises(ValueError):
            DiurnalSlowdown(peak=0.5)


class TestTraceSlowdown:
    def test_replays_table_with_default(self):
        model = TraceSlowdown({(0, 3): 6.0, (2, 1): 4.0})
        assert model.factor(0, 3) == 6.0
        assert model.factor(2, 1) == 4.0
        assert model.factor(1, 1) == 1.0

    def test_round_trip_through_json_file(self, tmp_path):
        original = TraceSlowdown(
            {(0, 3): 6.0, (1, 7): 2.5, (3, 0): 1.0 + 2**-40},
            source="unit-test",
        )
        path = original.save(tmp_path / "trace.json")
        loaded = TraceSlowdown.load(path)
        assert loaded.factors == original.factors
        assert loaded.default == original.default
        assert loaded.source == original.source

    def test_rejects_foreign_payload(self):
        with pytest.raises(ValueError):
            TraceSlowdown.from_dict({"format": "something-else"})

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceSlowdown({}, default=0.5)
        with pytest.raises(ValueError):
            TraceSlowdown({(0, 0): 0.2})


class TestRecordingSlowdown:
    def test_records_exactly_what_was_served(self):
        inner = TieredSlowdown((1.0, 2.0))
        recorder = RecordingSlowdown(inner)
        assert recorder.factor(1, 5) == 2.0
        assert recorder.recorded == {(1, 5): 2.0}

    def test_record_replay_is_bit_exact(self, tmp_path):
        inner = MarkovSlowdown(RngStreams(7), factor=6.0, p_enter=0.2)
        recorder = RecordingSlowdown(inner)
        grid = [(w, k) for w in range(4) for k in range(32)]
        served = {key: recorder.factor(*key) for key in grid}
        path = recorder.save(tmp_path / "markov.json")
        replay = TraceSlowdown.load(path)
        assert {key: replay.factor(*key) for key in grid} == served

    def test_record_run_factors_materializes_grid(self):
        trace = record_run_factors(TieredSlowdown((1.0, 3.0)), 2, 4)
        assert trace.factor(1, 2) == 3.0
        assert trace.factor(0, 0) == 1.0

    def test_trace_json_is_sparse(self, tmp_path):
        """Only non-default entries are stored."""
        trace = record_run_factors(TieredSlowdown((1.0, 3.0)), 2, 4)
        payload = trace.to_dict()
        assert "0" not in payload["factors"]  # worker 0 is all-default
        assert set(payload["factors"]["1"]) == {"0", "1", "2", "3"}
        text = json.dumps(payload)
        assert "3.0" in text
