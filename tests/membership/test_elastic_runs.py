"""End-to-end elastic runs: the membership plane across the stack."""

import math

import numpy as np
import pytest

from repro.core.config import HopConfig, backup_config, staleness_config
from repro.graphs import bipartite_ring, ring_based
from repro.harness import ExperimentSpec, run_spec, svm_workload
from repro.scenarios import ScenarioSpec

WORKLOAD = svm_workload("smoke")


def churn_spec(protocol="hop", params=None, topology=None, **kwargs):
    return ExperimentSpec(
        name="elastic-test",
        workload=WORKLOAD,
        topology=topology
        if topology is not None
        else (bipartite_ring(6) if protocol == "adpsgd" else ring_based(6)),
        protocol=protocol,
        scenario=ScenarioSpec("churn", dict(params or {"leaves": {5: 3}})),
        max_iter=kwargs.pop("max_iter", 12),
        seed=kwargs.pop("seed", 1),
        **kwargs,
    )


class TestHopChurn:
    def test_permanent_leave_rewires_and_finishes(self):
        run = run_spec(churn_spec())
        assert run.iterations_completed[:5] == [12] * 5
        assert run.iterations_completed[5] == 3
        kinds = [e["kind"] for e in run.membership_events]
        assert kinds == ["leave", "rewire"]
        rewire = run.membership_events[1]
        assert rewire["spectral_gap"] > 0
        assert rewire["n_active"] == 5
        assert math.isfinite(run.final_loss)

    def test_leave_rejoin_cycle_resyncs(self):
        run = run_spec(
            churn_spec(params={"cycles": {4: [2, 5]}}, max_iter=14)
        )
        assert all(c == 14 for c in run.iterations_completed)
        kinds = [e["kind"] for e in run.membership_events]
        assert kinds == ["leave", "rewire", "join", "rewire"]
        # The rejoiner skipped the iterations it was dark for.
        assert run.iterations_skipped[4] > 0

    def test_late_join(self):
        run = run_spec(churn_spec(params={"joins": {2: 4}}, max_iter=14))
        assert all(c == 14 for c in run.iterations_completed)
        kinds = [e["kind"] for e in run.membership_events]
        assert kinds == ["join", "rewire"]
        assert run.iterations_skipped[2] > 0

    @pytest.mark.parametrize(
        "protocol", ["hop", "adpsgd", "partial-allreduce"]
    )
    def test_late_join_past_horizon_stays_absent(self, protocol):
        # joins={2: 50} over 10 iterations scripts worker 2 outside
        # the cluster for the whole run: it must stay absent (not
        # silently become a founding member) and nobody may hang.
        run = run_spec(
            churn_spec(
                protocol=protocol, params={"joins": {2: 50}}, max_iter=10
            )
        )
        assert run.iterations_completed[2] == 0
        others = [
            completed
            for wid, completed in enumerate(run.iterations_completed)
            if wid != 2
        ]
        assert all(c == 10 for c in others)
        assert run.membership_events == []

    def test_in_flight_messages_to_departed_count_dropped(self):
        # A leave mid-run: updates already launched toward the leaver
        # are dropped at delivery, not enqueued into a dead queue.
        run = run_spec(churn_spec(params={"leaves": {5: 6}}))
        assert run.messages_dropped >= 0  # counting plumbed through
        clean = run_spec(
            ExperimentSpec(
                name="static",
                workload=WORKLOAD,
                topology=ring_based(6),
                protocol="hop",
                max_iter=12,
                seed=1,
            )
        )
        assert clean.messages_dropped == 0
        assert clean.membership_events == []

    @pytest.mark.parametrize(
        "config",
        [backup_config(n_backup=1, max_ig=3), staleness_config(staleness=2)],
        ids=["backup", "staleness"],
    )
    def test_churn_under_non_standard_modes(self, config):
        run = run_spec(
            churn_spec(params={"leaves": {5: 3}}, config=config)
        )
        assert run.iterations_completed[:5] == [12] * 5
        assert math.isfinite(run.final_loss)

    def test_bounded_queue_capacity_rebounds(self):
        from repro.core.config import HopConfig

        config = HopConfig(bound_update_queues=True, max_ig=3)
        run = run_spec(churn_spec(params={"leaves": {5: 2}}, config=config))
        assert run.iterations_completed[:5] == [12] * 5

    def test_membership_leave_keeps_gap_tracking_sane(self):
        run = run_spec(churn_spec(params={"leaves": {5: 2}}))
        # The departed worker must not pollute gaps: observed max gap
        # stays bounded by the run length, not the sentinel.
        assert run.gap.max_observed() < 12

    def test_determinism_bitwise(self):
        first = run_spec(churn_spec(params={"cycles": {4: [2, 5]}}))
        second = run_spec(churn_spec(params={"cycles": {4: [2, 5]}}))
        assert first.final_params.tobytes() == second.final_params.tobytes()
        assert first.wall_time == second.wall_time
        assert first.membership_events == second.membership_events


class TestTokenFabricRepair:
    """The regimes where token repair actually bites: tight max_ig,
    stragglers, and rejoin cycles that retire repair edges."""

    @pytest.mark.parametrize(
        "config",
        [HopConfig(max_ig=1), backup_config(n_backup=1, max_ig=2)],
        ids=["max_ig=1", "backup"],
    )
    def test_cycles_with_straggler_never_deadlock(self, config):
        # Rejoins retire the repair bridges their departures created;
        # consumers blocked on a retired edge's token queue must be
        # released, and re-established edges must reset to the
        # invariant count (not inherit a stale frozen one).
        run = run_spec(
            ExperimentSpec(
                name="token-repair",
                workload=WORKLOAD,
                topology=ring_based(8),
                protocol="hop",
                config=config,
                scenario=ScenarioSpec(
                    "churn",
                    {
                        "cycles": {6: [2, 4], 7: [3, 6]},
                        "slowdown": {
                            "family": "straggler",
                            "params": {"workers": {2: 4.0}},
                        },
                    },
                ),
                max_iter=20,
                seed=2,
            )
        )
        assert all(c == 20 for c in run.iterations_completed)
        assert math.isfinite(run.final_loss)

    def test_egress_nic_path_routes_by_membership(self):
        # Shared machine uplinks fall back to Network.send; deliveries
        # to departed workers must still be dropped and counted there.
        run = run_spec(
            ExperimentSpec(
                name="nic-churn",
                workload=WORKLOAD,
                topology=ring_based(6),
                protocol="hop",
                scenario=ScenarioSpec("churn", {"leaves": {5: 4}}),
                machines=(0, 0, 1, 1, 2, 2),
                max_iter=12,
                seed=1,
            )
        )
        assert run.iterations_completed[:5] == [12] * 5
        assert run.messages_dropped > 0


class TestElasticGossipProtocols:
    @pytest.mark.parametrize("protocol", ["adpsgd", "partial-allreduce"])
    def test_permanent_leave(self, protocol):
        run = run_spec(churn_spec(protocol=protocol))
        assert run.iterations_completed[:5] == [12] * 5
        assert run.iterations_completed[5] == 3
        assert [e["kind"] for e in run.membership_events] == [
            "leave",
            "rewire",
        ]
        assert math.isfinite(run.final_loss)

    @pytest.mark.parametrize("protocol", ["adpsgd", "partial-allreduce"])
    def test_cycle_resyncs_from_sponsor(self, protocol):
        run = run_spec(
            churn_spec(
                protocol=protocol,
                params={"cycles": {4: [2, 6]}},
                max_iter=14,
            )
        )
        assert all(c == 14 for c in run.iterations_completed)
        kinds = [e["kind"] for e in run.membership_events]
        assert "join" in kinds and "leave" in kinds

    def test_partial_allreduce_rejects_static_groups_with_churn(self):
        with pytest.raises(ValueError, match="static"):
            run_spec(churn_spec(protocol="partial-allreduce", static_groups=True))


#: The protocols converted in the full-grid elasticity pass, with the
#: topology family each requires.
NEWLY_ELASTIC = [
    ("allreduce", ring_based),
    ("notify_ack", ring_based),
    ("ps-bsp", ring_based),
    ("ps-async", ring_based),
    ("ps-ssp", ring_based),
    ("momentum-tracking", bipartite_ring),
]


class TestNewlyElasticProtocols:
    """Full-grid conversions: ring rebuild (allreduce), shard failover
    (ps-*), ACK-fabric repair (notify_ack) and gossip-inherited
    lifecycle (momentum-tracking) all survive churn at n=6."""

    @staticmethod
    def _spec(protocol, topo, **kwargs):
        extras = {"ps_staleness": 2} if protocol == "ps-ssp" else {}
        return churn_spec(
            protocol=protocol, topology=topo(6), **extras, **kwargs
        )

    @pytest.mark.parametrize(
        "protocol,topo", NEWLY_ELASTIC, ids=[p for p, _ in NEWLY_ELASTIC]
    )
    def test_permanent_leave(self, protocol, topo):
        run = run_spec(self._spec(protocol, topo))
        assert run.iterations_completed[:5] == [12] * 5
        assert run.iterations_completed[5] == 3
        kinds = [e["kind"] for e in run.membership_events]
        assert "leave" in kinds and "rewire" in kinds
        if protocol.startswith("ps-"):
            assert "reshard" in kinds, "departing owner must re-shard"
        assert math.isfinite(run.final_loss)
        assert np.isfinite(run.final_params).all()

    @pytest.mark.parametrize(
        "protocol,topo", NEWLY_ELASTIC, ids=[p for p, _ in NEWLY_ELASTIC]
    )
    def test_leave_rejoin_cycle(self, protocol, topo):
        run = run_spec(
            self._spec(
                protocol, topo, params={"cycles": {4: [2, 6]}}, max_iter=14
            )
        )
        others = [
            completed
            for wid, completed in enumerate(run.iterations_completed)
            if wid != 4
        ]
        assert all(c == 14 for c in others), run.iterations_completed
        kinds = [e["kind"] for e in run.membership_events]
        assert "leave" in kinds and "join" in kinds
        assert math.isfinite(run.final_loss)

    @pytest.mark.parametrize(
        "protocol,topo", NEWLY_ELASTIC, ids=[p for p, _ in NEWLY_ELASTIC]
    )
    def test_churn_determinism_bitwise(self, protocol, topo):
        make = lambda: self._spec(  # noqa: E731
            protocol, topo, params={"cycles": {4: [2, 6]}}, max_iter=14
        )
        first, second = run_spec(make()), run_spec(make())
        assert first.final_params.tobytes() == second.final_params.tobytes()
        assert first.wall_time == second.wall_time
        assert first.membership_events == second.membership_events


class TestRewirePolicySelection:
    def test_metropolis_policy_through_scenario(self):
        run = run_spec(
            churn_spec(params={"leaves": {5: 3}, "policy": "metropolis"})
        )
        assert run.iterations_completed[:5] == [12] * 5
        assert run.membership_events[1]["spectral_gap"] > 0

    def test_unknown_policy_fails_loudly(self):
        with pytest.raises((SystemExit, ValueError)):
            run_spec(churn_spec(params={"leaves": {5: 3}, "policy": "nope"}))


class TestCrashRestartUnification:
    """Restart is leave+join with state carryover: the shared lifecycle
    helper serves both, and the pre-membership behavior is unchanged."""

    def test_crash_restart_still_resyncs(self):
        run = run_spec(
            ExperimentSpec(
                name="restart",
                workload=WORKLOAD,
                topology=ring_based(6),
                protocol="hop",
                scenario=ScenarioSpec(
                    "crash-restart",
                    {"worker": 2, "at": 3, "downtime_iters": 4.0},
                ),
                max_iter=12,
                seed=1,
            )
        )
        kinds = [e["kind"] for e in run.fault_events]
        assert kinds == ["crashed", "resynced", "restarted"]
        assert all(c == 12 for c in run.iterations_completed)

    def test_churn_and_crash_compose(self):
        # A crash-restart riding on a churn plan: both lifecycles share
        # the re-sync helper and neither deadlocks the other.
        spec = churn_spec(params={"leaves": {5: 6}})
        scenario = ScenarioSpec(
            "churn",
            {
                "leaves": {5: 6},
                "slowdown": {"family": "straggler", "params": {"workers": {1: 3.0}}},
            },
        )
        run = run_spec(spec.with_(scenario=scenario))
        assert run.iterations_completed[:5] == [12] * 5
        assert math.isfinite(run.final_loss)
