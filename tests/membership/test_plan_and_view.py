"""Churn plans and membership views."""

import numpy as np
import pytest

from repro.graphs import ring, ring_based
from repro.membership import (
    ChurnEvent,
    ChurnPlan,
    MembershipView,
    get_rewire_policy,
    poisson_plan,
)


class TestChurnEvent:
    def test_needs_leave_or_join(self):
        with pytest.raises(ValueError, match="leave_at"):
            ChurnEvent(worker=0)

    def test_join_must_follow_leave(self):
        with pytest.raises(ValueError, match="after"):
            ChurnEvent(worker=0, leave_at=5, join_at=5)

    def test_kinds(self):
        assert ChurnEvent(worker=0, leave_at=3).permanent
        assert ChurnEvent(worker=0, join_at=3).late_join
        cycle = ChurnEvent(worker=0, leave_at=3, join_at=6)
        assert not cycle.permanent and not cycle.late_join


class TestChurnPlan:
    def test_rejects_duplicate_workers(self):
        with pytest.raises(ValueError, match="multiple"):
            ChurnPlan(
                events=(
                    ChurnEvent(worker=1, leave_at=2),
                    ChurnEvent(worker=1, join_at=4),
                )
            )

    def test_validate_quorum(self):
        plan = ChurnPlan(
            events=tuple(
                ChurnEvent(worker=w, leave_at=2) for w in range(3)
            )
        )
        with pytest.raises(ValueError, match="at least 2"):
            plan.validate_for(4)
        plan.validate_for(5)  # 2 survivors: fine

    def test_clipped_drops_and_degrades(self):
        plan = ChurnPlan(
            events=(
                ChurnEvent(worker=0, leave_at=50),  # past horizon: dropped
                ChurnEvent(worker=1, leave_at=2, join_at=50),  # -> permanent
                ChurnEvent(worker=2, join_at=50),  # -> absent all run
                ChurnEvent(worker=3, leave_at=2, join_at=4),  # kept
            )
        )
        clipped = plan.clipped(10)
        assert {e.worker for e in clipped.events} == {1, 2, 3}
        assert clipped.event_for(1).permanent
        # A scripted late join past the horizon keeps the worker
        # *absent* (clamped trigger), never a silent founding member.
        assert clipped.event_for(2).late_join
        assert clipped.event_for(2).join_at == 10
        assert clipped.event_for(3).join_at == 4

    def test_active_at_round_semantics(self):
        plan = ChurnPlan(
            events=(
                ChurnEvent(worker=0, leave_at=3),
                ChurnEvent(worker=1, join_at=2),
                ChurnEvent(worker=2, leave_at=1, join_at=4),
            )
        )
        assert plan.active_at(0, 2) and not plan.active_at(0, 3)
        assert not plan.active_at(1, 1) and plan.active_at(1, 2)
        assert plan.active_at(2, 0)
        assert not plan.active_at(2, 2)
        assert plan.active_at(2, 4)
        assert plan.active_at(3, 99)  # unscripted workers never churn

    def test_json_round_trip(self):
        plan = ChurnPlan(
            events=(
                ChurnEvent(worker=0, leave_at=3),
                ChurnEvent(worker=2, leave_at=1, join_at=4, resync=False),
            ),
            policy="metropolis",
        )
        assert ChurnPlan.from_dict(plan.to_dict()) == plan


class TestPoissonPlan:
    def test_deterministic_given_stream(self):
        draws = [
            poisson_plan(
                8, rate=0.3, horizon=12, rng=np.random.default_rng(7)
            )
            for _ in range(2)
        ]
        assert draws[0] == draws[1]

    def test_quorum_never_leaves(self):
        plan = poisson_plan(
            8,
            rate=0.99,
            horizon=12,
            rng=np.random.default_rng(0),
            min_active=5,
        )
        assert all(event.worker >= 5 for event in plan.events)
        plan.validate_for(8)

    def test_zero_rate_is_empty(self):
        plan = poisson_plan(8, rate=0.0, horizon=12, rng=np.random.default_rng(0))
        assert plan.empty

    def test_rejoin_after(self):
        plan = poisson_plan(
            6,
            rate=0.9,
            horizon=20,
            rng=np.random.default_rng(1),
            rejoin_after=3,
        )
        for event in plan.events:
            if event.join_at is not None:
                assert event.join_at == event.leave_at + 3


class TestMembershipView:
    def test_leave_reports_rewire(self):
        view = MembershipView(ring_based(6))
        policy = get_rewire_policy("uniform")
        after, report = view.leave(3, policy)
        assert after.epoch == 1
        assert 3 not in after.active
        assert report.kind == "leave" and report.worker == 3
        assert report.edges_removed
        assert report.spectral_gap > 0
        assert report.rewire_cost == 2 * (
            len(report.edges_added) + len(report.edges_removed)
        )

    def test_join_restores_founding_edges(self):
        base = ring_based(6)
        view = MembershipView(base)
        policy = get_rewire_policy("uniform")
        view, _ = view.leave(3, policy)
        view, report = view.join(3, policy)
        assert report.kind == "join"
        assert view.topology.edges == base.edges

    def test_join_falls_back_when_neighbors_departed(self):
        # Remove a node's entire founding neighborhood, then re-add it.
        base = ring(6)
        policy = get_rewire_policy("uniform")
        view = MembershipView.founding(base, absent=(0, 1, 5))
        view, report = view.join(0, policy)
        assert 0 in view.active
        assert view.topology.is_strongly_connected()

    def test_founding_quorum(self):
        view = MembershipView.founding(ring(6), absent=(1, 4))
        assert view.active == frozenset({0, 2, 3, 5})
        assert view.topology.is_strongly_connected()
        assert view.base.active == frozenset(range(6))

    def test_quorum_guard(self):
        view = MembershipView.founding(ring(4), absent=(1, 2))
        policy = get_rewire_policy("uniform")
        with pytest.raises(Exception, match="quorum|2 active"):
            view.leave(0, policy)

    def test_spectral_gap_ignores_inactive_identity_rows(self):
        view = MembershipView.founding(ring(6), absent=(2,))
        # The full matrix has an eigenvalue-1 identity row for node 2;
        # the active-submatrix gap must still be positive.
        assert view.spectral_gap() > 0
