"""Property-based tests for the full-grid elasticity invariants.

The structural contracts behind the newly-elastic protocols, checked
over random membership histories (hypothesis, mirroring
``test_rewire_properties.py``):

* :func:`~repro.baselines.allreduce.rebuild_ring` yields a single
  directed cycle over *exactly* the live set after any leave/join
  sequence, identically for every member (order-independent),
* :class:`~repro.baselines.ps.ParamShards` failover moves ownership
  only — shard boundaries never move, every shard stays owned by a
  live worker, and reassembling the slices reproduces the flat
  parameter vector bit-for-bit after arbitrarily many re-shardings,
* a :class:`~repro.membership.MembershipView` leave-then-rejoin
  round-trips the edge support (the repairs a departure causes are
  retired when the worker returns).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.allreduce import chunk_schedule, rebuild_ring
from repro.baselines.ps import ParamShards
from repro.graphs import ring_based
from repro.membership import MembershipView, get_rewire_policy


@st.composite
def membership_histories(draw, min_workers=4, max_workers=12, max_ops=8):
    """``(n, ops)``: a worker count and a valid leave/join sequence
    (never dropping below the 2-worker quorum, never double-joining)."""
    n = draw(st.integers(min_workers, max_workers))
    live = set(range(n))
    ops = []
    for _ in range(draw(st.integers(1, max_ops))):
        choices = []
        if len(live) > 2:
            choices.append("leave")
        if len(live) < n:
            choices.append("join")
        op = draw(st.sampled_from(choices))
        pool = sorted(live if op == "leave" else set(range(n)) - live)
        worker = draw(st.sampled_from(pool))
        (live.discard if op == "leave" else live.add)(worker)
        ops.append((op, worker))
    return n, ops


def _replay(n, ops):
    live = set(range(n))
    for op, worker in ops:
        (live.discard if op == "leave" else live.add)(worker)
        yield live


@settings(max_examples=80, deadline=None)
@given(data=membership_histories())
def test_rebuild_ring_is_a_cycle_over_exactly_the_live_set(data):
    n, ops = data
    for live in _replay(n, ops):
        edges = rebuild_ring(live)
        assert len(edges) == len(live)
        assert {src for src, _ in edges} == live
        assert {dst for _, dst in edges} == live
        # One cycle, not several: following successor pointers from
        # any member visits every member before returning.
        successor = dict(edges)
        start = min(live)
        seen, node = set(), start
        while node not in seen:
            seen.add(node)
            node = successor[node]
        assert seen == live and node == start


@settings(max_examples=60, deadline=None)
@given(data=membership_histories())
def test_rebuild_ring_is_member_order_independent(data):
    n, ops = data
    for live in _replay(n, ops):
        canonical = rebuild_ring(sorted(live))
        assert rebuild_ring(live) == canonical
        assert rebuild_ring(reversed(sorted(live))) == canonical


@settings(max_examples=60, deadline=None)
@given(
    data=membership_histories(),
    update_size=st.floats(1.0, 1e6, allow_nan=False),
)
def test_chunk_schedule_covers_the_full_update(data, update_size):
    n, ops = data
    for live in _replay(n, ops):
        steps, chunk = chunk_schedule(live, update_size)
        g = len(live)
        assert steps == 2 * (g - 1)
        # Scatter-reduce + all-gather move the whole vector per link.
        assert np.isclose(chunk * g, update_size)


@settings(max_examples=80, deadline=None)
@given(
    data=membership_histories(),
    dim=st.integers(0, 64),
)
def test_param_shards_failover_conserves_the_flat_vector(data, dim):
    n, ops = data
    shards = ParamShards(dim, range(n))
    params = np.arange(dim, dtype=np.float64) * 1.5 + 0.25
    bounds = shards.bounds
    slices = shards.split(params)
    for live in _replay(n, ops):
        moved = shards.reassign(live)
        # Boundaries are founding-fixed: only ownership moves.
        assert shards.bounds == bounds
        assert set(shards.owners()) <= live
        for shard, old, new in moved:
            assert old != new and new in live
        # Reassembly is bit-exact no matter how many failovers ran.
        assert shards.flat(slices).tobytes() == params.tobytes()


@settings(max_examples=60, deadline=None)
@given(
    half=st.integers(2, 8),
    leaver_index=st.integers(0, 15),
)
def test_view_leave_then_rejoin_round_trips_edge_support(
    half, leaver_index
):
    topology = ring_based(2 * half)
    worker = leaver_index % topology.n
    policy = get_rewire_policy("uniform")
    view = MembershipView.founding(topology)
    departed, _ = view.leave(worker, policy)
    restored, report = departed.join(worker, policy)
    assert restored.active == view.active
    assert restored.topology.edges == view.topology.edges
    assert np.allclose(restored.topology.W, view.topology.W)
    assert report.edges_added
