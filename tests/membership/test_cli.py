"""CLI surface of the membership plane: --json listings, churn train."""

import json

import pytest

from repro.cli import main


class TestProtocolsJson:
    def test_json_is_machine_readable(self, capsys):
        assert main(["protocols", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_name = {row["name"]: row for row in rows}
        for row in rows:
            assert set(row) == {
                "name",
                "aliases",
                "summary",
                "paper",
                "elastic",
            }
        # The full-grid elasticity contract: every built-in survives
        # membership churn, so every row advertises elastic.
        assert by_name["hop"]["elastic"] is True
        assert all(row["elastic"] is True for row in rows), by_name

    def test_human_output_marks_elastic(self, capsys):
        assert main(["protocols"]) == 0
        out = capsys.readouterr().out
        assert "elastic: survives membership churn" in out


class TestScenariosJson:
    def test_json_is_machine_readable(self, capsys):
        assert main(["scenarios", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_name = {row["name"]: row for row in rows}
        for row in rows:
            assert set(row) == {
                "name",
                "aliases",
                "summary",
                "paper",
                "universal",
            }
        assert by_name["churn"]["universal"] is False
        assert by_name["churn-poisson"]["universal"] is False
        assert by_name["random"]["universal"] is True

    def test_churn_families_listed(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "churn" in out and "churn-poisson" in out


class TestTrainChurn:
    def test_train_hop_under_churn(self, capsys):
        code = main(
            [
                "train",
                "--protocol",
                "hop",
                "--workers",
                "6",
                "--iterations",
                "10",
                "--scenario",
                "churn",
                "--scenario-param",
                'leaves={"5": 3}',
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "membership:" in out
        assert "leave w5@3" in out

    def test_train_poisson_churn_with_policy(self, capsys):
        code = main(
            [
                "train",
                "--protocol",
                "hop",
                "--workers",
                "8",
                "--iterations",
                "12",
                "--scenario",
                "churn-poisson",
                "--scenario-param",
                "rate=0.3",
                "--scenario-param",
                "horizon=10",
                "--scenario-param",
                "policy=metropolis",
            ]
        )
        assert code == 0
        assert "wall_time" in capsys.readouterr().out

    def test_non_elastic_protocol_rejects_churn(self, capsys):
        # Every built-in is elastic now, so the CLI-facing half of the
        # registry gate is exercised through a throwaway registration.
        from repro.protocols.registry import _REGISTRY, register_protocol

        name = "test-static-cli"
        register_protocol(
            name,
            lambda spec: pytest.fail("builder must not run: gate fires first"),
            summary="non-elastic dummy for the CLI churn gate",
        )
        try:
            with pytest.raises(SystemExit, match="not elastic"):
                main(
                    [
                        "train",
                        "--protocol",
                        name,
                        "--workers",
                        "6",
                        "--iterations",
                        "6",
                        "--scenario",
                        "churn",
                    ]
                )
        finally:
            _REGISTRY.pop(name, None)

    def test_run_summary_includes_membership_events(self, tmp_path, capsys):
        out_path = tmp_path / "run.json"
        code = main(
            [
                "train",
                "--protocol",
                "hop",
                "--workers",
                "6",
                "--iterations",
                "10",
                "--scenario",
                "churn",
                "--scenario-param",
                'leaves={"5": 3}',
                "--out",
                str(out_path),
            ]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        kinds = [event["kind"] for event in payload["membership_events"]]
        assert kinds == ["leave", "rewire"]
        rewire = payload["membership_events"][1]
        assert rewire["spectral_gap"] > 0
