"""Property-based tests for the rewiring invariants (hypothesis).

The membership plane's structural contract, checked over random graph
families and removal orders:

* repaired topologies stay strongly connected among the members,
* every node keeps its self-loop; departed nodes keep *only* it,
* weights are column stochastic (uniform policy) / doubly stochastic
  (Metropolis-Hastings) after every repair,
* ``without_node(i).with_node(i)`` round-trips the edge support, and
* epochs increment monotonically along any derivation chain.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import chain, circulant, hypercube, ring, ring_based, torus
from repro.graphs.weights import is_column_stochastic, is_doubly_stochastic
from repro.membership import get_rewire_policy

#: (builder, valid sizes) — symmetric-support families so both rewire
#: policies apply.
FAMILIES = (
    ("ring", lambda n: ring(n), st.integers(4, 16)),
    ("ring_based", lambda n: ring_based(2 * n), st.integers(2, 8)),
    ("chain", lambda n: chain(n), st.integers(4, 12)),
    ("circulant", lambda n: circulant(n, [1, 2]), st.integers(5, 14)),
    ("torus", lambda n: torus(n, 3), st.integers(2, 4)),
    ("hypercube", lambda n: hypercube(n), st.integers(2, 4)),
)


@st.composite
def topology_and_removals(draw, max_removals=3):
    _, builder, sizes = draw(st.sampled_from(FAMILIES))
    topo = builder(draw(sizes))
    n_removals = draw(
        st.integers(1, min(max_removals, len(topo.active) - 2))
    )
    nodes = draw(
        st.lists(
            st.integers(0, topo.n - 1),
            min_size=n_removals,
            max_size=n_removals,
            unique=True,
        )
    )
    return topo, nodes


@settings(max_examples=60, deadline=None)
@given(data=topology_and_removals())
def test_removals_preserve_strong_connectivity_and_self_loops(data):
    topo, nodes = data
    for node in nodes:
        topo = topo.without_node(node)
        assert topo.is_strongly_connected()
        for i in range(topo.n):
            assert (i, i) in topo.edges
        # Departed nodes keep only their self-loop.
        for gone in set(range(topo.n)) - topo.active:
            incident = [
                e for e in topo.edges if gone in e and e != (gone, gone)
            ]
            assert not incident


@settings(max_examples=40, deadline=None)
@given(data=topology_and_removals())
def test_uniform_policy_column_stochastic_after_repair(data):
    topo, nodes = data
    policy = get_rewire_policy("uniform")
    for node in nodes:
        topo = policy.reweight(topo.without_node(node))
        topo.validate()
        assert is_column_stochastic(topo.W)


@settings(max_examples=40, deadline=None)
@given(data=topology_and_removals())
def test_metropolis_policy_doubly_stochastic_after_repair(data):
    topo, nodes = data
    policy = get_rewire_policy("metropolis")
    for node in nodes:
        topo = policy.reweight(topo.without_node(node))
        topo.validate(require_doubly_stochastic=True)
        assert is_doubly_stochastic(topo.W)


@settings(max_examples=60, deadline=None)
@given(data=topology_and_removals(max_removals=1))
def test_remove_then_readd_round_trips_edge_support(data):
    topo, nodes = data
    node = nodes[0]
    ins = topo.in_neighbors(node, include_self=False)
    outs = topo.out_neighbors(node, include_self=False)
    restored = topo.without_node(node).with_node(
        node, in_neighbors=ins, out_neighbors=outs
    )
    assert restored.edges == topo.edges
    assert restored.active == topo.active
    # Uniform weights re-derive identically on the identical support.
    assert np.allclose(restored.W, topo.W)


@settings(max_examples=30, deadline=None)
@given(data=topology_and_removals())
def test_epochs_increment_along_derivations(data):
    topo, nodes = data
    epoch = topo.epoch
    for node in nodes:
        topo = topo.without_node(node)
        assert topo.epoch == epoch + 1
        epoch = topo.epoch
    node = nodes[-1]
    rejoined = topo.with_node(
        node,
        in_neighbors=[min(topo.active)],
        out_neighbors=[min(topo.active)],
    )
    assert rejoined.epoch == epoch + 1
    assert node in rejoined.active
