"""The rewire-policy registry and the built-in policies."""

import numpy as np
import pytest

from repro.graphs import chain, ring, ring_based
from repro.graphs.weights import is_column_stochastic, is_doubly_stochastic
from repro.membership import (
    RewirePolicy,
    get_rewire_policy,
    register_rewire_policy,
    registered_rewire_policies,
    rewire_policy_table,
)


class TestRegistry:
    def test_builtins_registered(self):
        names = registered_rewire_policies()
        assert "uniform" in names
        assert "metropolis" in names

    def test_aliases_resolve(self):
        assert type(get_rewire_policy("mh")) is type(
            get_rewire_policy("metropolis")
        )
        assert type(get_rewire_policy("eq1")) is type(
            get_rewire_policy("uniform")
        )

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match="uniform"):
            get_rewire_policy("nope")

    def test_table_rows(self):
        rows = rewire_policy_table()
        names = [row["name"] for row in rows]
        assert "uniform" in names and "metropolis" in names
        for row in rows:
            assert row["summary"]


class TestBuiltinPolicies:
    def test_uniform_column_stochastic_after_leave(self):
        topo = chain(5).without_node(2)
        repaired = get_rewire_policy("uniform").reweight(topo)
        repaired.validate()
        assert is_column_stochastic(repaired.W)

    def test_metropolis_doubly_stochastic_after_leave(self):
        topo = ring_based(6).without_node(3)
        repaired = get_rewire_policy("metropolis").reweight(topo)
        repaired.validate(require_doubly_stochastic=True)
        assert is_doubly_stochastic(repaired.W)

    def test_inactive_nodes_keep_identity_weight(self):
        topo = ring(5).without_node(1)
        for policy in ("uniform", "metropolis"):
            repaired = get_rewire_policy(policy).reweight(topo)
            assert repaired.W[1, 1] == 1.0
            assert np.all(repaired.W[1, [0, 2, 3, 4]] == 0.0)
            assert np.all(repaired.W[[0, 2, 3, 4], 1] == 0.0)


class TestExtensionPoint:
    """The docs/ARCHITECTURE.md add-a-rewire-policy walkthrough."""

    def test_custom_policy_via_registry(self):
        class LazyUniform(RewirePolicy):
            """Blend Eq. 1 with the identity (a lazy gossip walk)."""

            name = "lazy-uniform"

            def reweight(self, topology):
                from repro.graphs.weights import lazy_weights, uniform_weights

                return topology.with_weights(
                    lazy_weights(uniform_weights(topology), laziness=0.5)
                )

        register_rewire_policy(
            "lazy-uniform",
            lambda params: LazyUniform(),
            summary="half-lazy Eq. 1 walk",
        )
        try:
            policy = get_rewire_policy("lazy-uniform")
            repaired = policy.reweight(ring(6).without_node(0))
            repaired.validate()
            assert "lazy-uniform" in registered_rewire_policies()
            # The blend keeps half the mass on the self-loop.
            assert repaired.W[2, 2] >= 0.5
        finally:
            # Keep the global registry pristine for other tests.
            from repro.membership import policies

            policies._REGISTRY.pop("lazy-uniform", None)
