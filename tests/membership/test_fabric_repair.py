"""Unit tests for the queue/gap/network fabric repairs behind churn."""

import numpy as np

from repro.core.gap import GapTracker
from repro.core.queues import TokenQueue, UpdateQueue
from repro.core.update import Update
from repro.sim import Environment


class TestTokenQueueClose:
    def test_close_releases_pending_waiters(self):
        env = Environment()
        queue = TokenQueue(env, owner=1, consumer=0, initial=0)
        request = queue.acquire(2)
        assert not request.triggered
        queue.close()
        assert request.triggered

    def test_closed_queue_grants_future_acquires(self):
        env = Environment()
        queue = TokenQueue(env, owner=1, consumer=0, initial=0)
        queue.close()
        assert queue.acquire(5).triggered

    def test_reopen_restores_gating(self):
        env = Environment()
        queue = TokenQueue(env, owner=1, consumer=0, initial=0)
        queue.close()
        queue.reopen(initial=1)
        granted = queue.acquire(1)
        assert granted.triggered
        blocked = queue.acquire(1)
        assert not blocked.triggered
        queue.put(1)
        assert blocked.triggered


class TestUpdateQueueResize:
    def test_resize_grows_and_shrinks(self):
        env = Environment()
        queue = UpdateQueue(env, owner=0, capacity=2)
        queue.resize(5)
        assert queue.capacity == 5
        queue.resize(1)
        assert queue.capacity == 1

    def test_resize_never_below_occupancy(self):
        env = Environment()
        queue = UpdateQueue(env, owner=0, capacity=4)
        for k in range(3):
            queue.enqueue(Update(np.zeros(2), 0, k))
        queue.resize(1)
        assert queue.capacity == 3  # entries already accepted stay

    def test_resize_none_unbounds(self):
        env = Environment()
        queue = UpdateQueue(env, owner=0, capacity=2)
        queue.resize(None)
        assert queue.capacity is None


class TestGapTrackerMembership:
    def test_deactivate_freezes_pairs(self):
        gap = GapTracker(3)
        gap.record(0, 4)
        gap.record(1, 1)
        frozen = gap.observed_gap(0, 1)
        gap.deactivate(1)
        gap.record(0, 9)
        # The (live, departed) pair stays at its both-live maximum.
        assert gap.observed_gap(0, 1) == frozen
        assert gap.max_observed() < GapTracker.INACTIVE_SENTINEL / 2

    def test_activate_resumes_from_iteration(self):
        gap = GapTracker(3)
        gap.deactivate(2)
        gap.record(0, 5)
        gap.activate(2, 7)
        gap.record(2, 7)
        assert gap.observed_gap(2, 0) == 2.0


class TestNetworkMembershipRouting:
    class FakeMembership:
        def __init__(self, inactive=()):
            self.inactive = set(inactive)
            self.messages_dropped = 0

        def is_active(self, wid):
            return wid not in self.inactive

    def test_in_flight_message_to_departed_is_dropped(self):
        from repro.net.links import uniform_links
        from repro.net.network import Network

        env = Environment()
        network = Network(env, uniform_links())
        membership = self.FakeMembership()
        network.membership = membership
        delivered = []
        network.push(0, 1, 100.0, "payload", delivered.append)
        # The receiver departs while the message is in flight.
        membership.inactive.add(1)
        env.run()
        assert delivered == []
        assert membership.messages_dropped == 1
        assert network.messages_dropped == 1

    def test_live_destination_still_delivers(self):
        from repro.net.links import uniform_links
        from repro.net.network import Network

        env = Environment()
        network = Network(env, uniform_links())
        network.membership = self.FakeMembership()
        delivered = []
        network.push(0, 1, 100.0, "payload", delivered.append)
        env.run()
        assert delivered == ["payload"]
        assert network.messages_dropped == 0
