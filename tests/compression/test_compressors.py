"""Unit and property tests for the compression plane.

Pins the contracts the golden cells and the payload pricing rely on:
wire-byte honesty (``CompressedPayload.nbytes == wire_bytes()``),
deterministic top-k tie-breaking (lowest index wins, sorted), seeded
random-k replay, the error-feedback conservation laws (hypothesis),
and the int8 round-trip error bound.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import CompressionSpec
from repro.compression.base import Compressor
from repro.compression.registry import (
    build_compressor,
    compression_table,
    get_compressor,
    registered_compressors,
)
from repro.compression.schemes import (
    INDEX_DTYPE,
    Int8Compressor,
    RandomKCompressor,
    TopKCompressor,
)


def dense_vectors(min_dim=1, max_dim=64):
    return st.integers(min_value=min_dim, max_value=max_dim).flatmap(
        lambda dim: st.lists(
            st.floats(
                min_value=-1e6,
                max_value=1e6,
                allow_nan=False,
                allow_infinity=False,
                width=64,
            ),
            min_size=dim,
            max_size=dim,
        ).map(lambda xs: np.array(xs, dtype=np.float64))
    )


class TestRegistry:
    def test_builtin_schemes_registered(self):
        assert {"topk", "randomk", "int8"} <= set(registered_compressors())

    def test_aliases_resolve(self):
        assert get_compressor("top-k").name == "topk"

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(ValueError, match="registered compressors"):
            get_compressor("zstd")

    def test_none_builds_the_dense_path(self):
        assert build_compressor(None, 8, np.float64) is None
        spec = CompressionSpec("none")
        assert build_compressor(spec, 8, np.float64) is None

    def test_table_rows_carry_citations(self):
        rows = compression_table()
        assert {row["name"] for row in rows} == set(registered_compressors())
        assert all(row["summary"] and row["paper"] for row in rows)

    def test_bad_ratio_rejected(self):
        for ratio in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError, match="ratio"):
                TopKCompressor(16, ratio=ratio)


class TestWireBytes:
    """Pricing must come from the same arithmetic as the buffers."""

    @pytest.mark.parametrize("scheme", ["topk", "randomk", "int8"])
    def test_payload_nbytes_equals_wire_bytes(self, scheme):
        compressor = build_compressor(
            CompressionSpec(scheme, {} if scheme == "int8" else {"ratio": 0.3}),
            dim=37,
            dtype=np.float64,
            seed=(1, 2),
        )
        payload = compressor.encode(np.linspace(-1.0, 1.0, 37))
        assert payload.nbytes == compressor.wire_bytes()

    def test_sparse_wire_arithmetic(self):
        compressor = TopKCompressor(100, ratio=0.1)
        assert compressor.k == 10
        assert compressor.wire_bytes() == 10 * (INDEX_DTYPE.itemsize + 8)
        assert compressor.dense_bytes() == 800
        assert compressor.wire_ratio() == pytest.approx(0.15)

    def test_int8_wire_arithmetic(self):
        compressor = Int8Compressor(100)
        assert compressor.wire_bytes() == 100 + 8  # bytes + one scale
        assert compressor.wire_ratio() == pytest.approx(108 / 800)


class TestTopKDeterminism:
    def test_ties_broken_by_lowest_index(self):
        # Every coordinate has equal magnitude: the survivors must be
        # the lowest indices, sorted — never argpartition's internal
        # (implementation-defined) order.
        compressor = TopKCompressor(8, ratio=0.5)
        payload = compressor.encode(np.ones(8))
        indices, values = payload.arrays
        np.testing.assert_array_equal(indices, [0, 1, 2, 3])
        np.testing.assert_array_equal(values, np.ones(4))

    def test_mixed_ties_at_threshold(self):
        values = np.array([3.0, -1.0, 1.0, 5.0, -1.0, 1.0])
        compressor = TopKCompressor(6, ratio=0.5)  # k=3
        indices, _ = compressor.encode(values).arrays
        # |3| and |5| are above the threshold |1|; the first tie (index
        # 1) completes the selection.
        np.testing.assert_array_equal(indices, [0, 1, 3])

    def test_indices_always_sorted(self):
        rng = np.random.default_rng(7)
        compressor = TopKCompressor(64, ratio=0.25)
        for _ in range(16):
            indices, _ = compressor.encode(rng.normal(size=64)).arrays
            assert np.all(np.diff(indices) > 0)

    def test_randomk_replays_per_seed(self):
        a = RandomKCompressor(64, ratio=0.25, seed=(1, 3, 0))
        b = RandomKCompressor(64, ratio=0.25, seed=(1, 3, 0))
        c = RandomKCompressor(64, ratio=0.25, seed=(1, 4, 0))
        values = np.linspace(0.0, 1.0, 64)
        masks_a = [a.encode(values).arrays[0] for _ in range(4)]
        masks_b = [b.encode(values).arrays[0] for _ in range(4)]
        assert all(np.array_equal(x, y) for x, y in zip(masks_a, masks_b))
        masks_c = [c.encode(values).arrays[0] for _ in range(4)]
        assert any(
            not np.array_equal(x, y) for x, y in zip(masks_a, masks_c)
        )


class TestErrorFeedback:
    @settings(max_examples=50, deadline=None)
    @given(dense_vectors())
    def test_full_rank_topk_is_lossless(self, values):
        # k == dim: decompress(compress(x)) must be x bitwise, with a
        # zero residual — the k -> n limit of the conservation law.
        compressor = TopKCompressor(values.size, ratio=1.0)
        payload, approx = compressor.compress(values)
        np.testing.assert_array_equal(approx, values)
        np.testing.assert_array_equal(
            compressor._residual, np.zeros_like(values)
        )

    @settings(max_examples=50, deadline=None)
    @given(dense_vectors(min_dim=4))
    def test_residual_conserves_the_dense_gradient(self, values):
        # transmitted + residual == input + carried, exactly: top-k
        # moves coordinates verbatim (no arithmetic), so the identity
        # holds bitwise coordinate-by-coordinate.
        compressor = TopKCompressor(values.size, ratio=0.25)
        carried = compressor._residual.copy()
        _, approx = compressor.compress(values)
        np.testing.assert_array_equal(
            approx + compressor._residual, values + carried
        )
        # Sparse support and residual support are disjoint.
        assert not np.any((approx != 0) & (compressor._residual != 0))

    @settings(max_examples=50, deadline=None)
    @given(dense_vectors())
    def test_int8_roundtrip_error_bounded(self, values):
        compressor = Int8Compressor(values.size)
        payload = compressor.encode(values)
        decoded = compressor.decode(payload)
        peak = np.max(np.abs(values)) if values.size else 0.0
        scale = peak / 127.0
        # round-to-nearest: per-coordinate error <= scale / 2 (plus an
        # ulp of slack for the scale multiply).
        bound = scale / 2 + 1e-9 * max(peak, 1.0)
        assert np.all(np.abs(decoded - values) <= bound)

    @settings(max_examples=30, deadline=None)
    @given(dense_vectors(min_dim=2))
    def test_reference_mode_tracks_params(self, params):
        # CHOCO reference tracking: repeatedly encoding the same
        # parameter vector drives the shared reference toward it.
        compressor = TopKCompressor(params.size, ratio=0.5)
        gap = None
        for _ in range(8):
            _, reconstruction = compressor.encode_state(params)
            gap = np.max(np.abs(reconstruction - params))
        assert gap <= 1e-6 * max(1.0, np.max(np.abs(params)))

    def test_compress_rejects_nothing_but_shape(self):
        compressor = TopKCompressor(4, ratio=0.5)
        payload, approx = compressor.compress(np.array([1.0, -2.0, 0.5, 3.0]))
        assert approx.shape == (4,)
        assert payload.dim == 4


class TestExtensionPoint:
    """The ARCHITECTURE add-a-compressor walkthrough, as a test."""

    def test_register_and_run_a_custom_compressor(self):
        from repro.compression.registry import (
            _REGISTRY,
            register_compressor,
        )

        class HalfCompressor(Compressor):
            """Keep the first half of the vector (a toy codec)."""

            name = "half"

            def encode(self, values):
                from repro.compression.base import CompressedPayload

                kept = self.dim - self.dim // 2
                return CompressedPayload(
                    (values[:kept].copy(),), self.dim
                )

            def decode(self, payload):
                (kept,) = payload.arrays
                dense = np.zeros(self.dim, dtype=self.dtype)
                dense[: kept.size] = kept
                return dense

            def wire_bytes(self):
                kept = self.dim - self.dim // 2
                return kept * self.dtype.itemsize

        register_compressor(
            "half",
            lambda dim, dtype, seed: HalfCompressor(dim, dtype),
            summary="keep the first half (walkthrough example)",
            paper="ARCHITECTURE.md",
        )
        try:
            from repro.harness.golden import conformance_spec
            from repro.harness.spec import run_spec

            spec = conformance_spec("allreduce", "none").with_(
                compression=CompressionSpec("half")
            )
            run = run_spec(spec)
            dense = run_spec(conformance_spec("allreduce", "none"))
            dim = run.final_params.shape[-1]
            ratio = (dim - dim // 2) / dim
            assert run.bytes_sent == pytest.approx(dense.bytes_sent * ratio)
            assert np.all(np.isfinite(run.final_params))
        finally:
            _REGISTRY.pop("half", None)
