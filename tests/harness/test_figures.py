"""Smoke tests for the figure harness: every figure runs and passes.

The heavier figures are exercised at the ``smoke`` preset; the
benchmark harness runs them at full ``bench`` scale.
"""

import pytest

from repro.harness import ALL_FIGURES, FigureResult, fig21_spectral_gaps, table1_gap_bounds


class TestFigureResult:
    def test_check_and_passed(self):
        result = FigureResult("f", "t")
        result.check("ok", True)
        assert result.passed()
        result.check("bad", False, "why")
        assert not result.passed()
        assert result.failures() == ["bad"]

    def test_render_includes_everything(self):
        result = FigureResult("fig0", "demo title")
        result.rows.append({"a": 1})
        result.check("claim", True, "detail")
        result.notes = "a note"
        text = result.render()
        assert "fig0" in text and "demo title" in text
        assert "[PASS] claim" in text
        assert "a note" in text


class TestFastFigures:
    def test_fig21_passes(self):
        result = fig21_spectral_gaps()
        assert result.passed(), result.render()

    def test_table1_passes(self):
        result = table1_gap_bounds("smoke")
        assert result.passed(), result.render()


@pytest.mark.parametrize("figure_id", sorted(ALL_FIGURES))
def test_every_figure_passes_at_smoke_scale(figure_id):
    function = ALL_FIGURES[figure_id]
    result = function() if figure_id == "fig21" else function("smoke")
    assert result.passed(), result.render()
    assert result.rows or result.series


def test_registry_covers_the_evaluation_section():
    expected = {
        "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
        "fig18", "fig19", "fig20", "fig21", "table1",
        "fig22",  # extension: registry-wide protocol comparison
        "fig23",  # extension: protocol x scenario-family grid
        "fig24",  # extension: simulator scaling study
        "fig25",  # extension: membership churn study
        "fig26",  # extension: update compression ablation
    }
    assert set(ALL_FIGURES) == expected


def test_fig24_ps_hotspot_pinned_across_accounting_split():
    """The PS-hotspot numbers, bitwise, before == after.

    The delivered/dropped/control byte-accounting split changes what
    the volume stats *mean* but must not move a single simulated
    timestamp — the pre-split golden cells replay bitwise, and these
    hex literals extend that pin to the fig24 hotspot cells: the
    smoke-preset ps-async rows must reproduce them exactly (the
    hotspot serializes every worker through one NIC, so any accidental
    timing change shows up here first).
    """
    result = ALL_FIGURES["fig24"]("smoke")
    pinned = {
        8: float.fromhex("0x1.068db8bac7102p+4"),
        16: float.fromhex("0x1.068db8bac7107p+5"),
    }
    observed = {
        row["workers"]: row["sim_wall_time"]
        for row in result.rows
        if row["protocol"] == "ps-async"
    }
    assert observed == pinned
