"""Tests for the parameter-sweep utilities."""

import pytest

from repro.core.config import backup_config, staleness_config
from repro.graphs import ring_based
from repro.harness import ExperimentSpec, deterministic_straggler, svm_workload
from repro.harness.sweeps import (
    sweep,
    sweep_backup,
    sweep_max_ig,
    sweep_seeds,
    sweep_staleness,
)


@pytest.fixture(scope="module")
def base_spec():
    return ExperimentSpec(
        "sweep-base",
        svm_workload("smoke"),
        ring_based(8),
        config=backup_config(n_backup=1, max_ig=4),
        max_iter=10,
        seed=0,
    )


def test_sweep_produces_one_row_per_value(base_spec):
    rows = sweep_max_ig(base_spec, [1, 2, 4])
    assert [row["max_ig"] for row in rows] == [1, 2, 4]
    for row in rows:
        assert row["wall_time"] > 0
        assert row["final_loss"] > 0


def test_sweep_max_ig_tolerance_under_straggler(base_spec):
    spec = base_spec.with_(
        slowdown=deterministic_straggler(0, 4.0), max_iter=15
    )
    rows = sweep_max_ig(spec, [1, 8])
    # Larger gap bound = weakly more tolerance = no slower.
    assert rows[1]["wall_time"] <= rows[0]["wall_time"] + 1e-9
    assert rows[1]["max_gap"] >= rows[0]["max_gap"]


def test_sweep_backup_counts(base_spec):
    rows = sweep_backup(base_spec, [1, 2])
    assert [row["n_backup"] for row in rows] == [1, 2]


def test_sweep_staleness(base_spec):
    spec = base_spec.with_(config=staleness_config(staleness=2, max_ig=6))
    rows = sweep_staleness(spec, [1, 3])
    assert [row["staleness"] for row in rows] == [1, 3]


def test_sweep_seeds_varies_outcomes(base_spec):
    rows = sweep_seeds(base_spec, [0, 1, 2])
    losses = {row["final_loss"] for row in rows}
    assert len(losses) > 1  # different seeds, different draws


def test_generic_sweep_custom_knob(base_spec):
    rows = sweep(
        base_spec,
        vary=lambda spec, iters: spec.with_(max_iter=iters),
        values=[5, 10],
        label="max_iter",
    )
    assert rows[0]["max_iter"] == 5
    assert rows[1]["wall_time"] > rows[0]["wall_time"]
