"""Tests for run/figure serialization and the CLI."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.graphs import ring_based
from repro.harness import ExperimentSpec, run_spec, svm_workload, table1_gap_bounds
from repro.harness.io import (
    figure_to_dict,
    load_run_summary,
    run_to_dict,
    save_figure,
    save_run,
)


@pytest.fixture(scope="module")
def run():
    workload = svm_workload("smoke")
    return run_spec(
        ExperimentSpec("io", workload, ring_based(8), max_iter=12, seed=0)
    )


class TestRunSerialization:
    def test_run_to_dict_is_json_safe(self, run):
        payload = run_to_dict(run)
        text = json.dumps(payload)  # raises if not JSON-safe
        assert "hop" in text

    def test_round_trip_through_disk(self, run, tmp_path):
        path = save_run(run, tmp_path / "run.json")
        loaded = load_run_summary(path)
        assert loaded["protocol"] == "hop"
        assert loaded["n_workers"] == 8
        assert loaded["wall_time"] == pytest.approx(run.wall_time)
        assert len(loaded["loss_curve"]["times"]) == len(
            loaded["loss_curve"]["losses"]
        )

    def test_worker_stats_preserved(self, run, tmp_path):
        loaded = load_run_summary(save_run(run, tmp_path / "r.json"))
        assert len(loaded["worker_stats"]) == 8
        assert loaded["worker_stats"][0]["iterations_completed"] == 12

    def test_creates_parent_directories(self, run, tmp_path):
        path = save_run(run, tmp_path / "deep" / "nested" / "run.json")
        assert path.exists()


class TestFigureSerialization:
    def test_figure_round_trip(self, tmp_path):
        result = table1_gap_bounds("smoke")
        payload = figure_to_dict(result)
        json.dumps(payload)
        assert payload["passed"] is True
        assert payload["figure_id"] == "table1"
        path = save_figure(result, tmp_path / "table1.json")
        assert json.loads(path.read_text())["checks"]


class TestCLI:
    def test_graphs_command(self, capsys):
        assert main(["graphs", "--graph", "ring", "--workers", "8"]) == 0
        out = capsys.readouterr().out
        assert "spectral gap" in out
        assert "ring(8)" in out

    def test_train_command_writes_summary(self, tmp_path, capsys):
        code = main(
            [
                "train",
                "--workload", "svm",
                "--workers", "6",
                "--iterations", "8",
                "--out", str(tmp_path / "out.json"),
            ]
        )
        assert code == 0
        assert (tmp_path / "out.json").exists()
        assert "wall_time" in capsys.readouterr().out

    def test_train_with_backup_and_slowdown(self, capsys):
        code = main(
            [
                "train",
                "--mode", "backup",
                "--slowdown", "straggler",
                "--workers", "6",
                "--iterations", "8",
            ]
        )
        assert code == 0
        assert "backup" in capsys.readouterr().out

    def test_figures_command_single(self, capsys):
        assert main(["figures", "--only", "fig21"]) == 0
        out = capsys.readouterr().out
        assert "spectral gaps" in out.lower()
        assert "all shape checks passed" in out

    def test_figures_unknown_id(self, capsys):
        assert main(["figures", "--only", "fig99"]) == 2

    def test_ablations_unknown_id(self, capsys):
        assert main(["ablations", "--only", "nope"]) == 2

    def test_figures_json_dump(self, tmp_path, capsys):
        code = main(
            ["figures", "--only", "fig21", "--json-dir", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "fig21.json").exists()

    def test_skip_requires_non_standard_mode(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "train",
                    "--skip",
                    "--mode", "standard",
                    "--workers", "6",
                    "--iterations", "4",
                ]
            )
