"""Tests for run/figure serialization and the CLI."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.graphs import ring_based
from repro.harness import ExperimentSpec, run_spec, svm_workload, table1_gap_bounds
from repro.harness.io import (
    figure_to_dict,
    load_run_summary,
    run_to_dict,
    save_figure,
    save_run,
)


@pytest.fixture(scope="module")
def run():
    workload = svm_workload("smoke")
    return run_spec(
        ExperimentSpec("io", workload, ring_based(8), max_iter=12, seed=0)
    )


class TestRunSerialization:
    def test_run_to_dict_is_json_safe(self, run):
        payload = run_to_dict(run)
        text = json.dumps(payload)  # raises if not JSON-safe
        assert "hop" in text

    def test_round_trip_through_disk(self, run, tmp_path):
        path = save_run(run, tmp_path / "run.json")
        loaded = load_run_summary(path)
        assert loaded["protocol"] == "hop"
        assert loaded["n_workers"] == 8
        assert loaded["wall_time"] == pytest.approx(run.wall_time)
        assert len(loaded["loss_curve"]["times"]) == len(
            loaded["loss_curve"]["losses"]
        )

    def test_worker_stats_preserved(self, run, tmp_path):
        loaded = load_run_summary(save_run(run, tmp_path / "r.json"))
        assert len(loaded["worker_stats"]) == 8
        assert loaded["worker_stats"][0]["iterations_completed"] == 12

    def test_creates_parent_directories(self, run, tmp_path):
        path = save_run(run, tmp_path / "deep" / "nested" / "run.json")
        assert path.exists()


class TestFigureSerialization:
    def test_figure_round_trip(self, tmp_path):
        result = table1_gap_bounds("smoke")
        payload = figure_to_dict(result)
        json.dumps(payload)
        assert payload["passed"] is True
        assert payload["figure_id"] == "table1"
        path = save_figure(result, tmp_path / "table1.json")
        assert json.loads(path.read_text())["checks"]


class TestCLI:
    def test_graphs_command(self, capsys):
        assert main(["graphs", "--graph", "ring", "--workers", "8"]) == 0
        out = capsys.readouterr().out
        assert "spectral gap" in out
        assert "ring(8)" in out

    def test_train_command_writes_summary(self, tmp_path, capsys):
        code = main(
            [
                "train",
                "--workload", "svm",
                "--workers", "6",
                "--iterations", "8",
                "--out", str(tmp_path / "out.json"),
            ]
        )
        assert code == 0
        assert (tmp_path / "out.json").exists()
        assert "wall_time" in capsys.readouterr().out

    def test_train_with_backup_and_slowdown(self, capsys):
        code = main(
            [
                "train",
                "--mode", "backup",
                "--slowdown", "straggler",
                "--workers", "6",
                "--iterations", "8",
            ]
        )
        assert code == 0
        assert "backup" in capsys.readouterr().out

    def test_figures_command_single(self, capsys):
        assert main(["figures", "--only", "fig21"]) == 0
        out = capsys.readouterr().out
        assert "spectral gaps" in out.lower()
        assert "all shape checks passed" in out

    def test_figures_unknown_id(self, capsys):
        assert main(["figures", "--only", "fig99"]) == 2

    def test_ablations_unknown_id(self, capsys):
        assert main(["ablations", "--only", "nope"]) == 2

    def test_figures_json_dump(self, tmp_path, capsys):
        code = main(
            ["figures", "--only", "fig21", "--json-dir", str(tmp_path)]
        )
        assert code == 0
        assert (tmp_path / "fig21.json").exists()

    def test_skip_requires_non_standard_mode(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "train",
                    "--skip",
                    "--mode", "standard",
                    "--workers", "6",
                    "--iterations", "4",
                ]
            )


class TestCLISlowdownKnobs:
    """--slowdown exposes every SlowdownSpec knob (factor, probability,
    multi-worker straggler maps), not just hardcoded recipes."""

    def _parse(self, *argv):
        from repro.cli import build_parser

        return build_parser().parse_args(["train", *argv])

    def _spec_slowdown(self, *argv):
        from repro.cli import _train_slowdown

        return _train_slowdown(self._parse(*argv))

    def test_random_defaults_match_paper(self):
        slowdown = self._spec_slowdown("--slowdown", "random")
        assert slowdown.kind == "random"
        assert slowdown.factor == 6.0
        assert slowdown.probability is None  # 1/n at build time

    def test_random_factor_and_probability_override(self):
        slowdown = self._spec_slowdown(
            "--slowdown", "random",
            "--slowdown-factor", "3.5",
            "--slowdown-prob", "0.25",
        )
        assert slowdown.factor == 3.5
        assert slowdown.probability == 0.25

    def test_straggler_default_matches_paper(self):
        slowdown = self._spec_slowdown("--slowdown", "straggler")
        assert slowdown.kind == "deterministic"
        assert slowdown.workers == {0: 4.0}

    def test_straggler_factor_override(self):
        slowdown = self._spec_slowdown(
            "--slowdown", "straggler", "--slowdown-factor", "9"
        )
        assert slowdown.workers == {0: 9.0}

    def test_multi_worker_straggler_map(self):
        slowdown = self._spec_slowdown(
            "--slowdown", "straggler", "--stragglers", "0:4,3:2.5,5:6"
        )
        assert slowdown.workers == {0: 4.0, 3: 2.5, 5: 6.0}

    def test_malformed_straggler_map_rejected(self):
        with pytest.raises(SystemExit):
            self._parse("--slowdown", "straggler", "--stragglers", "0=4")

    def test_knobs_without_matching_kind_are_an_error(self):
        """--stragglers / --slowdown-prob must not silently run a
        clean cluster when the matching --slowdown kind is missing."""
        with pytest.raises(SystemExit):
            self._spec_slowdown("--stragglers", "0:4")
        with pytest.raises(SystemExit):
            self._spec_slowdown("--slowdown-prob", "0.5")
        with pytest.raises(SystemExit):
            self._spec_slowdown(
                "--slowdown", "straggler", "--slowdown-prob", "0.5"
            )
        with pytest.raises(SystemExit):
            self._spec_slowdown("--slowdown-factor", "2")
        with pytest.raises(SystemExit):
            self._spec_slowdown(
                "--slowdown", "straggler",
                "--stragglers", "0:4",
                "--slowdown-factor", "9",
            )

    def test_scenario_param_without_scenario_is_an_error(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "train",
                    "--workers", "4",
                    "--iterations", "4",
                    "--scenario-param", "worker=2",
                ]
            )

    def test_scenario_and_slowdown_are_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "train",
                    "--workers", "4",
                    "--iterations", "4",
                    "--scenario", "bursty",
                    "--slowdown", "straggler",
                ]
            )
        with pytest.raises(SystemExit):
            main(
                [
                    "train",
                    "--workers", "4",
                    "--iterations", "4",
                    "--scenario", "bursty",
                    "--slowdown-factor", "9",
                ]
            )

    def test_train_runs_with_custom_knobs(self, capsys):
        code = main(
            [
                "train",
                "--workers", "6",
                "--iterations", "6",
                "--slowdown", "random",
                "--slowdown-factor", "2.0",
                "--slowdown-prob", "0.5",
            ]
        )
        assert code == 0
        assert "wall_time" in capsys.readouterr().out

    def test_train_runs_with_multi_straggler(self, capsys):
        code = main(
            [
                "train",
                "--workers", "6",
                "--iterations", "6",
                "--slowdown", "straggler",
                "--stragglers", "0:3,2:2",
            ]
        )
        assert code == 0
        assert "wall_time" in capsys.readouterr().out

    def test_run_summary_includes_fault_fields(self, tmp_path):
        code = main(
            [
                "train",
                "--workers", "6",
                "--iterations", "6",
                "--scenario", "lossy-net",
                "--scenario-param", "probability=0.2",
                "--out", str(tmp_path / "lossy.json"),
            ]
        )
        assert code == 0
        loaded = json.loads((tmp_path / "lossy.json").read_text())
        assert loaded["messages_dropped"] > 0
        assert loaded["fault_events"] == []


class TestRegistryJsonContract:
    """The --json tables are machine consumed (CI, the lint rules'
    shared source of truth): every row must carry the contract flags
    explicitly, never as an implied default."""

    PROTOCOL_FIELDS = {"name", "aliases", "summary", "paper", "elastic"}
    SCENARIO_FIELDS = {"name", "aliases", "summary", "paper", "universal"}

    def test_protocols_json_rows_declare_elastic(self, capsys):
        assert main(["protocols", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows
        for row in rows:
            assert self.PROTOCOL_FIELDS <= set(row), row["name"]
            assert isinstance(row["elastic"], bool)
        # Since the full-grid elasticity pass every built-in protocol
        # is elastic; a False here means a registration silently lost
        # its churn support.
        for row in rows:
            assert row["elastic"] is True, row["name"]

    def test_scenarios_json_rows_declare_universal(self, capsys):
        assert main(["scenarios", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows
        for row in rows:
            assert self.SCENARIO_FIELDS <= set(row), row["name"]
            assert isinstance(row["universal"], bool)
        by_name = {row["name"]: row for row in rows}
        assert by_name["none"]["universal"] is True
        assert by_name["churn"]["universal"] is False
