"""The parallel runner: jobs resolution and sequential/parallel parity.

Every spec seeds all of its randomness, so the process-pool path must
produce bitwise-identical TrainingRuns — and therefore identical figure
rows — to the in-process sequential path.
"""

import warnings

import numpy as np
import pytest

from repro.graphs import ring
from repro.harness.figures import fig16_iteration_speed
from repro.harness.parallel import (
    compose_jobs_shards,
    default_jobs,
    default_shards,
    resolve_jobs,
    run_specs,
    set_default_jobs,
    set_default_shards,
)
from repro.harness.spec import ExperimentSpec, RANDOM_6X
from repro.harness.workloads import by_name


@pytest.fixture(autouse=True)
def reset_jobs():
    yield
    set_default_jobs(None)
    set_default_shards(None)


def small_specs(n_specs=2, max_iter=6):
    workload = by_name("svm", "smoke")
    return {
        f"series{i}": ExperimentSpec(
            f"series{i}",
            workload,
            ring(8),
            slowdown=RANDOM_6X,
            max_iter=max_iter,
            seed=i,
        )
        for i in range(n_specs)
    }


class TestJobsResolution:
    def test_explicit_jobs_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3, n_tasks=10) == 3

    def test_env_var_used_when_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert default_jobs() == 5
        assert resolve_jobs(None, n_tasks=10) == 5

    def test_configured_default_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        set_default_jobs(2)
        assert default_jobs() == 2

    def test_clamped_to_task_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "64")
        assert resolve_jobs(None, n_tasks=3) == 3

    def test_at_least_one(self):
        assert resolve_jobs(0, n_tasks=0) == 1

    def test_invalid_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            default_jobs()

    def test_negative_env_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "-2")
        with pytest.raises(ValueError):
            default_jobs()

    def test_zero_env_means_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert default_jobs() >= 1

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError):
            set_default_jobs(-1)

    def test_auto_detection_positive(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert default_jobs() >= 1


class TestJobsShardsComposition:
    """``jobs x shards`` must never oversubscribe the machine."""

    def test_cap_arithmetic(self):
        # 8 jobs of 4-shard runs on 8 CPUs -> 2 concurrent jobs.
        assert compose_jobs_shards(8, 4, cpus=8, n_tasks=100) == 2
        # 6 jobs of 2-shard runs on 8 CPUs -> 4 concurrent jobs.
        assert compose_jobs_shards(6, 2, cpus=8, n_tasks=100) == 4

    def test_no_cpu_cap_with_single_shard(self):
        # Historical trust-the-user --jobs: no cap while shards == 1.
        assert compose_jobs_shards(16, 1, cpus=2, n_tasks=100) == 16

    def test_one_sharded_job_may_use_whole_machine(self):
        # shards > cpus: still at least one job runs.
        assert compose_jobs_shards(4, 8, cpus=2, n_tasks=100) == 1

    def test_clamped_to_task_count(self):
        assert compose_jobs_shards(8, 2, cpus=32, n_tasks=3) == 3

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            compose_jobs_shards(0, 2, cpus=8, n_tasks=4)
        with pytest.raises(ValueError):
            compose_jobs_shards(2, 0, cpus=8, n_tasks=4)

    def test_resolve_jobs_respects_default_shards(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "64")
        set_default_shards(64)  # far above any CPU count
        assert resolve_jobs(None, n_tasks=100) == 1

    def test_default_shards_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "3")
        assert default_shards() == 3
        set_default_shards(2)
        assert default_shards() == 2

    def test_default_shards_unset_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert default_shards() == 1

    def test_default_shards_env_validation(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "lots")
        with pytest.raises(ValueError):
            default_shards()
        monkeypatch.setenv("REPRO_SHARDS", "-1")
        with pytest.raises(ValueError):
            default_shards()
        monkeypatch.setenv("REPRO_SHARDS", "0")
        assert default_shards() == 1

    def test_set_default_shards_rejects_negative(self):
        with pytest.raises(ValueError):
            set_default_shards(-2)


class TestRunSpecsParity:
    def test_parallel_matches_sequential_bitwise(self):
        specs = small_specs()
        sequential = run_specs(specs, jobs=1)
        parallel = run_specs(specs, jobs=2)
        assert list(sequential) == list(parallel) == list(specs)
        for key in specs:
            seq, par = sequential[key], parallel[key]
            assert seq.wall_time == par.wall_time
            assert np.array_equal(seq.final_params, par.final_params)
            seq_t, seq_l = seq.loss_series()
            par_t, par_l = par.loss_series()
            assert np.array_equal(seq_t, par_t)
            assert np.array_equal(seq_l, par_l)
            assert seq.iterations_completed == par.iterations_completed
            assert seq.messages_sent == par.messages_sent

    def test_unpicklable_spec_falls_back_to_sequential(self):
        import dataclasses

        from repro.ml.models import build_svm

        specs = small_specs()
        # A lambda factory works in-process but cannot cross a process
        # boundary, so the pool path must degrade to sequential.
        unpicklable = dataclasses.replace(
            specs["series0"].workload,
            model_factory=lambda rng: build_svm(rng, 32),
        )
        bad_specs = {
            key: spec.with_(workload=unpicklable)
            for key, spec in specs.items()
        }
        with pytest.warns(RuntimeWarning, match="sequentially"):
            results = run_specs(bad_specs, jobs=2)
        assert list(results) == list(bad_specs)
        for run in results.values():
            assert run.wall_time > 0

    def test_worker_exception_propagates_without_sequential_rerun(self):
        specs = small_specs()
        bad_specs = {
            key: spec.with_(protocol="no-such-protocol")
            for key, spec in specs.items()
        }
        # A real error inside run_spec must surface as-is, not get
        # misread as "parallel runner unavailable" and re-run.
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            with pytest.raises(ValueError, match="unknown protocol"):
                run_specs(bad_specs, jobs=2)


class TestFigureDeterminism:
    def test_figure_rows_identical_across_jobs(self):
        set_default_jobs(1)
        sequential = fig16_iteration_speed(preset="smoke", workload_name="svm")
        set_default_jobs(2)
        parallel = fig16_iteration_speed(preset="smoke", workload_name="svm")
        assert sequential.rows == parallel.rows
        assert sequential.checks == parallel.checks
        assert list(sequential.series) == list(parallel.series)
        for key in sequential.series:
            seq_x, seq_y = sequential.series[key]
            par_x, par_y = parallel.series[key]
            assert np.array_equal(seq_x, par_x)
            assert np.array_equal(seq_y, par_y)
