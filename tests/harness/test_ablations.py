"""Smoke tests for the ablation studies."""

import pytest

from repro.harness.ablations import ALL_ABLATIONS


@pytest.mark.parametrize("name", sorted(ALL_ABLATIONS))
def test_ablation_passes_at_smoke_scale(name):
    result = ALL_ABLATIONS[name](preset="smoke")
    assert result.passed(), result.render()
    assert result.rows


def test_registry_complete():
    assert set(ALL_ABLATIONS) == {
        "stale_reduce",
        "computation_graph",
        "max_ig",
        "queue_impl",
        "vs_adpsgd",
        "partial_groups",
    }
