"""Tests for cross-run analysis and report rendering."""

import numpy as np
import pytest

from repro.graphs import ring_based
from repro.harness import (
    ExperimentSpec,
    binned_loss_curve,
    binned_loss_vs_steps,
    compare_runs,
    final_smoothed_loss,
    iteration_rate_speedup,
    render_check,
    render_curve,
    render_series_table,
    render_table,
    run_spec,
    straggler_slowdown_ratio,
    svm_workload,
    time_to_loss_speedup,
    wall_time_speedup,
)


@pytest.fixture(scope="module")
def run():
    workload = svm_workload("smoke")
    return run_spec(
        ExperimentSpec("r", workload, ring_based(8), max_iter=20, seed=0)
    )


@pytest.fixture(scope="module")
def slow_run():
    from repro.harness import deterministic_straggler

    workload = svm_workload("smoke")
    return run_spec(
        ExperimentSpec(
            "s",
            workload,
            ring_based(8),
            slowdown=deterministic_straggler(0, 4.0),
            max_iter=20,
            seed=0,
        )
    )


class TestCurves:
    def test_binned_loss_curve_shape(self, run):
        times, losses = binned_loss_curve(run, n_bins=10)
        assert times.size <= 10
        assert times.size == losses.size
        assert np.all(np.diff(times) > 0)

    def test_binned_curve_spans_run(self, run):
        times, _ = binned_loss_curve(run, n_bins=10)
        assert times[-1] <= run.wall_time

    def test_binned_loss_vs_steps(self, run):
        steps, losses = binned_loss_vs_steps(run, n_bins=8)
        assert steps.size == 8
        assert losses[0] > losses[-1]  # training works

    def test_final_smoothed_loss_finite(self, run):
        assert np.isfinite(final_smoothed_loss(run))


class TestSpeedups:
    def test_wall_time_speedup(self, run, slow_run):
        assert wall_time_speedup(slow_run, run) > 1.0
        assert wall_time_speedup(run, slow_run) < 1.0

    def test_iteration_rate_speedup(self, run, slow_run):
        assert iteration_rate_speedup(slow_run, run) > 1.0

    def test_time_to_loss_speedup(self, run, slow_run):
        target = final_smoothed_loss(run) * 1.3
        speedup = time_to_loss_speedup(slow_run, run, target)
        assert speedup > 0

    def test_time_to_loss_speedup_inf_safe(self, run, slow_run):
        assert time_to_loss_speedup(run, slow_run, target=0.0) == 0.0

    def test_straggler_slowdown_ratio(self, run, slow_run):
        ratio = straggler_slowdown_ratio(slow_run, run)
        assert ratio > 1.5  # the 4x straggler drags the graph


class TestCompareRuns:
    def test_rows_have_speedup_column(self, run, slow_run):
        rows = compare_runs({"fast": run, "slow": slow_run}, baseline="slow")
        labels = {row["label"]: row for row in rows}
        assert labels["fast"]["speedup_vs_slow"] > 1.0
        assert labels["slow"]["speedup_vs_slow"] == pytest.approx(1.0)

    def test_target_loss_column_optional(self, run):
        rows = compare_runs({"only": run})
        assert "time_to_target" not in rows[0]
        rows = compare_runs({"only": run}, target_loss=1.0)
        assert "time_to_target" in rows[0]


class TestReport:
    def test_render_table_alignment(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "c": "x"}]
        text = render_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1] and "c" in lines[1]
        assert len(lines) == 5

    def test_render_table_empty(self):
        assert "(empty)" in render_table([], title="nothing")

    def test_render_table_inf_nan(self):
        text = render_table([{"v": float("inf"), "w": float("nan")}])
        assert "inf" in text and "-" in text

    def test_render_curve_contains_extents(self):
        xs = np.linspace(0, 10, 50)
        ys = np.exp(-xs)
        text = render_curve("decay", xs, ys, width=20, height=5)
        assert "decay" in text
        assert "0.00 .. 10.00" in text

    def test_render_curve_empty(self):
        assert "(no data)" in render_curve("x", np.array([]), np.array([]))

    def test_render_series_table(self):
        series = {"a": (np.array([0.0, 1.0]), np.array([2.0, 1.0]))}
        text = render_series_table(series, n_points=2)
        assert "(0.00, 2.000)" in text

    def test_render_check(self):
        assert "[PASS]" in render_check("ok", True)
        assert "[FAIL]" in render_check("bad", False, "detail")
        assert "detail" in render_check("bad", False, "detail")
