"""Unit tests for the atomic-write helpers in :mod:`repro.harness.io`."""

import json
import os

import pytest

from repro.harness.io import atomic_write_json, atomic_write_text


class TestAtomicWriteText:
    def test_writes_content_and_returns_path(self, tmp_path):
        target = tmp_path / "out.txt"
        assert atomic_write_text(target, "hello\n") == target
        assert target.read_text() == "hello\n"

    def test_creates_parent_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "out.txt"
        atomic_write_text(target, "x")
        assert target.read_text() == "x"

    def test_no_temp_files_left_behind(self, tmp_path):
        target = tmp_path / "out.txt"
        for _ in range(3):
            atomic_write_text(target, "y")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_failed_write_preserves_original(self, tmp_path, monkeypatch):
        target = tmp_path / "out.json"
        atomic_write_text(target, "original")

        # Make the rename step explode: the original must survive and
        # the temp file must be cleaned up.
        def boom(src, dst):
            raise OSError("injected rename failure")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="injected"):
            atomic_write_text(target, "replacement")
        monkeypatch.undo()
        assert target.read_text() == "original"
        assert os.listdir(tmp_path) == ["out.json"]

    def test_overwrite_is_all_or_nothing(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "short")
        atomic_write_text(target, "a much longer replacement body")
        assert target.read_text() == "a much longer replacement body"


class TestAtomicWriteJson:
    def test_round_trips_payload_with_trailing_newline(self, tmp_path):
        target = tmp_path / "out.json"
        payload = {"b": [1, 2], "a": {"nested": True}}
        atomic_write_json(target, payload)
        text = target.read_text()
        assert text.endswith("\n")
        assert json.loads(text) == payload

    def test_sort_keys_and_indent_knobs(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(target, {"b": 1, "a": 2}, indent=1, sort_keys=True)
        assert target.read_text().splitlines()[1].lstrip().startswith('"a"')
