"""Unit tests for :mod:`repro.harness.retry`.

The schedule is a contract: deterministic for a given ``jitter_seed``
(the scheduler derives the seed from the spec hash, so chaos reruns
sleep the exact same delays) and exponentially growing with bounded
jitter.
"""

import random

import pytest

from repro.harness.retry import RetryError, backoff_schedule, retry


class TestBackoffSchedule:
    def test_exact_schedule_matches_seeded_rng(self):
        # The contract, recomputed by hand: delay i = base * factor**i
        # scaled by (1 + jitter * U[0,1)) with U from Random(seed);
        # attempts runs need attempts - 1 inter-attempt delays.
        attempts, base, factor, jitter, seed = 5, 0.05, 2.0, 0.1, 42
        rng = random.Random(seed)
        expected = [
            base * factor**i * (1.0 + jitter * rng.random())
            for i in range(attempts - 1)
        ]
        assert backoff_schedule(
            attempts, base=base, factor=factor, jitter=jitter,
            jitter_seed=seed,
        ) == expected

    def test_deterministic_per_seed(self):
        first = backoff_schedule(6, jitter_seed=7)
        assert backoff_schedule(6, jitter_seed=7) == first
        assert backoff_schedule(6, jitter_seed=8) != first

    def test_exponential_growth_with_bounded_jitter(self):
        delays = backoff_schedule(8, base=0.1, factor=2.0, jitter=0.25,
                                  jitter_seed=3)
        for i, delay in enumerate(delays):
            ideal = 0.1 * 2.0**i
            assert ideal <= delay <= ideal * 1.25

    def test_zero_jitter_is_pure_exponential(self):
        assert backoff_schedule(5, base=1.0, factor=3.0, jitter=0.0) == [
            1.0, 3.0, 9.0, 27.0,
        ]

    def test_max_delay_caps_the_tail(self):
        delays = backoff_schedule(10, base=1.0, jitter=0.0, max_delay=4.0)
        assert delays[:3] == [1.0, 2.0, 4.0]
        assert all(d == 4.0 for d in delays[2:])

    @pytest.mark.parametrize(
        "kwargs", [{"attempts": 0}, {"attempts": -1},
                   {"attempts": 3, "base": -0.1},
                   {"attempts": 3, "jitter": -0.5}],
    )
    def test_invalid_parameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            backoff_schedule(**kwargs)


class TestRetry:
    def test_returns_first_success_without_sleeping(self):
        sleeps = []
        assert retry(lambda: 42, attempts=3, sleep=sleeps.append) == 42
        assert sleeps == []

    def test_sleeps_the_exact_schedule_between_failures(self):
        sleeps = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        result = retry(
            flaky, attempts=5, base=0.05, jitter_seed=11,
            sleep=sleeps.append,
        )
        assert result == "ok"
        assert calls["n"] == 3
        # Two failures -> the first two schedule delays, verbatim.
        assert sleeps == backoff_schedule(5, base=0.05, jitter_seed=11)[:2]

    def test_exhaustion_raises_retry_error_chaining_last(self):
        sleeps = []

        def always():
            raise ValueError("nope")

        with pytest.raises(RetryError) as info:
            retry(always, attempts=3, sleep=sleeps.append)
        assert info.value.attempts == 3
        assert isinstance(info.value.last_error, ValueError)
        assert isinstance(info.value.__cause__, ValueError)
        assert len(sleeps) == 2  # no sleep after the final failure

    def test_only_listed_exceptions_are_retried(self):
        calls = {"n": 0}

        def wrong_kind():
            calls["n"] += 1
            raise KeyError("not transient")

        with pytest.raises(KeyError):
            retry(wrong_kind, attempts=5, retry_on=(OSError,),
                  sleep=lambda _: None)
        assert calls["n"] == 1

    def test_on_retry_hook_sees_attempt_and_error(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise OSError("boom")
            return 1

        retry(
            flaky, attempts=4, sleep=lambda _: None,
            on_retry=lambda attempt, error, delay: seen.append(
                (attempt, type(error).__name__, delay > 0)
            ),
        )
        assert seen == [(0, "OSError", True), (1, "OSError", True)]
