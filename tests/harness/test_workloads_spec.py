"""Tests for workloads and experiment specs."""

import numpy as np
import pytest

from repro.graphs import ring, ring_based
from repro.harness import (
    RANDOM_6X,
    ExperimentSpec,
    SlowdownSpec,
    by_name,
    cnn_workload,
    deterministic_straggler,
    run_spec,
    svm_workload,
)
from repro.hetero import DeterministicSlowdown, NoSlowdown, RandomSlowdown
from repro.sim import RngStreams


class TestWorkloads:
    def test_cnn_builds_consistent_models(self):
        workload = cnn_workload("smoke")
        a = workload.model_factory(np.random.default_rng(1))
        b = workload.model_factory(np.random.default_rng(1))
        assert np.array_equal(a.get_params(), b.get_params())

    def test_svm_gradient_works(self):
        workload = svm_workload("smoke")
        model = workload.model_factory(np.random.default_rng(0))
        x = workload.dataset.x_train[: workload.batch_size]
        y = workload.dataset.y_train[: workload.batch_size]
        loss, grad = model.loss_and_grad(x, y)
        assert loss > 0 and grad.shape == (model.dim,)

    def test_presets_scale_dataset(self):
        small = cnn_workload("smoke")
        large = cnn_workload("paper")
        assert large.dataset.n_train > small.dataset.n_train

    def test_by_name(self):
        assert by_name("cnn", "smoke").name == "cnn"
        assert by_name("svm", "smoke").name == "svm"
        with pytest.raises(ValueError):
            by_name("transformer", "smoke")
        with pytest.raises(ValueError):
            cnn_workload("gigantic")

    def test_target_loss_preset_aware(self):
        assert cnn_workload("smoke").target_loss > cnn_workload("paper").target_loss


class TestSlowdownSpec:
    def test_none(self):
        model = SlowdownSpec().build(4, RngStreams(0))
        assert isinstance(model, NoSlowdown)

    def test_random_defaults_probability_to_1_over_n(self):
        model = RANDOM_6X.build(16, RngStreams(0))
        assert isinstance(model, RandomSlowdown)
        assert model.probability == pytest.approx(1 / 16)
        assert model.slow_factor == 6.0

    def test_deterministic(self):
        spec = deterministic_straggler(worker=3, factor=4.0)
        model = spec.build(8, RngStreams(0))
        assert isinstance(model, DeterministicSlowdown)
        assert model.factor(3, 0) == 4.0

    def test_describe(self):
        assert SlowdownSpec().describe() == "none"
        assert "6" in RANDOM_6X.describe()
        assert "0:4" in deterministic_straggler().describe()

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            SlowdownSpec(kind="quantum").build(2, RngStreams(0))


class TestRunSpec:
    @pytest.fixture(scope="class")
    def workload(self):
        return svm_workload("smoke")

    def test_hop_protocol(self, workload):
        spec = ExperimentSpec(
            "t", workload, ring_based(8), max_iter=10, seed=0
        )
        run = run_spec(spec)
        assert run.protocol == "hop"
        assert run.iterations_completed == [10] * 8

    def test_all_protocols_run(self, workload):
        from repro.graphs import bipartite_ring

        for protocol in ("notify_ack", "ps-bsp", "ps-async", "allreduce"):
            spec = ExperimentSpec(
                protocol,
                workload,
                ring_based(8),
                protocol=protocol,
                max_iter=5,
                seed=0,
            )
            run = run_spec(spec)
            assert run.wall_time > 0

        spec = ExperimentSpec(
            "adpsgd",
            workload,
            bipartite_ring(8),
            protocol="adpsgd",
            max_iter=5,
            seed=0,
        )
        assert run_spec(spec).protocol == "adpsgd"

    def test_ssp_needs_staleness(self, workload):
        spec = ExperimentSpec(
            "ssp",
            workload,
            ring(4),
            protocol="ps-ssp",
            ps_staleness=2,
            max_iter=5,
        )
        assert run_spec(spec).protocol == "ps-ssp"

    def test_unknown_protocol(self, workload):
        spec = ExperimentSpec(
            "x", workload, ring(4), protocol="telepathy", max_iter=5
        )
        with pytest.raises(ValueError):
            run_spec(spec)

    def test_with_returns_modified_copy(self, workload):
        spec = ExperimentSpec("a", workload, ring(4), max_iter=5)
        other = spec.with_(max_iter=9, seed=3)
        assert other.max_iter == 9 and other.seed == 3
        assert spec.max_iter == 5
