"""The sharded harness runner: bitwise parity with the 1-shard path.

The contract under test is the headline acceptance criterion of the
sharded engine: for any shardable spec, ``run_spec_sharded(spec, N)``
is *bitwise* identical to ``run_spec(spec)`` — same fingerprint, same
final parameter bytes — because every shard replays the identical
control timeline and only the numerics are partitioned.
"""

import numpy as np
import pytest

from repro.harness.golden import conformance_spec, golden_fingerprint
from repro.harness.parallel import set_default_shards
from repro.harness.sharded import (
    SharedUpdate,
    ShardPlane,
    resolve_shards,
    run_spec_sharded,
    run_spec_sharded_with_stats,
    shard_plan,
)
from repro.harness.spec import run_spec


@pytest.fixture(autouse=True)
def reset_shards():
    yield
    set_default_shards(None)


@pytest.fixture(scope="module")
def golden_cell():
    spec = conformance_spec("hop", "none")
    run = run_spec(spec)
    return spec, run, golden_fingerprint(run)


def assert_bitwise_equal(sharded, baseline, fingerprint):
    assert golden_fingerprint(sharded) == fingerprint
    assert np.array_equal(sharded.final_params, baseline.final_params)
    assert sharded.final_loss == baseline.final_loss
    assert sharded.final_accuracy == baseline.final_accuracy


class TestBitwiseParity:
    def test_two_shards_threads(self, golden_cell):
        spec, baseline, fingerprint = golden_cell
        sharded = run_spec_sharded(spec, shards=2, processes=False)
        assert_bitwise_equal(sharded, baseline, fingerprint)

    def test_two_shards_processes(self, golden_cell):
        spec, baseline, fingerprint = golden_cell
        sharded = run_spec_sharded(spec, shards=2, processes=True)
        assert_bitwise_equal(sharded, baseline, fingerprint)

    def test_three_shards_on_timing_scenario(self):
        spec = conformance_spec("hop", "random")
        baseline = run_spec(spec)
        sharded = run_spec_sharded(spec, shards=3, processes=False)
        assert_bitwise_equal(
            sharded, baseline, golden_fingerprint(baseline)
        )

    def test_shard_count_clamps_to_population(self, golden_cell):
        # More shards than workers: clamp, don't crash, stay bitwise.
        spec, baseline, fingerprint = golden_cell
        sharded = run_spec_sharded(spec, shards=64, processes=False)
        assert_bitwise_equal(sharded, baseline, fingerprint)


class TestPassthroughAndStats:
    def test_single_shard_is_plain_run_spec(self, golden_cell):
        spec, _baseline, fingerprint = golden_cell
        run, rows = run_spec_sharded_with_stats(spec, shards=1)
        assert golden_fingerprint(run) == fingerprint
        assert rows == []

    def test_shard_rows_cover_every_worker(self, golden_cell):
        spec, _baseline, _fingerprint = golden_cell
        _run, rows = run_spec_sharded_with_stats(
            spec, shards=2, processes=False
        )
        assert [row["shard"] for row in rows] == [0, 1]
        assert sum(row["owned_workers"] for row in rows) == spec.topology.n
        for row in rows:
            assert row["events"] > 0
            assert row["windows"] > 0
            assert row["sync_wait_seconds"] >= 0.0


class TestGating:
    def test_rejects_non_hop_protocols(self):
        spec = conformance_spec("adpsgd", "none")
        with pytest.raises(ValueError, match="cannot run sharded"):
            run_spec_sharded(spec, shards=2)

    def test_rejects_crash_scenarios(self):
        spec = conformance_spec("hop", "crash")
        with pytest.raises(ValueError, match="cannot run sharded"):
            run_spec_sharded(spec, shards=2)

    def test_rejects_compressed_specs(self):
        from repro.harness.golden import compression_conformance_spec

        spec = compression_conformance_spec("hop", "topk")
        with pytest.raises(ValueError, match="cannot run sharded"):
            run_spec_sharded(spec, shards=2)

    def test_shard_plan_covers_workers(self, golden_cell):
        spec, _baseline, _fingerprint = golden_cell
        regions, lookahead = shard_plan(spec, 2)
        assert len(regions) == 2
        assert lookahead > 0
        flat = sorted(wid for region in regions for wid in region)
        assert flat == list(spec.topology.active_nodes())


class TestShardsResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "7")
        assert resolve_shards(3) == 3

    def test_env_var_used_when_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "5")
        assert resolve_shards(None) == 5

    def test_configured_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "5")
        set_default_shards(2)
        assert resolve_shards(None) == 2

    def test_unset_defaults_to_one_shard(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert resolve_shards(None) == 1

    def test_zero_means_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "4")
        assert resolve_shards(0) == 4


class TestSharedPlane:
    def test_update_views_ring_slot(self):
        plane = ShardPlane(n=3, dim=4, dtype=np.float64, slots=6)
        plane.ring[1, 2 % 6, :] = np.arange(4, dtype=np.float64)
        update = SharedUpdate(plane.ring, sender=1, iteration=2, slots=6)
        assert update.sender == 1
        assert update.iteration == 2
        np.testing.assert_array_equal(
            update.params, np.arange(4, dtype=np.float64)
        )
        assert not update.params.flags.writeable

    def test_matches_filters(self):
        plane = ShardPlane(n=2, dim=2, dtype=np.float64, slots=4)
        update = SharedUpdate(plane.ring, sender=0, iteration=3, slots=4)
        assert update.matches()
        assert update.matches(iteration=3)
        assert update.matches(sender=0)
        assert not update.matches(iteration=2)
        assert not update.matches(sender=1)
