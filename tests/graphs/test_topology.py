"""Tests for the Topology class: structure, paths, validation."""

import numpy as np
import pytest

from repro.graphs import Topology, TopologyError, ring


def triangle():
    return Topology(3, [(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)])


def test_self_loops_always_present():
    topo = Topology(3, [(0, 1), (1, 2), (2, 0)])
    for i in range(3):
        assert (i, i) in topo.edges


def test_in_and_out_neighbors():
    topo = Topology(3, [(0, 1), (1, 2), (2, 0)])
    assert topo.in_neighbors(1) == (0, 1)
    assert topo.in_neighbors(1, include_self=False) == (0,)
    assert topo.out_neighbors(1) == (1, 2)
    assert topo.out_neighbors(1, include_self=False) == (2,)


def test_degrees():
    topo = triangle()
    assert topo.in_degree(0) == 3  # self + 1 + 2
    assert topo.in_degree(0, include_self=False) == 2
    assert topo.max_degree() == 2


def test_edge_out_of_range_rejected():
    with pytest.raises(TopologyError):
        Topology(2, [(0, 5)])


def test_n_must_be_positive():
    with pytest.raises(TopologyError):
        Topology(0, [])


def test_uniform_weights_are_eq1():
    topo = Topology(3, [(0, 1), (1, 2), (2, 0)])
    # Node 1 has in-neighbors {0, 1}; each gets 1/2.
    assert topo.W[0, 1] == pytest.approx(0.5)
    assert topo.W[1, 1] == pytest.approx(0.5)
    assert topo.W[2, 1] == 0.0


def test_uniform_weights_columns_sum_to_one():
    topo = triangle()
    assert np.allclose(topo.W.sum(axis=0), 1.0)


def test_explicit_weights_validated_against_edges():
    bad = np.full((2, 2), 0.5)
    with pytest.raises(TopologyError, match="non-edge"):
        Topology(2, [(0, 1)], weights=bad)  # (1, 0) is not an edge


def test_negative_weights_rejected():
    W = np.array([[1.5, 0.0], [-0.5, 1.0]])
    with pytest.raises(TopologyError, match="negative"):
        Topology(2, [(0, 1), (1, 0)], weights=W)


def test_weight_shape_validated():
    with pytest.raises(TopologyError, match="shape"):
        Topology(2, [(0, 1), (1, 0)], weights=np.eye(3))


def test_with_weights_replaces_matrix():
    topo = triangle()
    W = np.eye(3)
    other = topo.with_weights(W)
    assert np.array_equal(other.W, W)
    assert other.n == topo.n


class TestPaths:
    def test_directed_ring_distances(self):
        topo = Topology(4, [(i, (i + 1) % 4) for i in range(4)])
        D = topo.shortest_path_matrix()
        assert D[0, 1] == 1
        assert D[0, 3] == 3
        assert D[3, 0] == 1
        assert D[0, 0] == 0

    def test_path_length_accessor(self):
        topo = Topology(4, [(i, (i + 1) % 4) for i in range(4)])
        assert topo.path_length(0, 2) == 2.0

    def test_diameter_of_bidirectional_ring(self):
        assert ring(6).diameter() == 3.0

    def test_unreachable_gives_inf(self):
        topo = Topology(3, [(0, 1)])  # 2 is isolated except self-loop
        assert topo.path_length(0, 2) == float("inf")
        assert not topo.is_strongly_connected()

    def test_strong_connectivity_directed_ring(self):
        topo = Topology(5, [(i, (i + 1) % 5) for i in range(5)])
        assert topo.is_strongly_connected()


class TestValidation:
    def test_validate_accepts_ring(self):
        ring(8).validate(require_doubly_stochastic=True)

    def test_validate_rejects_disconnected(self):
        topo = Topology(3, [(0, 1), (1, 0)])
        with pytest.raises(TopologyError, match="connected"):
            topo.validate()

    def test_doubly_stochastic_detection(self):
        assert ring(6).is_doubly_stochastic()
        irregular = Topology(3, [(0, 1), (1, 0), (1, 2), (2, 1)])
        assert not irregular.is_doubly_stochastic()

    def test_regularity(self):
        assert ring(5).is_regular()
        star_like = Topology(3, [(0, 1), (1, 0), (0, 2), (2, 0)])
        assert not star_like.is_regular()


class TestBipartite:
    def test_even_ring_is_bipartite(self):
        assert ring(6).is_bipartite()

    def test_odd_ring_is_not(self):
        assert not ring(5).is_bipartite()

    def test_bipartite_sets_partition(self):
        zeros, ones = ring(6).bipartite_sets()
        assert sorted(zeros + ones) == list(range(6))
        assert set(zeros) == {0, 2, 4}

    def test_bipartite_sets_raises_on_odd_ring(self):
        with pytest.raises(TopologyError):
            ring(5).bipartite_sets()
