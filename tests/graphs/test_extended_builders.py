"""Tests for the extended topology builders (torus, hypercube, random-regular)."""

import numpy as np
import pytest

from repro.graphs import (
    TopologyError,
    by_name,
    hypercube,
    random_regular,
    ring,
    spectral_gap,
    torus,
)


class TestTorus:
    def test_degree_four_everywhere(self):
        topo = torus(3, 4)
        for node in range(12):
            assert topo.in_degree(node, include_self=False) == 4

    def test_wraparound_edges(self):
        topo = torus(3, 3)
        assert (0, 2) in topo.edges  # row wrap
        assert (0, 6) in topo.edges  # column wrap

    def test_connected_and_doubly_stochastic(self):
        topo = torus(4, 4)
        topo.validate(require_doubly_stochastic=True)

    def test_diameter_formula(self):
        assert torus(4, 4).diameter() == 4.0  # rows//2 + cols//2

    def test_validation(self):
        with pytest.raises(TopologyError):
            torus(1, 5)

    def test_degenerate_two_by_two(self):
        topo = torus(2, 2)
        assert topo.is_strongly_connected()


class TestHypercube:
    def test_log_degree(self):
        topo = hypercube(4)
        assert topo.n == 16
        for node in range(16):
            assert topo.in_degree(node, include_self=False) == 4

    def test_log_diameter(self):
        assert hypercube(4).diameter() == 4.0

    def test_neighbors_differ_by_one_bit(self):
        topo = hypercube(3)
        for a, b in topo.edges:
            if a != b:
                assert bin(a ^ b).count("1") == 1

    def test_better_mixing_than_ring_at_same_size(self):
        assert spectral_gap(hypercube(4)) > spectral_gap(ring(16))

    def test_bipartite(self):
        assert hypercube(3).is_bipartite()

    def test_by_name_resolves_power_of_two(self):
        assert by_name("hypercube", 8).n == 8
        with pytest.raises(TopologyError):
            by_name("hypercube", 12)

    def test_validation(self):
        with pytest.raises(TopologyError):
            hypercube(0)


class TestRandomRegular:
    def test_regular_and_connected(self):
        topo = random_regular(12, 3, seed=1)
        assert topo.is_regular()
        assert topo.is_strongly_connected()
        assert topo.is_doubly_stochastic()

    def test_deterministic_given_seed(self):
        a = random_regular(10, 3, seed=5)
        b = random_regular(10, 3, seed=5)
        assert a.edges == b.edges

    def test_different_seeds_differ(self):
        a = random_regular(12, 3, seed=1)
        b = random_regular(12, 3, seed=2)
        assert a.edges != b.edges

    def test_parity_validation(self):
        with pytest.raises(TopologyError):
            random_regular(5, 3)  # odd n * odd degree

    def test_degree_bounds(self):
        with pytest.raises(TopologyError):
            random_regular(6, 1)
        with pytest.raises(TopologyError):
            random_regular(6, 6)

    def test_expander_like_gap(self):
        """Random regular graphs mix much better than rings."""
        topo = random_regular(16, 4, seed=3)
        assert spectral_gap(topo) > spectral_gap(ring(16))
