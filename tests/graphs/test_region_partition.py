"""Property tests for the sharded engine's region partitioner.

The region map is the ownership contract for the shared-memory
parameter plane (:mod:`repro.harness.sharded`), so these invariants
are load-bearing: exact-once coverage, determinism under membership
history permutation, departed workers staying departed, and the
conservative lookahead actually bounding every cross-shard edge.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import ring
from repro.graphs.topology import region_owner_map, region_partition
from repro.net.links import uniform_links
from repro.net.network import min_cross_shard_latency


@given(
    n=st.integers(min_value=2, max_value=48),
    n_shards=st.integers(min_value=1, max_value=12),
)
def test_exact_once_coverage_and_balance(n, n_shards):
    topo = ring(n)
    regions = region_partition(topo, n_shards)
    assert len(regions) == n_shards
    flat = [wid for region in regions for wid in region]
    # Every active worker in exactly one region, none invented.
    assert sorted(flat) == list(topo.active_nodes())
    assert len(flat) == len(set(flat))
    # Balance: populated region sizes differ by at most one.
    sizes = [len(region) for region in regions]
    populated = [size for size in sizes if size]
    if populated:
        assert max(populated) - min(populated) <= 1
    # Regions are sorted id blocks (the plane-ownership convention).
    for region in regions:
        assert list(region) == sorted(region)


@given(
    n=st.integers(min_value=4, max_value=24),
    n_shards=st.integers(min_value=1, max_value=6),
    data=st.data(),
)
@settings(max_examples=60)
def test_partition_ignores_membership_history_order(n, n_shards, data):
    # Two different removal orders ending at the same active set must
    # produce the identical region map: the partition is a function of
    # the active *set*, never of the path that produced it.
    topo = ring(n)
    departures = data.draw(
        st.lists(
            st.sampled_from(range(n)),
            min_size=0,
            max_size=min(3, n - 2),
            unique=True,
        )
    )
    forward = topo
    for node in departures:
        forward = forward.without_node(node)
    backward = topo
    for node in reversed(departures):
        backward = backward.without_node(node)
    assert region_partition(forward, n_shards) == region_partition(
        backward, n_shards
    )


@given(
    n=st.integers(min_value=4, max_value=24),
    n_shards=st.integers(min_value=1, max_value=6),
    data=st.data(),
)
@settings(max_examples=60)
def test_departed_worker_never_resurrects(n, n_shards, data):
    topo = ring(n)
    departed = data.draw(st.sampled_from(range(n)))
    shrunk = topo.without_node(departed)
    regions = region_partition(shrunk, n_shards)
    assert all(departed not in region for region in regions)
    owners = region_owner_map(regions)
    assert departed not in owners
    assert set(owners) == set(shrunk.active_nodes())


@given(
    n=st.integers(min_value=2, max_value=32),
    n_shards=st.integers(min_value=2, max_value=8),
)
def test_lookahead_bounds_every_cross_shard_edge(n, n_shards):
    topo = ring(n)
    regions = region_partition(topo, n_shards)
    links = uniform_links()
    lookahead = min_cross_shard_latency(links, regions, edges=topo.edges)
    owners = region_owner_map(regions)
    cross = [
        (src, dst)
        for src, dst in topo.edges
        if src != dst and owners[src] != owners[dst]
    ]
    if not cross:
        assert lookahead == float("inf")
        return
    assert lookahead > 0
    for src, dst in cross:
        assert links.link(src, dst).latency >= lookahead


def test_owner_map_rejects_duplicates():
    with pytest.raises(ValueError):
        region_owner_map(((0, 1), (1, 2)))


def test_partition_rejects_nonpositive_shards():
    with pytest.raises(ValueError):
        region_partition(ring(4), 0)
