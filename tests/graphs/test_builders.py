"""Tests for the topology builders (Figure 11, Figure 21, and generics)."""

import numpy as np
import pytest

from repro.graphs import (
    FIG21_MACHINE_OF_WORKER,
    TopologyError,
    bipartite_ring,
    by_name,
    chain,
    circulant,
    complete,
    directed_ring,
    double_ring,
    fig21_setting1,
    fig21_setting2,
    fig21_setting3,
    hierarchical,
    ring,
    ring_based,
    star,
)


class TestRing:
    def test_each_node_has_two_neighbors(self):
        topo = ring(8)
        for i in range(8):
            assert topo.in_degree(i, include_self=False) == 2

    def test_strongly_connected_and_regular(self):
        topo = ring(16)
        assert topo.is_strongly_connected()
        assert topo.is_regular()
        topo.validate(require_doubly_stochastic=True)

    def test_too_small_rejected(self):
        with pytest.raises(TopologyError):
            ring(1)


class TestRingBased:
    def test_degree_is_three(self):
        topo = ring_based(16)
        for i in range(16):
            assert topo.in_degree(i, include_self=False) == 3

    def test_distant_chord_present(self):
        topo = ring_based(16)
        assert (0, 8) in topo.edges
        assert (3, 11) in topo.edges

    def test_diameter_smaller_than_ring(self):
        assert ring_based(16).diameter() < ring(16).diameter()

    def test_odd_n_rejected(self):
        with pytest.raises(TopologyError):
            ring_based(7)


class TestDoubleRing:
    def test_structure(self):
        topo = double_ring(16)
        # Intra-half ring edge, intra-half chord, inter-half bridge.
        assert (0, 1) in topo.edges
        assert (0, 4) in topo.edges
        assert (0, 8) in topo.edges
        assert topo.is_strongly_connected()

    def test_denser_than_ring_based(self):
        dense = double_ring(16)
        sparse = ring_based(16)
        assert len(dense.edges) > len(sparse.edges)

    def test_half_must_be_even(self):
        with pytest.raises(TopologyError):
            double_ring(10)


class TestGenericBuilders:
    def test_complete_graph_degrees(self):
        topo = complete(5)
        for i in range(5):
            assert topo.in_degree(i, include_self=False) == 4

    def test_star_center_degree(self):
        topo = star(6, center=2)
        assert topo.in_degree(2, include_self=False) == 5
        assert topo.in_degree(0, include_self=False) == 1

    def test_chain_diameter(self):
        assert chain(7).diameter() == 6.0

    def test_directed_ring_one_way(self):
        topo = directed_ring(4)
        assert (0, 1) in topo.edges
        assert (1, 0) not in topo.edges

    def test_circulant_offsets(self):
        topo = circulant(8, [1, 4])
        assert (0, 1) in topo.edges
        assert (0, 4) in topo.edges
        assert (0, 2) not in topo.edges

    def test_circulant_rejects_zero_offsets(self):
        with pytest.raises(TopologyError):
            circulant(8, [0, 8])

    def test_bipartite_ring_is_bipartite(self):
        assert bipartite_ring(8).is_bipartite()
        with pytest.raises(TopologyError):
            bipartite_ring(7)

    def test_by_name_resolves(self):
        assert by_name("ring", 8).name == "ring(8)"
        assert by_name("ring-based", 8).name == "ring_based(8)"
        with pytest.raises(TopologyError):
            by_name("nonsense", 8)


class TestHierarchical:
    def test_intra_machine_complete(self):
        topo = hierarchical((3, 3, 2))
        # Workers 0, 1, 2 on machine 0 are all connected.
        for a in range(3):
            for b in range(3):
                if a != b:
                    assert (a, b) in topo.edges

    def test_inter_machine_edges_exist(self):
        topo = hierarchical((3, 3, 2))
        cross = [
            (a, b)
            for (a, b) in topo.edges
            if a != b and FIG21_MACHINE_OF_WORKER[a] != FIG21_MACHINE_OF_WORKER[b]
        ]
        assert len(cross) == 6  # 3 machine pairs, bidirectional

    def test_doubly_stochastic_despite_irregularity(self):
        topo = hierarchical((3, 3, 2))
        assert not topo.is_regular()
        assert topo.is_doubly_stochastic()

    def test_shared_vs_distinct_gateways_differ(self):
        shared = hierarchical((3, 3, 2), shared_gateway=True)
        distinct = hierarchical((3, 3, 2), shared_gateway=False)
        assert shared.edges != distinct.edges

    def test_validation_errors(self):
        with pytest.raises(TopologyError):
            hierarchical((5,))
        with pytest.raises(TopologyError):
            hierarchical((3, 0, 2))


class TestFig21:
    def test_setting1_has_paper_spectral_gap(self):
        from repro.graphs import spectral_gap

        assert spectral_gap(fig21_setting1()) == pytest.approx(2.0 / 3.0, abs=1e-9)

    def test_settings_2_and_3_much_smaller_gap(self):
        from repro.graphs import spectral_gap

        gap1 = spectral_gap(fig21_setting1())
        gap2 = spectral_gap(fig21_setting2())
        gap3 = spectral_gap(fig21_setting3())
        # Paper: 0.6667 vs 0.2682 / 0.2688 — the machine-aware graphs
        # have much smaller gaps but similar to one another.
        assert gap2 < gap1 / 2
        assert gap3 < gap1 / 2
        assert abs(gap2 - gap3) < 0.15

    def test_all_settings_connected_and_valid(self):
        for topo in (fig21_setting1(), fig21_setting2(), fig21_setting3()):
            topo.validate()
            assert topo.n == 8
