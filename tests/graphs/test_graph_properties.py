"""Property-based tests for graph invariants (hypothesis)."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Topology,
    circulant,
    is_doubly_stochastic,
    metropolis_hastings_weights,
    ring,
    spectral_gap,
    uniform_weights,
)


@given(n=st.integers(min_value=2, max_value=24))
def test_ring_always_valid(n):
    topo = ring(n)
    topo.validate(require_doubly_stochastic=True)
    assert topo.diameter() == n // 2


@given(
    n=st.integers(min_value=3, max_value=16),
    offsets=st.lists(st.integers(min_value=1, max_value=15), min_size=1, max_size=4),
)
def test_circulant_regular_and_doubly_stochastic(n, offsets):
    offsets = [o % n for o in offsets if o % n != 0]
    if not offsets:
        return
    topo = circulant(n, offsets)
    assert topo.is_regular()
    assert topo.is_doubly_stochastic()
    assert topo.is_strongly_connected() == nx.is_strongly_connected(
        nx.DiGraph([(a, b) for a, b in topo.edges if a != b])
    )


@st.composite
def random_connected_undirected(draw):
    """A random connected undirected graph as a bidirectional Topology."""
    n = draw(st.integers(min_value=2, max_value=12))
    # A random spanning tree guarantees connectivity.
    edges = set()
    for node in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=node - 1))
        edges.add((parent, node))
        edges.add((node, parent))
    # Extra random edges.
    n_extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(n_extra):
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if a != b:
            edges.add((a, b))
            edges.add((b, a))
    return Topology(n, edges, name="random")


@settings(max_examples=40)
@given(topo=random_connected_undirected())
def test_metropolis_hastings_doubly_stochastic_on_random_graphs(topo):
    W = metropolis_hastings_weights(topo)
    assert is_doubly_stochastic(W)
    assert np.allclose(W, W.T)


@settings(max_examples=40)
@given(topo=random_connected_undirected())
def test_uniform_weights_column_stochastic_on_random_graphs(topo):
    W = uniform_weights(topo)
    assert np.allclose(W.sum(axis=0), 1.0)
    assert np.all(W >= 0)


@settings(max_examples=40)
@given(topo=random_connected_undirected())
def test_path_matrix_matches_networkx(topo):
    D = topo.shortest_path_matrix()
    g = nx.DiGraph()
    g.add_nodes_from(range(topo.n))
    g.add_edges_from((a, b) for a, b in topo.edges if a != b)
    lengths = dict(nx.all_pairs_shortest_path_length(g))
    for i in range(topo.n):
        for j in range(topo.n):
            expected = lengths.get(i, {}).get(j, np.inf)
            assert D[i, j] == expected


@settings(max_examples=40)
@given(topo=random_connected_undirected())
def test_spectral_gap_in_unit_interval(topo):
    W = metropolis_hastings_weights(topo)
    gap = spectral_gap(W)
    assert -1e-9 <= gap <= 1.0 + 1e-9


@settings(max_examples=30)
@given(topo=random_connected_undirected())
def test_triangle_inequality_on_shortest_paths(topo):
    D = topo.shortest_path_matrix()
    n = topo.n
    for i in range(n):
        for j in range(n):
            for k in range(n):
                assert D[i, j] <= D[i, k] + D[k, j] + 1e-9
