"""Tests for weight constructions and spectral analysis."""

import numpy as np
import pytest

from repro.graphs import (
    Topology,
    chain,
    complete,
    consensus_distance,
    eigenvalue_moduli,
    hierarchical,
    is_column_stochastic,
    is_doubly_stochastic,
    lazy_weights,
    metropolis_hastings_weights,
    mixing_rounds,
    ring,
    ring_based,
    second_eigenvalue_modulus,
    spectral_gap,
    uniform_weights,
)


class TestUniformWeights:
    def test_matches_topology_default(self):
        topo = ring(6)
        assert np.allclose(uniform_weights(topo), topo.W)

    def test_without_self_loop(self):
        topo = ring(6)
        W = uniform_weights(topo, include_self=False)
        assert W[0, 0] == 0.0
        assert W[1, 0] == pytest.approx(0.5)

    def test_column_stochastic_always(self):
        topo = chain(5)
        assert is_column_stochastic(uniform_weights(topo))

    def test_doubly_stochastic_only_when_regular(self):
        assert is_doubly_stochastic(uniform_weights(ring(6)))
        assert not is_doubly_stochastic(uniform_weights(chain(5)))


class TestMetropolisHastings:
    def test_doubly_stochastic_on_irregular_graph(self):
        topo = chain(6)
        W = metropolis_hastings_weights(topo)
        assert is_doubly_stochastic(W)

    def test_symmetric(self):
        W = metropolis_hastings_weights(hierarchical((3, 3, 2)))
        assert np.allclose(W, W.T)

    def test_rejects_asymmetric_edges(self):
        topo = Topology(3, [(0, 1), (1, 2), (2, 0)])  # directed cycle
        with pytest.raises(ValueError, match="symmetric"):
            metropolis_hastings_weights(topo)

    def test_self_loop_absorbs_remainder(self):
        topo = ring(4)
        W = metropolis_hastings_weights(topo)
        assert np.allclose(W.sum(axis=0), 1.0)
        assert np.all(np.diag(W) > 0)


class TestLazyWeights:
    def test_halfway_blend(self):
        W = uniform_weights(ring(4))
        lazy = lazy_weights(W, 0.5)
        assert np.allclose(lazy, 0.5 * np.eye(4) + 0.5 * W)

    def test_preserves_double_stochasticity(self):
        W = uniform_weights(ring(6))
        assert is_doubly_stochastic(lazy_weights(W, 0.3))

    def test_laziness_bounds(self):
        with pytest.raises(ValueError):
            lazy_weights(np.eye(2), 0.0)
        with pytest.raises(ValueError):
            lazy_weights(np.eye(2), 1.5)


class TestSpectral:
    def test_complete_graph_with_self_loops_mixes_instantly(self):
        topo = complete(4)
        # W = J/4: one eigenvalue 1, rest 0.
        assert spectral_gap(topo) == pytest.approx(1.0)
        assert second_eigenvalue_modulus(topo) == pytest.approx(0.0, abs=1e-9)

    def test_ring_gap_shrinks_with_size(self):
        assert spectral_gap(ring(16)) < spectral_gap(ring(8))

    def test_ring_based_beats_ring(self):
        assert spectral_gap(ring_based(16)) > spectral_gap(ring(16))

    def test_eigenvalue_moduli_sorted_descending(self):
        moduli = eigenvalue_moduli(ring(8))
        assert moduli[0] == pytest.approx(1.0)
        assert np.all(np.diff(moduli) <= 1e-12)

    def test_mixing_rounds_finite_for_connected_aperiodic(self):
        rounds = mixing_rounds(ring(8))
        assert 0 < rounds < np.inf

    def test_mixing_rounds_infinite_without_gap(self):
        # Identity never mixes.
        assert mixing_rounds(np.eye(4)) == np.inf

    def test_mixing_rounds_zero_for_instant(self):
        assert mixing_rounds(complete(4)) == 0.0

    def test_spectral_gap_accepts_raw_matrix(self):
        W = uniform_weights(ring(6))
        assert spectral_gap(W) == pytest.approx(spectral_gap(ring(6)))


class TestConsensusDistance:
    def test_zero_when_identical(self):
        x = np.ones((4, 10))
        assert consensus_distance(x) == 0.0

    def test_positive_when_spread(self):
        x = np.array([[0.0, 0.0], [2.0, 2.0]])
        assert consensus_distance(x) == pytest.approx(1.0)

    def test_shrinks_under_gossip_averaging(self):
        rng = np.random.default_rng(0)
        topo = ring(8)
        x = rng.normal(size=(8, 5))
        before = consensus_distance(x)
        after = consensus_distance(topo.W.T @ x)
        assert after < before
