"""Figure 21: spectral gaps of the three topology settings.

Paper values: 0.6667 (symmetric ring-based baseline), 0.2682 and
0.2688 (machine-aware graphs).  Setting 1 is matched exactly; the
machine-aware drawings are under-specified in the paper, so we verify
the qualitative claim (much smaller, similar to each other).
"""

from repro.harness import fig21_spectral_gaps


def test_fig21_spectral_gaps(benchmark, record_figure):
    result = benchmark.pedantic(fig21_spectral_gaps, rounds=1, iterations=1)
    record_figure(result)
