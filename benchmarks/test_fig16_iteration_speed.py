"""Figure 16: iteration-speed speedup from backup workers.

Paper claim: under 6x random slowdown, backup workers speed up
iteration throughput by up to 1.81x over standard decentralized
training (CNN workload).
"""

from repro.harness import fig16_iteration_speed


def test_fig16_iteration_speed(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: fig16_iteration_speed(preset="bench", workload_name="cnn"),
        rounds=1,
        iterations=1,
    )
    record_figure(result)
