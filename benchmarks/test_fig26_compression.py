"""Figure 26 (extension): update compression ablation.

Sweeps the compression plane (top-k with error feedback, int8
quantization) across hop, allreduce and ps-async on
bandwidth-constrained links, asserting the payload-accurate pricing
claims: compressed bytes track the schemes' arithmetic, message
patterns are unchanged, and aggressive top-k measurably buys back the
bandwidth-bound allreduce ring's wall-clock.  The full-figure elapsed
time is the compression number BENCH_BASELINE.json tracks across PRs.
"""

from repro.harness import fig26_compression


def test_fig26_compression(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: fig26_compression(preset="bench", workload_name="svm"),
        rounds=1,
        iterations=1,
    )
    record_figure(result)
