"""Figure 18: per-iteration duration with skipping, 4x deterministic
slowdown.

Paper claim: the straggler's influence on iteration duration drops from
~3.9x to ~1.1x when skipping iterations is enabled.
"""

from repro.harness import fig18_skip_duration


def test_fig18_skip_duration(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: fig18_skip_duration(preset="bench", workload_name="cnn"),
        rounds=1,
        iterations=1,
    )
    record_figure(result)
