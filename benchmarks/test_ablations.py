"""Ablation benchmarks: design choices DESIGN.md calls out.

These are not paper figures; they probe claims the paper makes in
prose (Sections 3.2, 4.4, 6.1, 5) and the central Theorem 2 knob.
"""

import pytest

from repro.harness.ablations import ALL_ABLATIONS


@pytest.mark.parametrize("name", sorted(ALL_ABLATIONS))
def test_ablation(name, benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: ALL_ABLATIONS[name](preset="bench"), rounds=1, iterations=1
    )
    record_figure(result)
