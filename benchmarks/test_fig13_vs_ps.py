"""Figure 13: decentralized training vs a BSP parameter server.

Paper claim: decentralized training, in either homogeneous or
heterogeneous environments, converges much faster on wall-clock time
than a homogeneous PS (whose NIC is the hotspot).
"""

from repro.harness import fig13_vs_ps


def test_fig13_cnn(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: fig13_vs_ps(preset="bench", workload_name="cnn"),
        rounds=1,
        iterations=1,
    )
    record_figure(result, "cnn")


def test_fig13_svm(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: fig13_vs_ps(preset="bench", workload_name="svm"),
        rounds=1,
        iterations=1,
    )
    record_figure(result, "svm")
