"""Figure 14: backup workers, loss vs wall-clock, 6x random slowdown.

Paper claim: with one backup worker, training converges faster than
standard decentralized training on wall-clock time, on both the
ring-based and double-ring graphs.
"""

from repro.harness import fig14_backup_time


def test_fig14_cnn(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: fig14_backup_time(preset="bench", workload_name="cnn"),
        rounds=1,
        iterations=1,
    )
    record_figure(result, "cnn")


def test_fig14_svm(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: fig14_backup_time(preset="bench", workload_name="svm"),
        rounds=1,
        iterations=1,
    )
    record_figure(result, "svm")
