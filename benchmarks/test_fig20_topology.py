"""Figure 20: topology comparison in a heterogeneous deployment.

Paper claim: machine-aware graphs with much smaller spectral gaps
nevertheless outperform the symmetric ring-based baseline on
wall-clock time, while per-iteration convergence stays similar.
"""

from repro.harness import fig20_topology


def test_fig20_topology(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: fig20_topology(preset="bench", workload_name="cnn"),
        rounds=1,
        iterations=1,
    )
    record_figure(result)
