"""Figure 24 (extension): simulator scaling study.

Sweeps 8 -> 128 workers across hop, ring all-reduce and the async
parameter server, asserting the at-scale claims: hop's simulated
iteration time is flat in cluster size while the PS hotspot degrades
linearly, decentralized wins at the largest scale, and the real cost
of simulating hop stays near-linear in workers (the engine-regression
tripwire).  The 64-worker hop cell's elapsed time is the scaling
number BENCH_BASELINE.json tracks across PRs.
"""

from repro.harness import fig24_scaling


def test_fig24_scaling(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: fig24_scaling(preset="bench", workload_name="svm"),
        rounds=1,
        iterations=1,
    )
    record_figure(result)
