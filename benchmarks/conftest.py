"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures/tables at the
``bench`` preset, asserts its shape checks, and writes the rendered
rows/series to ``benchmarks/results/<figure>.txt`` (the artifacts
EXPERIMENTS.md records).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_figure(results_dir):
    """Persist a FigureResult's render and assert its shape checks."""

    def _record(result, suffix: str = "") -> None:
        name = result.figure_id + (f"_{suffix}" if suffix else "")
        path = results_dir / f"{name}.txt"
        path.write_text(result.render() + "\n")
        print()
        print(result.render())
        assert result.passed(), (
            f"{result.figure_id} shape checks failed: {result.failures()}\n"
            f"{result.render()}"
        )

    return _record
