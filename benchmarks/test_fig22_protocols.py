"""Figure 22 (extension): registry-wide protocol comparison.

Claims under the paper's 6x random slowdown: Prague-style partial
all-reduce degrades less than global all-reduce (group-local barriers),
and momentum-tracking gossip converges at least as well as plain
AD-PSGD (SVM workload).
"""

from repro.harness import fig22_protocols


def test_fig22_protocols(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: fig22_protocols(preset="bench", workload_name="svm"),
        rounds=1,
        iterations=1,
    )
    record_figure(result)
