"""Figure 23 (extension): protocol x scenario-family grid.

Runs every major protocol under every scenario-engine family (the
paper's random recipe, bursty Markov stragglers, tiered hardware,
diurnal interference, crash-restart) and asserts the robustness
claims: hop degrades less than the global barrier under random
slowdowns, and a crash-restart's blast radius stays inside Theorem 2's
iteration-gap bound while its lifecycle is surfaced in the run stats.
"""

from repro.harness import fig23_scenario_grid


def test_fig23_scenario_grid(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: fig23_scenario_grid(preset="bench", workload_name="svm"),
        rounds=1,
        iterations=1,
    )
    record_figure(result)
