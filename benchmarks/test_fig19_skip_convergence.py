"""Figure 19: skipping iterations, convergence on wall-clock.

Paper claim: skipping beats the plain backup-worker setting, and
allowing jumps of up to 10 iterations converges fastest (more than 2x
over the standard decentralized system).
"""

from repro.harness import fig19_skip_convergence


def test_fig19_cnn(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: fig19_skip_convergence(preset="bench", workload_name="cnn"),
        rounds=1,
        iterations=1,
    )
    record_figure(result, "cnn")


def test_fig19_svm(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: fig19_skip_convergence(preset="bench", workload_name="svm"),
        rounds=1,
        iterations=1,
    )
    record_figure(result, "svm")
