"""Figure 17: bounded staleness under 6x random slowdown.

Paper claim: a staleness bound of 5 achieves a similar speedup to
backup workers, and both outperform standard decentralized training.
"""

from repro.harness import fig17_staleness


def test_fig17_staleness(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: fig17_staleness(preset="bench", workload_name="cnn"),
        rounds=1,
        iterations=1,
    )
    record_figure(result)
