"""Figure 25 (extension): membership churn study.

Sweeps Poisson join/leave rates across the elastic protocols
(hop/backup, adpsgd, partial-allreduce), asserting the membership
plane's claims: every never-leaving worker finishes, repaired
topologies keep a positive spectral gap, rate 0 stays bit-static, and
rewire control cost grows with churn.  The full-figure elapsed time is
the churn number BENCH_BASELINE.json tracks across PRs.
"""

from repro.harness import fig25_churn


def test_fig25_churn(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: fig25_churn(preset="bench", workload_name="svm"),
        rounds=1,
        iterations=1,
    )
    record_figure(result)
