"""Figure 15: backup workers, loss vs steps.

Paper claim: receiving one less update hurts per-iteration progress
only insignificantly compared to the wall-clock gain.
"""

from repro.harness import fig15_backup_steps


def test_fig15_cnn(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: fig15_backup_steps(preset="bench", workload_name="cnn"),
        rounds=1,
        iterations=1,
    )
    record_figure(result, "cnn")


def test_fig15_svm(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: fig15_backup_steps(preset="bench", workload_name="svm"),
        rounds=1,
        iterations=1,
    )
    record_figure(result, "svm")
