"""Table 1: theoretical iteration-gap bounds vs observed gaps.

Paper claims encoded as checks: observed gaps never exceed the
per-setting bounds (Theorems 1 and 2, the NOTIFY-ACK analysis, the
staleness bound), and the extra slack of the looser settings is
actually exploited under a deterministic straggler.
"""

from repro.harness import table1_gap_bounds


def test_table1_gap_bounds(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: table1_gap_bounds(preset="bench"), rounds=1, iterations=1
    )
    record_figure(result)
