"""Figure 12: effect of 6x random slowdown on three graph densities.

Paper claim: no graph is immune to random slowdown, and sparser graphs
suffer less.
"""

from repro.harness import fig12_heterogeneity


def test_fig12_cnn(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: fig12_heterogeneity(preset="bench", workload_name="cnn"),
        rounds=1,
        iterations=1,
    )
    record_figure(result, "cnn")


def test_fig12_svm(benchmark, record_figure):
    result = benchmark.pedantic(
        lambda: fig12_heterogeneity(preset="bench", workload_name="svm"),
        rounds=1,
        iterations=1,
    )
    record_figure(result, "svm")
