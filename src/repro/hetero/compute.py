"""Per-iteration compute-time model.

Gradient computation is numerically real but its *duration* is
simulated: ``duration = base_time(worker) * slowdown(worker, iter) *
noise``.  Base times may differ per worker (hardware heterogeneity);
the slowdown model injects the paper's random/deterministic recipes;
small log-normal noise keeps iterations from being artificially
identical.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.hetero.slowdown import NoSlowdown, SlowdownModel
from repro.sim.rng import RngStreams


class ComputeModel:
    """Compute-time oracle for workers.

    Args:
        base_time: Scalar (same for all) or per-worker sequence of
            baseline seconds per iteration.
        slowdown: Heterogeneity injection model.
        streams: RNG registry for the jitter draws.
        jitter: Log-normal sigma for iteration-time noise (0 disables).
        n_workers: Worker count (needed when ``base_time`` is scalar).
    """

    def __init__(
        self,
        base_time: Union[float, Sequence[float]] = 0.1,
        slowdown: Optional[SlowdownModel] = None,
        streams: Optional[RngStreams] = None,
        jitter: float = 0.0,
        n_workers: Optional[int] = None,
    ) -> None:
        if np.isscalar(base_time):
            if n_workers is None:
                raise ValueError("n_workers required with scalar base_time")
            self.base_times = np.full(n_workers, float(base_time))
        else:
            self.base_times = np.asarray(base_time, dtype=float)
        if np.any(self.base_times <= 0):
            raise ValueError("base compute times must be positive")
        if jitter < 0:
            raise ValueError("jitter must be >= 0")
        self.slowdown = slowdown or NoSlowdown()
        self.jitter = float(jitter)
        self._streams = streams or RngStreams(0)
        # Clean homogeneous-time fast path: with no slowdown model and
        # no jitter, duration() is a constant per worker — precompute
        # the floats so the per-iteration call is one list index.
        self._static = (
            [float(t) for t in self.base_times]
            if type(self.slowdown) is NoSlowdown and self.jitter == 0.0
            else None
        )

    @property
    def n_workers(self) -> int:
        return len(self.base_times)

    def duration(self, worker: int, iteration: int) -> float:
        """Simulated seconds of gradient computation for this iteration."""
        if self._static is not None:
            return self._static[worker]
        base = self.base_times[worker]
        factor = self.slowdown.factor(worker, iteration)
        noise = 1.0
        if self.jitter > 0.0:
            rng = self._streams.stream("jitter", worker)
            noise = float(np.exp(rng.normal(0.0, self.jitter)))
        return float(base * factor * noise)

    def describe(self) -> str:
        uniform = np.all(self.base_times == self.base_times[0])
        base = (
            f"{self.base_times[0]:g}s"
            if uniform
            else f"per-worker {self.base_times.tolist()}"
        )
        return f"compute={base}, slowdown={self.slowdown.describe()}"

    def __repr__(self) -> str:
        return f"<ComputeModel {self.describe()}>"
