"""Heterogeneity substrate: compute-time models and slowdown injection."""

from repro.hetero.compute import ComputeModel
from repro.hetero.slowdown import (
    ComposedSlowdown,
    DeterministicSlowdown,
    NoSlowdown,
    RandomSlowdown,
    SlowdownModel,
)

__all__ = [
    "ComposedSlowdown",
    "ComputeModel",
    "DeterministicSlowdown",
    "NoSlowdown",
    "RandomSlowdown",
    "SlowdownModel",
]
