"""Slowdown models: the paper's heterogeneity injection recipes.

Section 7.3.1: "randomly slowing down every worker by 6 times at a
probability of 1/n in each iteration" -> :class:`RandomSlowdown`.

Section 7.3.5: "one worker is deterministically chosen for a 4 times
slowdown" -> :class:`DeterministicSlowdown`.

A model maps ``(worker, iteration) -> multiplicative factor`` applied
to the iteration's compute time.  Factors compose multiplicatively via
:class:`ComposedSlowdown`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.sim.rng import RngStreams


class SlowdownModel:
    """Base class: multiplicative compute-time factor per (worker, iter)."""

    def factor(self, worker: int, iteration: int) -> float:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class NoSlowdown(SlowdownModel):
    """Homogeneous execution."""

    def factor(self, worker: int, iteration: int) -> float:
        return 1.0

    def describe(self) -> str:
        return "none"


class RandomSlowdown(SlowdownModel):
    """Each worker is slowed ``factor``x w.p. ``probability`` per iteration.

    The paper uses ``factor=6`` and ``probability=1/n``.  Draws are
    memoized per (worker, iteration) so repeated queries (e.g. for
    tracing) see consistent values, and each worker has its own RNG
    stream for reproducibility.
    """

    def __init__(
        self,
        streams: RngStreams,
        factor: float = 6.0,
        probability: float = 1.0 / 16.0,
    ) -> None:
        if factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1, got {factor}")
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self._streams = streams
        self.slow_factor = float(factor)
        self.probability = float(probability)
        self._memo: Dict[tuple, float] = {}

    def factor(self, worker: int, iteration: int) -> float:
        key = (worker, iteration)
        if key not in self._memo:
            rng = self._streams.stream("slowdown", worker)
            draw = rng.random()
            self._memo[key] = self.slow_factor if draw < self.probability else 1.0
        return self._memo[key]

    def describe(self) -> str:
        return f"random({self.slow_factor:g}x, p={self.probability:g})"


class DeterministicSlowdown(SlowdownModel):
    """Fixed per-worker slowdowns (persistent stragglers).

    ``factors={3: 4.0}`` makes worker 3 permanently 4x slower — the
    paper's Figure 18/19 setting.
    """

    def __init__(self, factors: Dict[int, float]) -> None:
        for worker, factor in factors.items():
            if factor < 1.0:
                raise ValueError(
                    f"worker {worker} slowdown must be >= 1, got {factor}"
                )
        self.factors = dict(factors)

    def factor(self, worker: int, iteration: int) -> float:
        return self.factors.get(worker, 1.0)

    def describe(self) -> str:
        inner = ", ".join(f"{w}:{f:g}x" for w, f in sorted(self.factors.items()))
        return f"deterministic({inner})"


class ComposedSlowdown(SlowdownModel):
    """Product of several slowdown models (random on top of persistent)."""

    def __init__(self, models: Sequence[SlowdownModel]) -> None:
        if not models:
            raise ValueError("ComposedSlowdown needs at least one model")
        self.models = list(models)

    def factor(self, worker: int, iteration: int) -> float:
        result = 1.0
        for model in self.models:
            result *= model.factor(worker, iteration)
        return result

    def describe(self) -> str:
        return " * ".join(model.describe() for model in self.models)
