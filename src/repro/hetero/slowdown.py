"""Slowdown models: the paper's heterogeneity injection recipes.

Section 7.3.1: "randomly slowing down every worker by 6 times at a
probability of 1/n in each iteration" -> :class:`RandomSlowdown`.

Section 7.3.5: "one worker is deterministically chosen for a 4 times
slowdown" -> :class:`DeterministicSlowdown`.

A model maps ``(worker, iteration) -> multiplicative factor`` applied
to the iteration's compute time.  Factors compose multiplicatively via
:class:`ComposedSlowdown`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.sim.rng import RngStreams


class SlowdownModel:
    """Base class: multiplicative compute-time factor per (worker, iter).

    Contract (relied on by the scenario engine and its property tests):
    ``factor`` must be >= 1, deterministic given the model's seed, and
    independent of the order in which ``(worker, iteration)`` pairs are
    queried.
    """

    def factor(self, worker: int, iteration: int) -> float:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class NoSlowdown(SlowdownModel):
    """Homogeneous execution."""

    def factor(self, worker: int, iteration: int) -> float:
        return 1.0

    def describe(self) -> str:
        return "none"


class RandomSlowdown(SlowdownModel):
    """Each worker is slowed ``factor``x w.p. ``probability`` per iteration.

    The paper uses ``factor=6`` and ``probability=1/n``.  Each worker
    draws from its own counter-based PCG64 stream: the draw for
    ``(worker, iteration)`` is the ``iteration``-th output of the
    worker's generator, obtained by advancing to that counter rather
    than by consuming a shared stateful stream.  This makes queries
    stateless — no per-(worker, iteration) memo that grows without
    bound over long runs — and, because PCG64 consumes one state step
    per ``random()`` call, it produces *exactly* the factors the
    original memoized implementation produced for dense in-order
    access (every non-skipping run; the regression test pins this).
    Runs using hop's skip/jump policy query a sparse iteration
    subsequence, where the legacy scheme handed out the q-th draw for
    the q-th *query*; those runs now get the properly
    iteration-indexed draw instead, so their same-seed factors
    changed (to the semantics the iteration index always implied).
    """

    def __init__(
        self,
        streams: RngStreams,
        factor: float = 6.0,
        probability: float = 1.0 / 16.0,
    ) -> None:
        if factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1, got {factor}")
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        self._streams = streams
        self.slow_factor = float(factor)
        self.probability = float(probability)
        #: Expanded per-worker PCG64 start states (seeding is the
        #: expensive part; the state dict is O(workers), not O(iters)).
        self._worker_states: Dict[int, dict] = {}
        #: One reusable bit generator + wrapper; its state is
        #: overwritten on every query, so no draw history survives.
        self._bits = np.random.PCG64(0)
        self._gen = np.random.Generator(self._bits)

    def _worker_state(self, worker: int) -> dict:
        # fresh() derives the same seed streams.stream("slowdown",
        # worker) used, so factors are unchanged for existing master
        # seeds; only the expanded PCG64 start state is kept.
        if worker not in self._worker_states:
            self._worker_states[worker] = self._streams.fresh(
                "slowdown", worker
            ).bit_generator.state
        return self._worker_states[worker]

    def factor(self, worker: int, iteration: int) -> float:
        if iteration < 0:
            raise ValueError(f"iteration must be >= 0, got {iteration}")
        self._bits.state = self._worker_state(worker)
        self._bits.advance(iteration)
        draw = self._gen.random()
        return self.slow_factor if draw < self.probability else 1.0

    def describe(self) -> str:
        return f"random({self.slow_factor:g}x, p={self.probability:g})"


class DeterministicSlowdown(SlowdownModel):
    """Fixed per-worker slowdowns (persistent stragglers).

    ``factors={3: 4.0}`` makes worker 3 permanently 4x slower — the
    paper's Figure 18/19 setting.
    """

    def __init__(self, factors: Dict[int, float]) -> None:
        for worker, factor in factors.items():
            if factor < 1.0:
                raise ValueError(
                    f"worker {worker} slowdown must be >= 1, got {factor}"
                )
        self.factors = dict(factors)

    def factor(self, worker: int, iteration: int) -> float:
        return self.factors.get(worker, 1.0)

    def describe(self) -> str:
        inner = ", ".join(f"{w}:{f:g}x" for w, f in sorted(self.factors.items()))
        return f"deterministic({inner})"


class ComposedSlowdown(SlowdownModel):
    """Product of several slowdown models (random on top of persistent)."""

    def __init__(self, models: Sequence[SlowdownModel]) -> None:
        if not models:
            raise ValueError("ComposedSlowdown needs at least one model")
        self.models = list(models)

    def factor(self, worker: int, iteration: int) -> float:
        result = 1.0
        for model in self.models:
            result *= model.factor(worker, iteration)
        return result

    def describe(self) -> str:
        return " * ".join(model.describe() for model in self.models)
