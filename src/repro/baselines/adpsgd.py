"""AD-PSGD [Lian et al. 2018]: asynchronous decentralized gossip SGD.

Each worker repeatedly computes a gradient and *atomically averages*
its parameters with one randomly selected neighbor, then applies the
gradient.  Unconstrained, two concurrent averagings can deadlock on
each other's parameter locks; the published fix — which Hop's Section 5
criticizes as restrictive — partitions workers into *active* (initiate
gossip) and *passive* (serve gossip) sets, which requires the
communication graph to be bipartite.

We implement exactly that active/passive bipartite scheme: passive
workers' parameters are guarded by locks; active workers grab the lock,
pay a parameter round trip, and write back the average.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.cluster import DeadlockError, TrainingRun
from repro.core.gap import GapTracker
from repro.graphs.spectral import consensus_distance
from repro.graphs.topology import Topology
from repro.hetero.compute import ComputeModel
from repro.ml.data import Batcher, Dataset
from repro.ml.optim import SGD
from repro.net.links import LinkModel, uniform_links
from repro.net.message import params_message_size
from repro.sim.engine import Environment
from repro.sim.resources import Resource
from repro.sim.rng import RngStreams
from repro.sim.trace import StatAccumulator, Tracer


class ADPSGDCluster:
    """Asynchronous decentralized parallel SGD on a bipartite graph.

    Args:
        topology: Must be bipartite (checked); the two color classes
            become the active and passive sets.
        model_factory / dataset / optimizer: Same conventions as
            :class:`HopCluster`.
        links: Network timing for the gossip round trips.
        compute_model: Worker compute-time oracle.
    """

    def __init__(
        self,
        topology: Topology,
        model_factory: Callable[[np.random.Generator], object],
        dataset: Dataset,
        optimizer: Optional[SGD] = None,
        links: Optional[LinkModel] = None,
        compute_model: Optional[ComputeModel] = None,
        batch_size: int = 32,
        max_iter: int = 100,
        seed: int = 0,
        update_size: Optional[float] = None,
        evaluate: bool = True,
    ) -> None:
        topology.validate()
        self.active_set, self.passive_set = topology.bipartite_sets()
        self.topology = topology
        self.model_factory = model_factory
        self.dataset = dataset
        self.optimizer_proto = optimizer or SGD(lr=0.1, momentum=0.9)
        self.links = links or uniform_links()
        self.batch_size = batch_size
        self.max_iter = max_iter
        self.seed = seed
        self.streams = RngStreams(seed)
        self.compute_model = compute_model or ComputeModel(
            base_time=0.1, n_workers=topology.n
        )
        self._update_size = update_size
        self.evaluate = evaluate

    def _worker(
        self,
        wid: int,
        env: Environment,
        params: Dict[int, np.ndarray],
        locks: Dict[int, Resource],
        model,
        optimizer,
        batcher: Batcher,
        tracer: Tracer,
        gap: GapTracker,
        done: np.ndarray,
        update_size: float,
        gossip_count: List[int],
    ):
        is_active = wid in self.active_set
        rng = self.streams.stream("gossip", wid)
        neighbors = [
            j
            for j in self.topology.out_neighbors(wid, include_self=False)
            if (j in self.passive_set) == is_active or not is_active
        ]
        passive_neighbors = [j for j in neighbors if j in self.passive_set]

        for k in range(self.max_iter):
            start = env.now
            gap.record(wid, k)
            model.set_params(params[wid])
            xb, yb = batcher.next_batch()
            loss, grad = model.loss_and_grad(xb, yb)
            yield env.timeout(self.compute_model.duration(wid, k))

            if is_active and passive_neighbors:
                # Atomic averaging with a random passive neighbor.
                partner = int(
                    passive_neighbors[rng.integers(0, len(passive_neighbors))]
                )
                request = locks[partner].request()
                yield request
                try:
                    yield env.timeout(
                        self.links.round_trip(wid, partner, update_size)
                    )
                    average = 0.5 * (params[wid] + params[partner])
                    params[wid] = average.copy()
                    params[partner] = average.copy()
                    gossip_count[0] += 1
                finally:
                    locks[partner].release(request)

            # Apply the (pre-averaging) gradient to the averaged params.
            params[wid] = params[wid] + optimizer.step(params[wid], grad, k)
            tracer.log(f"loss/{wid}", env.now, loss)
            tracer.log(f"duration/{wid}", env.now, env.now - start)
        done[wid] = True

    def run(self) -> TrainingRun:
        env = Environment()
        tracer = Tracer()
        n = self.topology.n
        gap = GapTracker(n)
        models = [
            self.model_factory(self.streams.fresh("model-init"))
            for _ in range(n)
        ]
        update_size = (
            self._update_size
            if self._update_size is not None
            else params_message_size(models[0].dim)
        )
        params: Dict[int, np.ndarray] = {
            wid: models[wid].get_params() for wid in range(n)
        }
        locks = {wid: Resource(env, capacity=1) for wid in self.passive_set}
        done = np.zeros(n, dtype=bool)
        gossip_count = [0]
        durations: List[StatAccumulator] = []

        for wid in range(n):
            durations.append(StatAccumulator())
            env.process(
                self._worker(
                    wid,
                    env,
                    params,
                    locks,
                    models[wid],
                    self.optimizer_proto.clone(),
                    Batcher(
                        self.dataset.x_train,
                        self.dataset.y_train,
                        self.batch_size,
                        self.streams.stream("data", wid),
                    ),
                    tracer,
                    gap,
                    done,
                    update_size,
                    gossip_count,
                ),
                name=f"adpsgd-{wid}",
            )
        env.run()
        if not done.all():
            raise DeadlockError("AD-PSGD workers never finished")

        final_stack = np.stack([params[wid] for wid in range(n)])
        final_params = final_stack.mean(axis=0)
        final_loss = final_accuracy = None
        if self.evaluate:
            models[0].set_params(final_params)
            final_loss, final_accuracy = models[0].evaluate(
                self.dataset.x_test, self.dataset.y_test
            )

        worker_stats = []
        for wid in range(n):
            records = tracer.raw(f"duration/{wid}")
            values = [v for _, v in records]
            worker_stats.append(
                {
                    "wid": wid,
                    "iterations_completed": self.max_iter,
                    "iteration_duration_mean": float(np.mean(values)),
                    "iteration_duration_max": float(np.max(values)),
                    "recv_wait_mean": 0.0,
                    "loss_mean": 0.0,
                }
            )

        return TrainingRun(
            protocol="adpsgd",
            config_description=(
                f"AD-PSGD bipartite gossip, |active|={len(self.active_set)}, "
                f"gossips={gossip_count[0]}"
            ),
            topology_name=self.topology.name,
            n_workers=n,
            max_iter=self.max_iter,
            wall_time=env.now,
            tracer=tracer,
            gap=gap,
            iterations_completed=[self.max_iter] * n,
            iterations_skipped=[0] * n,
            messages_sent=2 * gossip_count[0],
            bytes_sent=2.0 * gossip_count[0] * update_size,
            final_params=final_params,
            final_loss=final_loss,
            final_accuracy=final_accuracy,
            consensus=consensus_distance(final_stack),
            worker_stats=worker_stats,
        )
