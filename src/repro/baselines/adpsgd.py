"""AD-PSGD [Lian et al. 2018]: asynchronous decentralized gossip SGD.

Each worker repeatedly computes a gradient and *atomically averages*
its parameters with one randomly selected neighbor, then applies the
gradient.  Unconstrained, two concurrent averagings can deadlock on
each other's parameter locks; the published fix — which Hop's Section 5
criticizes as restrictive — partitions workers into *active* (initiate
gossip) and *passive* (serve gossip) sets, which requires the
communication graph to be bipartite.

We implement exactly that active/passive bipartite scheme: passive
workers' parameters are guarded by locks; active workers grab the lock,
pay a parameter round trip, and write back the average.

:class:`ADPSGDCluster` is registered as protocol ``"adpsgd"``; the
momentum-tracking protocol (:mod:`repro.protocols.momentum_tracking`)
reuses its gossip pattern.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graphs.topology import Topology
from repro.ml.data import Batcher
from repro.ml.optim import SGD
from repro.net.links import LinkModel, uniform_links
from repro.protocols.base import ProtocolCluster, ProtocolRuntime
from repro.protocols.registry import register_protocol, spec_common_kwargs
from repro.sim.resources import Resource


class ADPSGDCluster(ProtocolCluster):
    """Asynchronous decentralized parallel SGD on a bipartite graph.

    Args:
        topology: Must be bipartite (checked); the two color classes
            become the active and passive sets.
        model_factory / dataset / optimizer: Same conventions as
            :class:`~repro.protocols.base.ProtocolCluster`.
        links: Network timing for the gossip round trips.
        compute_model: Worker compute-time oracle.
    """

    protocol = "adpsgd"

    def __init__(
        self,
        topology: Topology,
        model_factory,
        dataset,
        optimizer: Optional[SGD] = None,
        links: Optional[LinkModel] = None,
        compute_model=None,
        batch_size: int = 32,
        max_iter: int = 100,
        seed: int = 0,
        update_size: Optional[float] = None,
        evaluate: bool = True,
        trace_channels=None,
    ) -> None:
        topology.validate()
        self.active_set, self.passive_set = topology.bipartite_sets()
        super().__init__(
            n_workers=topology.n,
            model_factory=model_factory,
            dataset=dataset,
            optimizer=optimizer,
            batch_size=batch_size,
            compute_model=compute_model,
            max_iter=max_iter,
            seed=seed,
            update_size=update_size,
            evaluate=evaluate,
            trace_channels=trace_channels,
        )
        self.topology = topology
        self.links = links or uniform_links()

    # ------------------------------------------------------------------
    # Gossip machinery (shared with MomentumTrackingCluster)
    # ------------------------------------------------------------------
    def _passive_partners(self, wid: int) -> Tuple[bool, List[int]]:
        """``(is_active, eligible passive neighbors)`` for ``wid``."""
        is_active = wid in self.active_set
        neighbors = [
            j
            for j in self.topology.out_neighbors(wid, include_self=False)
            if (j in self.passive_set) == is_active or not is_active
        ]
        return is_active, [j for j in neighbors if j in self.passive_set]

    def gossip_payload(self, update_size: float) -> float:
        """Bytes sent per gossip direction (subclasses may enlarge)."""
        return update_size

    def _average_state(
        self, wid: int, partner: int, params: Dict[int, np.ndarray]
    ) -> None:
        """Write back the pairwise average (the atomic-averaging step)."""
        average = 0.5 * (params[wid] + params[partner])
        params[wid] = average.copy()
        params[partner] = average.copy()

    def _gossip(
        self,
        runtime: ProtocolRuntime,
        wid: int,
        partner: int,
        params: Dict[int, np.ndarray],
        locks: Dict[int, Resource],
        gossip_count: List[int],
    ):
        """Lock ``partner``, pay the round trip, average, release."""
        request = locks[partner].request()
        yield request
        try:
            yield runtime.env.timeout(
                self.links.round_trip(
                    wid, partner, self.gossip_payload(runtime.update_size)
                )
            )
            self._average_state(wid, partner, params)
            gossip_count[0] += 1
        finally:
            locks[partner].release(request)

    # ------------------------------------------------------------------
    # Gossip worker process
    # ------------------------------------------------------------------
    def _worker(
        self,
        wid: int,
        runtime: ProtocolRuntime,
        params: Dict[int, np.ndarray],
        locks: Dict[int, Resource],
        model,
        optimizer: SGD,
        batcher: Batcher,
        gossip_count: List[int],
    ):
        env = runtime.env
        rng = self.streams.stream("gossip", wid)
        is_active, passive_neighbors = self._passive_partners(wid)

        for k in range(self.max_iter):
            start = env.now
            runtime.gap.record(wid, k)
            model.set_params(params[wid])
            xb, yb = batcher.next_batch()
            loss, grad = model.loss_and_grad(xb, yb)
            yield env.timeout(self.compute_model.duration(wid, k))

            if is_active and passive_neighbors:
                # Atomic averaging with a random passive neighbor.
                partner = int(
                    passive_neighbors[rng.integers(0, len(passive_neighbors))]
                )
                yield from self._gossip(
                    runtime, wid, partner, params, locks, gossip_count
                )

            # Apply the (pre-averaging) gradient to the averaged params.
            params[wid] = params[wid] + optimizer.step(params[wid], grad, k)
            runtime.tracer.log(f"loss/{wid}", env.now, loss)
            runtime.tracer.log(f"duration/{wid}", env.now, env.now - start)
        runtime.done[wid] = True

    # ------------------------------------------------------------------
    # ProtocolCluster hooks
    # ------------------------------------------------------------------
    def _start(self, runtime: ProtocolRuntime) -> None:
        env = runtime.env
        self._params: Dict[int, np.ndarray] = {
            wid: runtime.models[wid].get_params()
            for wid in range(self.n_workers)
        }
        locks = {
            wid: Resource(env, capacity=1) for wid in self.passive_set
        }
        self._gossip_count = [0]
        for wid in range(self.n_workers):
            env.process(
                self._worker(
                    wid,
                    runtime,
                    self._params,
                    locks,
                    runtime.models[wid],
                    self.optimizer_proto.clone(),
                    self._make_batcher(wid),
                    self._gossip_count,
                ),
                name=f"adpsgd-{wid}",
            )

    def _final_param_stack(self, runtime: ProtocolRuntime) -> np.ndarray:
        return np.stack(
            [self._params[wid] for wid in range(self.n_workers)]
        )

    def _config_description(self) -> str:
        return (
            f"AD-PSGD bipartite gossip, |active|={len(self.active_set)}, "
            f"gossips={self._gossip_count[0]}"
        )

    def _topology_name(self) -> str:
        return self.topology.name

    def _message_totals(self, runtime: ProtocolRuntime) -> Tuple[int, float]:
        gossips = self._gossip_count[0]
        return (
            2 * gossips,
            2.0 * gossips * self.gossip_payload(runtime.update_size),
        )


def _build_adpsgd(spec) -> ADPSGDCluster:
    return ADPSGDCluster(
        topology=spec.topology,
        links=spec.scenario_links(),
        **spec_common_kwargs(spec),
    )


register_protocol(
    "adpsgd",
    _build_adpsgd,
    summary="AD-PSGD: asynchronous bipartite gossip averaging "
    "(unbounded gap)",
    paper="Lian et al. — ICML 2018 (arXiv:1710.06952)",
)
