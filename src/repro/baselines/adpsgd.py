"""AD-PSGD [Lian et al. 2018]: asynchronous decentralized gossip SGD.

Each worker repeatedly computes a gradient and *atomically averages*
its parameters with one randomly selected neighbor, then applies the
gradient.  Unconstrained, two concurrent averagings can deadlock on
each other's parameter locks; the published fix — which Hop's Section 5
criticizes as restrictive — partitions workers into *active* (initiate
gossip) and *passive* (serve gossip) sets, which requires the
communication graph to be bipartite.

We implement exactly that active/passive bipartite scheme: passive
workers' parameters are guarded by locks; active workers grab the lock,
pay a parameter round trip, and write back the average.

:class:`ADPSGDCluster` is registered as protocol ``"adpsgd"``; the
momentum-tracking protocol (:mod:`repro.protocols.momentum_tracking`)
reuses its gossip pattern.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.graphs.topology import Topology
from repro.ml.data import Batcher
from repro.ml.optim import SGD
from repro.net.links import LinkModel, uniform_links
from repro.net.message import payload_bytes
from repro.protocols.base import ProtocolCluster, ProtocolRuntime
from repro.protocols.registry import register_protocol, spec_common_kwargs
from repro.sim.resources import Resource


class ADPSGDCluster(ProtocolCluster):
    """Asynchronous decentralized parallel SGD on a bipartite graph.

    Args:
        topology: Must be bipartite (checked); the two color classes
            become the active and passive sets.
        model_factory / dataset / optimizer: Same conventions as
            :class:`~repro.protocols.base.ProtocolCluster`.
        links: Network timing for the gossip round trips.
        compute_model: Worker compute-time oracle.
    """

    protocol = "adpsgd"
    elastic = True

    def __init__(
        self,
        topology: Topology,
        model_factory,
        dataset,
        optimizer: Optional[SGD] = None,
        links: Optional[LinkModel] = None,
        compute_model=None,
        batch_size: int = 32,
        max_iter: int = 100,
        seed: int = 0,
        update_size: Optional[float] = None,
        evaluate: bool = True,
        trace_channels=None,
        churn=None,
        compression=None,
    ) -> None:
        topology.validate()
        self.active_set, self.passive_set = topology.bipartite_sets()
        super().__init__(
            n_workers=topology.n,
            model_factory=model_factory,
            dataset=dataset,
            optimizer=optimizer,
            batch_size=batch_size,
            compute_model=compute_model,
            max_iter=max_iter,
            seed=seed,
            update_size=update_size,
            evaluate=evaluate,
            trace_channels=trace_channels,
            compression=compression,
        )
        self.topology = topology
        self.links = links or uniform_links()
        if churn is not None and churn.empty:
            churn = None
        if churn is not None:
            churn = churn.clipped(max_iter)
            churn.validate_for(topology.n)
            if churn.empty:
                churn = None
        self.churn = churn
        self._membership = None

    # ------------------------------------------------------------------
    # Gossip machinery (shared with MomentumTrackingCluster)
    # ------------------------------------------------------------------
    def _passive_partners(self, wid: int) -> Tuple[bool, List[int]]:
        """``(is_active, eligible passive neighbors)`` for ``wid``."""
        is_active = wid in self.active_set
        neighbors = [
            j
            for j in self.topology.out_neighbors(wid, include_self=False)
            if (j in self.passive_set) == is_active or not is_active
        ]
        return is_active, [j for j in neighbors if j in self.passive_set]

    def _gossip_vectors(self) -> float:
        """Distinct vectors shipped per gossip direction (subclasses
        may enlarge: momentum-tracking rides its buffer along)."""
        return 1.0

    def gossip_payload(self, update_size: float) -> float:
        """Dense bytes sent per gossip direction (shared pricing path)."""
        return payload_bytes(update_size, vectors=self._gossip_vectors())

    def _gossip_wire(self, runtime: ProtocolRuntime) -> float:
        """Wire bytes per gossip direction (compression-aware)."""
        return self._wire_size(runtime, vectors=self._gossip_vectors())

    def _average_state(
        self, wid: int, partner: int, params: Dict[int, np.ndarray]
    ) -> None:
        """Write back the pairwise average (the atomic-averaging step).

        Compressed gossip is CHOCO-style: each side encodes the delta
        of its parameters against its tracked reference, the peer folds
        the *reconstruction* into the average, and the residual error
        stays local.  Both encodes read the pre-average vectors, so the
        exchange is symmetric and order-independent.
        """
        compressors = getattr(self, "_gossip_compressors", None)
        if compressors is None or compressors[wid] is None:
            average = 0.5 * (params[wid] + params[partner])
            params[wid] = average.copy()
            params[partner] = average.copy()
            return
        _, recon_wid = compressors[wid].encode_state(params[wid])
        _, recon_partner = compressors[partner].encode_state(params[partner])
        params[wid] = 0.5 * (params[wid] + recon_partner)
        params[partner] = 0.5 * (recon_wid + params[partner])

    def _gossip(
        self,
        runtime: ProtocolRuntime,
        wid: int,
        partner: int,
        params: Dict[int, np.ndarray],
        locks: Dict[int, Resource],
        gossip_count: List[int],
    ):
        """Lock ``partner``, pay the round trip, average, release."""
        request = locks[partner].request()
        yield request
        try:
            yield runtime.env.timeout(
                self.links.round_trip(
                    wid, partner, self._gossip_wire(runtime)
                )
            )
            if (
                self._membership is not None
                and not self._membership.is_active(partner)
            ):
                # The partner departed while we waited for its lock /
                # the round trip: abort — a departed worker's frozen
                # parameters must not keep mixing in, nor be mutated.
                return
            self._average_state(wid, partner, params)
            gossip_count[0] += 1
        finally:
            locks[partner].release(request)

    def _elastic_partners(self, wid: int) -> Tuple[bool, List[int]]:
        """Gossip partners re-resolved against the live membership view.

        The repaired graph may not stay bipartite (bridging an even
        ring creates odd cycles), but gossip safety only needs the
        active/passive *coloring*, which is fixed at founding: partners
        are the live out-neighbors of the opposite color, and edges the
        repair created inside one color class simply carry no gossip.
        """
        topology = self._membership.view.topology
        passive = [
            j
            for j in topology.out_neighbors(wid, include_self=False)
            if j in self.passive_set and topology.is_active(j)
        ]
        return wid in self.active_set, passive

    # ------------------------------------------------------------------
    # Gossip worker process
    # ------------------------------------------------------------------
    def _round(
        self,
        wid: int,
        k: int,
        runtime: ProtocolRuntime,
        params: Dict[int, np.ndarray],
        locks: Dict[int, Resource],
        model,
        optimizer: SGD,
        batcher: Batcher,
        gossip_count: List[int],
        rng,
        is_active: bool,
        partners: List[int],
    ):
        """Generator: one gossip-SGD iteration (shared by the static
        and elastic loops, so the two can never drift apart)."""
        env = runtime.env
        start = env.now
        runtime.gap.record(wid, k)
        model.set_params(params[wid])
        xb, yb = batcher.next_batch()
        loss, grad = model.loss_and_grad(xb, yb)
        yield env.timeout(self.compute_model.duration(wid, k))

        if is_active and partners:
            # Atomic averaging with a random passive neighbor.  Under
            # churn, a partner that departed mid-compute is skipped
            # (its frozen parameters must not keep mixing in).
            partner = int(partners[rng.integers(0, len(partners))])
            if self._membership is None or self._membership.is_active(
                partner
            ):
                yield from self._gossip(
                    runtime, wid, partner, params, locks, gossip_count
                )

        # Apply the (pre-averaging) gradient to the averaged params.
        params[wid] = params[wid] + optimizer.step(params[wid], grad, k)
        runtime.tracer.log(f"loss/{wid}", env.now, loss)
        runtime.tracer.log(f"duration/{wid}", env.now, env.now - start)

    def _worker(
        self,
        wid: int,
        runtime: ProtocolRuntime,
        params: Dict[int, np.ndarray],
        locks: Dict[int, Resource],
        model,
        optimizer: SGD,
        batcher: Batcher,
        gossip_count: List[int],
    ):
        if self._membership is not None:
            return (
                yield from self._worker_elastic(
                    wid,
                    runtime,
                    params,
                    locks,
                    model,
                    optimizer,
                    batcher,
                    gossip_count,
                )
            )
        rng = self.streams.stream("gossip", wid)
        is_active, passive_neighbors = self._passive_partners(wid)
        for k in range(self.max_iter):
            yield from self._round(
                wid,
                k,
                runtime,
                params,
                locks,
                model,
                optimizer,
                batcher,
                gossip_count,
                rng,
                is_active,
                passive_neighbors,
            )
        runtime.done[wid] = True

    def _resync_payload(self, update_size: float) -> float:
        """Joiner re-sync ships what a gossip exchange would."""
        return self.gossip_payload(update_size)

    def _worker_elastic(
        self,
        wid: int,
        runtime: ProtocolRuntime,
        params: Dict[int, np.ndarray],
        locks: Dict[int, Resource],
        model,
        optimizer: SGD,
        batcher: Batcher,
        gossip_count: List[int],
    ):
        """The gossip loop under membership churn.

        Same math as the static loop; the differences are the
        leave/join lifecycle (drain, rewire, re-sync from the sponsor)
        and partner lists re-resolved at membership epoch boundaries.
        """
        env = runtime.env
        membership = self._membership
        rng = self.streams.stream("gossip", wid)
        leave = membership.leave_event(wid)
        k = 0
        if not membership.is_active(wid):
            started = yield membership.rejoin_event(wid)
            if started is None:
                runtime.done[wid] = True
                return
            yield from self._join_resync(runtime, wid, params)
            k = started
        local_epoch = -1
        is_active = False
        partners: List[int] = []
        while k < self.max_iter:
            if (
                leave is not None
                and k >= leave.leave_at
                and membership.is_active(wid)
            ):
                membership.enact_leave(wid, env.now, k)
                if leave.join_at is None:
                    runtime.done[wid] = True
                    return
                started = yield membership.rejoin_event(wid)
                if started is None:
                    runtime.done[wid] = True
                    return
                yield from self._join_resync(runtime, wid, params)
                leave = None  # the cycle is spent
                k = started
                continue
            if membership.epoch != local_epoch:
                local_epoch = membership.epoch
                is_active, partners = self._elastic_partners(wid)
            membership.on_iteration(wid, k, env.now)
            yield from self._round(
                wid,
                k,
                runtime,
                params,
                locks,
                model,
                optimizer,
                batcher,
                gossip_count,
                rng,
                is_active,
                partners,
            )
            self._completed[wid] = k + 1
            k += 1
        runtime.done[wid] = True

    # ------------------------------------------------------------------
    # ProtocolCluster hooks
    # ------------------------------------------------------------------
    def _iterations_completed(self, runtime: ProtocolRuntime) -> List[int]:
        if self._membership is not None:
            return list(self._completed)
        return super()._iterations_completed(runtime)
    def _start(self, runtime: ProtocolRuntime) -> None:
        env = runtime.env
        if self.churn is not None:
            from repro.membership import MembershipRuntime, MembershipView

            view = MembershipView.founding(
                self.topology,
                absent=self.churn.initially_absent(),
                policy=self.churn.policy,
            )
            self._membership = MembershipRuntime(
                env, view, self.churn, self.max_iter, gap=runtime.gap
            )
        self._params: Dict[int, np.ndarray] = {
            wid: runtime.models[wid].get_params()
            for wid in range(self.n_workers)
        }
        # One CHOCO reference channel per worker (None when dense).
        self._gossip_compressors = [
            self._stream_compressor(runtime, wid)
            for wid in range(self.n_workers)
        ]
        self._completed = [0] * self.n_workers
        locks = {
            wid: Resource(env, capacity=1) for wid in self.passive_set
        }
        self._gossip_count = [0]
        for wid in range(self.n_workers):
            env.process(
                self._worker(
                    wid,
                    runtime,
                    self._params,
                    locks,
                    runtime.models[wid],
                    self.optimizer_proto.clone(),
                    self._make_batcher(wid),
                    self._gossip_count,
                ),
                name=f"adpsgd-{wid}",
            )

    def _final_param_stack(self, runtime: ProtocolRuntime) -> np.ndarray:
        return np.stack(
            [self._params[wid] for wid in range(self.n_workers)]
        )

    def _config_description(self) -> str:
        return (
            f"AD-PSGD bipartite gossip, |active|={len(self.active_set)}, "
            f"gossips={self._gossip_count[0]}"
        )

    def _topology_name(self) -> str:
        return self.topology.name

    def _message_totals(self, runtime: ProtocolRuntime) -> Tuple[int, float]:
        gossips = self._gossip_count[0]
        return (
            2 * gossips,
            2.0 * gossips * self._gossip_wire(runtime),
        )


def _build_adpsgd(spec) -> ADPSGDCluster:
    return ADPSGDCluster(
        topology=spec.topology,
        links=spec.scenario_links(),
        churn=getattr(spec.built_scenario(), "churn", None),
        **spec_common_kwargs(spec),
    )


register_protocol(
    "adpsgd",
    _build_adpsgd,
    summary="AD-PSGD: asynchronous bipartite gossip averaging "
    "(unbounded gap)",
    paper="Lian et al. — ICML 2018 (arXiv:1710.06952)",
    elastic=True,  # gossip survives churn: partners re-resolve per epoch
)
