"""Parameter-server training: the centralized baseline (Figure 13).

Three coordination modes on one PS implementation:

* ``"bsp"`` — Bulk Synchronous Parallel: the PS waits for gradients
  from ``n - n_backup`` workers per iteration (``n_backup = 0`` is
  plain BSP; > 0 is Chen et al.'s backup workers); stale gradients are
  dropped.
* ``"async"`` — Hogwild-style: every arriving gradient is applied
  immediately; workers never wait for each other.
* ``"ssp"`` — Stale Synchronous Parallel: async plus a global staleness
  bound between the fastest and slowest worker.

The communication hotspot is modeled by a single
:class:`~repro.net.network.SharedNic` at the PS: all pulls and pushes
serialize through it, so PS traffic scales with the worker count while
each decentralized worker's traffic scales with its degree — the shape
behind the paper's Figure 13.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.cluster import DeadlockError, TrainingRun
from repro.core.gap import GapTracker
from repro.hetero.compute import ComputeModel
from repro.ml.data import Batcher, Dataset
from repro.ml.optim import SGD
from repro.net.message import params_message_size
from repro.net.network import SharedNic
from repro.sim.engine import Environment
from repro.sim.events import Event
from repro.sim.rng import RngStreams
from repro.sim.trace import StatAccumulator, Tracer


class _ServerState:
    """Shared PS state: parameters, version, synchronization events."""

    def __init__(self, env: Environment, params: np.ndarray, n_workers: int):
        self.env = env
        self.params = params.copy()
        self.version = 0
        self.n_workers = n_workers
        self.worker_iterations = np.zeros(n_workers, dtype=int)
        self._version_events: Dict[int, Event] = {}
        self._min_advanced: List[Event] = []
        self.gradients_applied = 0
        self.gradients_dropped = 0

    def version_event(self, version: int) -> Event:
        """Event that fires when the PS moves past ``version``."""
        if self.version > version:
            done = Event(self.env)
            done.succeed()
            return done
        if version not in self._version_events:
            self._version_events[version] = Event(self.env)
        return self._version_events[version]

    def advance_version(self) -> None:
        self.version += 1
        event = self._version_events.pop(self.version - 1, None)
        if event is not None and not event.triggered:
            event.succeed()

    def min_iteration(self) -> int:
        return int(self.worker_iterations.min())

    def record_worker_iteration(self, wid: int, iteration: int) -> None:
        old_min = self.min_iteration()
        self.worker_iterations[wid] = iteration
        if self.min_iteration() > old_min:
            waiters, self._min_advanced = self._min_advanced, []
            for event in waiters:
                if not event.triggered:
                    event.succeed()

    def wait_min_advance(self) -> Event:
        event = Event(self.env)
        self._min_advanced.append(event)
        return event


class ParameterServerCluster:
    """Centralized training deployment.

    Args:
        n_workers: Worker count.
        mode: ``"bsp"``, ``"async"``, or ``"ssp"``.
        model_factory: Same convention as :class:`HopCluster`.
        dataset: Training/test data.
        optimizer: Applied at the PS to aggregated gradients.
        n_backup: BSP backup workers (gradients needed = n - n_backup).
        staleness: Global staleness bound for SSP.
        ps_bandwidth: The PS NIC bandwidth (the hotspot's throughput).
        ps_latency: Per-transfer latency at the PS NIC.
        compute_model: Worker compute-time oracle.
        max_iter: Iterations per worker.
    """

    def __init__(
        self,
        n_workers: int,
        model_factory: Callable[[np.random.Generator], object],
        dataset: Dataset,
        mode: str = "bsp",
        optimizer: Optional[SGD] = None,
        n_backup: int = 0,
        staleness: int = 0,
        ps_bandwidth: float = 125.0,
        ps_latency: float = 1e-4,
        compute_model: Optional[ComputeModel] = None,
        batch_size: int = 32,
        max_iter: int = 100,
        seed: int = 0,
        update_size: Optional[float] = None,
        evaluate: bool = True,
    ) -> None:
        if mode not in ("bsp", "async", "ssp"):
            raise ValueError(f"unknown PS mode {mode!r}")
        if n_workers < 1:
            raise ValueError("need at least one worker")
        if n_backup < 0 or n_backup >= n_workers:
            raise ValueError("n_backup must be in [0, n_workers)")
        if mode == "ssp" and staleness < 1:
            raise ValueError("ssp needs staleness >= 1")
        self.n = n_workers
        self.mode = mode
        self.model_factory = model_factory
        self.dataset = dataset
        self.optimizer = optimizer or SGD(lr=0.1, momentum=0.9)
        self.n_backup = n_backup
        self.staleness = staleness
        self.ps_bandwidth = ps_bandwidth
        self.ps_latency = ps_latency
        self.batch_size = batch_size
        self.max_iter = max_iter
        self.seed = seed
        self.streams = RngStreams(seed)
        self.compute_model = compute_model or ComputeModel(
            base_time=0.1, n_workers=n_workers
        )
        self._update_size = update_size
        self.evaluate = evaluate

    # ------------------------------------------------------------------
    def _worker(
        self,
        wid: int,
        env: Environment,
        server: _ServerState,
        nic: SharedNic,
        model,
        batcher: Batcher,
        grads_inbox,
        tracer: Tracer,
        gap: GapTracker,
        state: Dict[str, np.ndarray],
        update_size: float,
        stats: dict,
    ):
        """One PS worker process: pull -> compute -> push."""
        durations = stats["durations"]
        for k in range(self.max_iter):
            start = env.now
            server.record_worker_iteration(wid, k)
            gap.record(wid, k)

            # SSP: block while we are too far ahead of the slowest worker.
            if self.mode == "ssp":
                while k > server.min_iteration() + self.staleness:
                    yield server.wait_min_advance()

            # Pull parameters through the PS NIC (download).
            yield from nic.transfer(update_size)
            pulled_version = server.version
            x = server.params.copy()

            # Compute.
            model.set_params(x)
            xb, yb = batcher.next_batch()
            loss, grad = model.loss_and_grad(xb, yb)
            yield env.timeout(self.compute_model.duration(wid, k))

            # Push the gradient through the PS NIC (upload).
            yield from nic.transfer(update_size)
            grads_inbox.append((wid, pulled_version, grad))
            server_notify = state["notify"]
            if not server_notify[0].triggered:
                server_notify[0].succeed()

            if self.mode == "bsp":
                # Wait for the PS to fold this iteration and move on.
                yield server.version_event(pulled_version)

            tracer.log(f"loss/{wid}", env.now, loss)
            durations.add(env.now - start)
            tracer.log(f"duration/{wid}", env.now, env.now - start)
        state["done"][wid] = True

    def _server(
        self,
        env: Environment,
        server: _ServerState,
        grads_inbox: list,
        state: Dict[str, np.ndarray],
    ):
        """The PS process: aggregate gradients and update parameters."""
        pending: List[np.ndarray] = []
        while not state["done"].all() or grads_inbox:
            if not grads_inbox:
                state["notify"][0] = Event(env)
                yield state["notify"][0]
                continue
            wid, version, grad = grads_inbox.pop(0)
            if self.mode == "bsp":
                if version != server.version:
                    server.gradients_dropped += 1
                    continue
                pending.append(grad)
                # Once fast workers retire, the quorum shrinks to the
                # remaining active workers (else stragglers would wait
                # forever for gradients nobody will send).
                active = int((~state["done"]).sum())
                need = max(1, min(self.n - self.n_backup, active))
                if len(pending) >= need:
                    mean_grad = np.mean(pending, axis=0)
                    delta = self.optimizer.step(
                        server.params, mean_grad, server.version
                    )
                    server.params = server.params + delta
                    server.gradients_applied += len(pending)
                    pending = []
                    server.advance_version()
            else:
                # async / ssp: apply immediately.
                delta = self.optimizer.step(server.params, grad, version)
                server.params = server.params + delta
                server.gradients_applied += 1
                server.advance_version()

    # ------------------------------------------------------------------
    def run(self) -> TrainingRun:
        env = Environment()
        tracer = Tracer()
        gap = GapTracker(self.n)
        nic = SharedNic(
            env, bandwidth=self.ps_bandwidth, latency=self.ps_latency
        )
        models = [
            self.model_factory(self.streams.fresh("model-init"))
            for _ in range(self.n)
        ]
        update_size = (
            self._update_size
            if self._update_size is not None
            else params_message_size(models[0].dim)
        )
        server = _ServerState(env, models[0].get_params(), self.n)
        grads_inbox: list = []
        state = {
            "done": np.zeros(self.n, dtype=bool),
            "notify": [Event(env)],
        }

        worker_stats = []
        for wid in range(self.n):
            stats = {"durations": StatAccumulator()}
            worker_stats.append(stats)
            batcher = Batcher(
                self.dataset.x_train,
                self.dataset.y_train,
                self.batch_size,
                self.streams.stream("data", wid),
            )
            env.process(
                self._worker(
                    wid,
                    env,
                    server,
                    nic,
                    models[wid],
                    batcher,
                    grads_inbox,
                    tracer,
                    gap,
                    state,
                    update_size,
                    stats,
                ),
                name=f"ps-worker-{wid}",
            )
        env.process(
            self._server(env, server, grads_inbox, state), name="ps-server"
        )
        env.run()

        if not state["done"].all():
            raise DeadlockError("PS workers never finished")

        final_loss = final_accuracy = None
        if self.evaluate:
            models[0].set_params(server.params)
            final_loss, final_accuracy = models[0].evaluate(
                self.dataset.x_test, self.dataset.y_test
            )

        mode_desc = self.mode
        if self.mode == "bsp" and self.n_backup:
            mode_desc += f"+backup({self.n_backup})"
        if self.mode == "ssp":
            mode_desc += f"(s={self.staleness})"
        return TrainingRun(
            protocol=f"ps-{self.mode}",
            config_description=f"parameter server, {mode_desc}",
            topology_name=f"star({self.n}+PS)",
            n_workers=self.n,
            max_iter=self.max_iter,
            wall_time=env.now,
            tracer=tracer,
            gap=gap,
            iterations_completed=[self.max_iter] * self.n,
            iterations_skipped=[0] * self.n,
            messages_sent=2 * self.n * self.max_iter,
            bytes_sent=2 * self.n * self.max_iter * update_size,
            final_params=server.params,
            final_loss=final_loss,
            final_accuracy=final_accuracy,
            consensus=0.0,
            worker_stats=[
                {
                    "wid": wid,
                    "iterations_completed": self.max_iter,
                    "iteration_duration_mean": stats["durations"].mean,
                    "iteration_duration_max": stats["durations"].max,
                    "recv_wait_mean": 0.0,
                    "loss_mean": 0.0,
                }
                for wid, stats in enumerate(worker_stats)
            ],
        )
