"""Parameter-server training: the centralized baseline (Figure 13).

Three coordination modes on one PS implementation:

* ``"bsp"`` — Bulk Synchronous Parallel: the PS waits for gradients
  from ``n - n_backup`` workers per iteration (``n_backup = 0`` is
  plain BSP; > 0 is Chen et al.'s backup workers); stale gradients are
  dropped.
* ``"async"`` — Hogwild-style: every arriving gradient is applied
  immediately; workers never wait for each other.
* ``"ssp"`` — Stale Synchronous Parallel: async plus a global staleness
  bound between the fastest and slowest worker.

The communication hotspot is modeled by a single
:class:`~repro.net.network.SharedNic` at the PS: all pulls and pushes
serialize through it, so PS traffic scales with the worker count while
each decentralized worker's traffic scales with its degree — the shape
behind the paper's Figure 13.

Registered as protocols ``"ps-bsp"`` (alias ``"ps"``), ``"ps-async"``
and ``"ps-ssp"``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.net.network import SharedNic
from repro.protocols.base import ProtocolCluster, ProtocolRuntime
from repro.protocols.registry import register_protocol, spec_common_kwargs
from repro.sim.engine import Environment
from repro.sim.events import Event


class _ServerState:
    """Shared PS state: parameters, version, synchronization events."""

    def __init__(self, env: Environment, params: np.ndarray, n_workers: int):
        self.env = env
        self.params = params.copy()
        self.version = 0
        self.n_workers = n_workers
        self.worker_iterations = np.zeros(n_workers, dtype=int)
        self._version_events: Dict[int, Event] = {}
        self._min_advanced: List[Event] = []
        self.gradients_applied = 0
        self.gradients_dropped = 0

    def version_event(self, version: int) -> Event:
        """Event that fires when the PS moves past ``version``."""
        if self.version > version:
            done = Event(self.env)
            done.succeed()
            return done
        if version not in self._version_events:
            self._version_events[version] = Event(self.env)
        return self._version_events[version]

    def advance_version(self) -> None:
        self.version += 1
        event = self._version_events.pop(self.version - 1, None)
        if event is not None and not event.triggered:
            event.succeed()

    def min_iteration(self) -> int:
        return int(self.worker_iterations.min())

    def record_worker_iteration(self, wid: int, iteration: int) -> None:
        old_min = self.min_iteration()
        self.worker_iterations[wid] = iteration
        if self.min_iteration() > old_min:
            waiters, self._min_advanced = self._min_advanced, []
            for event in waiters:
                if not event.triggered:
                    event.succeed()

    def wait_min_advance(self) -> Event:
        event = Event(self.env)
        self._min_advanced.append(event)
        return event


class ParameterServerCluster(ProtocolCluster):
    """Centralized training deployment.

    Args:
        n_workers: Worker count.
        mode: ``"bsp"``, ``"async"``, or ``"ssp"``.
        model_factory: Same convention as
            :class:`~repro.protocols.base.ProtocolCluster`.
        dataset: Training/test data.
        optimizer: Applied at the PS to aggregated gradients.
        n_backup: BSP backup workers (gradients needed = n - n_backup).
        staleness: Global staleness bound for SSP.
        ps_bandwidth: The PS NIC bandwidth (the hotspot's throughput).
        ps_latency: Per-transfer latency at the PS NIC.
        compute_model: Worker compute-time oracle.
        max_iter: Iterations per worker.
    """

    def __init__(
        self,
        n_workers: int,
        model_factory,
        dataset,
        mode: str = "bsp",
        optimizer=None,
        n_backup: int = 0,
        staleness: int = 0,
        ps_bandwidth: float = 125.0,
        ps_latency: float = 1e-4,
        compute_model=None,
        batch_size: int = 32,
        max_iter: int = 100,
        seed: int = 0,
        update_size: Optional[float] = None,
        evaluate: bool = True,
        trace_channels=None,
    ) -> None:
        if mode not in ("bsp", "async", "ssp"):
            raise ValueError(f"unknown PS mode {mode!r}")
        if n_backup < 0 or n_backup >= n_workers:
            raise ValueError("n_backup must be in [0, n_workers)")
        if mode == "ssp" and staleness < 1:
            raise ValueError("ssp needs staleness >= 1")
        super().__init__(
            n_workers=n_workers,
            model_factory=model_factory,
            dataset=dataset,
            optimizer=optimizer,
            batch_size=batch_size,
            compute_model=compute_model,
            max_iter=max_iter,
            seed=seed,
            update_size=update_size,
            evaluate=evaluate,
            trace_channels=trace_channels,
        )
        self.mode = mode
        self.protocol = f"ps-{mode}"
        self.n_backup = n_backup
        self.staleness = staleness
        self.ps_bandwidth = ps_bandwidth
        self.ps_latency = ps_latency

    # ------------------------------------------------------------------
    def _worker(
        self,
        wid: int,
        runtime: ProtocolRuntime,
        server: _ServerState,
        nic: SharedNic,
        model,
        batcher,
        grads_inbox,
        notify: List[Event],
    ):
        """One PS worker process: pull -> compute -> push."""
        env = runtime.env
        for k in range(self.max_iter):
            start = env.now
            server.record_worker_iteration(wid, k)
            runtime.gap.record(wid, k)

            # SSP: block while we are too far ahead of the slowest worker.
            if self.mode == "ssp":
                while k > server.min_iteration() + self.staleness:
                    yield server.wait_min_advance()

            # Pull parameters through the PS NIC (download).
            yield from nic.transfer(runtime.update_size)
            pulled_version = server.version
            x = server.params.copy()

            # Compute.
            model.set_params(x)
            xb, yb = batcher.next_batch()
            loss, grad = model.loss_and_grad(xb, yb)
            yield env.timeout(self.compute_model.duration(wid, k))

            # Push the gradient through the PS NIC (upload).
            yield from nic.transfer(runtime.update_size)
            grads_inbox.append((wid, pulled_version, grad))
            if not notify[0].triggered:
                notify[0].succeed()

            if self.mode == "bsp":
                # Wait for the PS to fold this iteration and move on.
                yield server.version_event(pulled_version)

            runtime.tracer.log(f"loss/{wid}", env.now, loss)
            runtime.tracer.log(f"duration/{wid}", env.now, env.now - start)
        runtime.done[wid] = True

    def _server(
        self,
        runtime: ProtocolRuntime,
        server: _ServerState,
        grads_inbox: list,
        notify: List[Event],
    ):
        """The PS process: aggregate gradients and update parameters."""
        env = runtime.env
        optimizer = self.optimizer_proto
        pending: List[np.ndarray] = []
        while not runtime.done.all() or grads_inbox:
            if not grads_inbox:
                notify[0] = Event(env)
                yield notify[0]
                continue
            wid, version, grad = grads_inbox.pop(0)
            if self.mode == "bsp":
                if version != server.version:
                    server.gradients_dropped += 1
                    continue
                pending.append(grad)
                # Once fast workers retire, the quorum shrinks to the
                # remaining active workers (else stragglers would wait
                # forever for gradients nobody will send).
                active = int((~runtime.done).sum())
                need = max(1, min(self.n_workers - self.n_backup, active))
                if len(pending) >= need:
                    mean_grad = np.mean(pending, axis=0)
                    delta = optimizer.step(
                        server.params, mean_grad, server.version
                    )
                    server.params = server.params + delta
                    server.gradients_applied += len(pending)
                    pending = []
                    server.advance_version()
            else:
                # async / ssp: apply immediately.
                delta = optimizer.step(server.params, grad, version)
                server.params = server.params + delta
                server.gradients_applied += 1
                server.advance_version()

    # ------------------------------------------------------------------
    # ProtocolCluster hooks
    # ------------------------------------------------------------------
    def _start(self, runtime: ProtocolRuntime) -> None:
        env = runtime.env
        nic = SharedNic(
            env, bandwidth=self.ps_bandwidth, latency=self.ps_latency
        )
        self._nic = nic
        server = _ServerState(
            env, runtime.models[0].get_params(), self.n_workers
        )
        self._server_state = server
        grads_inbox: list = []
        notify: List[Event] = [Event(env)]

        for wid in range(self.n_workers):
            env.process(
                self._worker(
                    wid,
                    runtime,
                    server,
                    nic,
                    runtime.models[wid],
                    self._make_batcher(wid),
                    grads_inbox,
                    notify,
                ),
                name=f"ps-worker-{wid}",
            )
        env.process(
            self._server(runtime, server, grads_inbox, notify),
            name="ps-server",
        )

    def _final_param_stack(self, runtime: ProtocolRuntime) -> np.ndarray:
        return self._server_state.params[None, :]

    def _config_description(self) -> str:
        mode_desc = self.mode
        if self.mode == "bsp" and self.n_backup:
            mode_desc += f"+backup({self.n_backup})"
        if self.mode == "ssp":
            mode_desc += f"(s={self.staleness})"
        return f"parameter server, {mode_desc}"

    def _topology_name(self) -> str:
        return f"star({self.n_workers}+PS)"

    def _message_totals(self, runtime: ProtocolRuntime) -> Tuple[int, float]:
        transfers = 2 * self.n_workers * self.max_iter
        return transfers, transfers * runtime.update_size


def _builder(mode: str):
    def _build(spec) -> ParameterServerCluster:
        return ParameterServerCluster(
            n_workers=spec.topology.n,
            mode=mode,
            n_backup=spec.ps_backup,
            staleness=spec.ps_staleness,
            **spec_common_kwargs(spec),
        )

    return _build


register_protocol(
    "ps-bsp",
    _builder("bsp"),
    summary="Parameter server, bulk-synchronous (optional backup "
    "workers) behind a shared-NIC hotspot",
    paper="Li et al. — OSDI 2014; Chen et al. — arXiv:1604.00981",
    aliases=("ps",),
    # A central server has no meaningful partial membership: churn
    # scenarios are rejected at build time; static behavior is pinned
    # bit-identically by the golden conformance cells.
    elastic=False,
)
register_protocol(
    "ps-async",
    _builder("async"),
    summary="Parameter server, fully asynchronous (Hogwild-style)",
    paper="Dean et al. — NeurIPS 2012",
    elastic=False,
)
register_protocol(
    "ps-ssp",
    _builder("ssp"),
    summary="Parameter server, stale-synchronous (global staleness "
    "bound)",
    paper="Ho et al. — NeurIPS 2013",
    elastic=False,
)
