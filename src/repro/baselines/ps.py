"""Parameter-server training: the centralized baseline (Figure 13).

Three coordination modes on one PS implementation:

* ``"bsp"`` — Bulk Synchronous Parallel: the PS waits for gradients
  from ``n - n_backup`` workers per iteration (``n_backup = 0`` is
  plain BSP; > 0 is Chen et al.'s backup workers); stale gradients are
  dropped.
* ``"async"`` — Hogwild-style: every arriving gradient is applied
  immediately; workers never wait for each other.
* ``"ssp"`` — Stale Synchronous Parallel: async plus a global staleness
  bound between the fastest and slowest worker.

The communication hotspot is modeled by a single
:class:`~repro.net.network.SharedNic` at the PS: all pulls and pushes
serialize through it, so PS traffic scales with the worker count while
each decentralized worker's traffic scales with its degree — the shape
behind the paper's Figure 13.

Under membership churn the server state is *sharded* HetPipe-style
(wave-synchronous PS under whimpy heterogeneous members, Park et al.,
arXiv:2005.14038): the flat parameter vector splits once into one
contiguous shard per founding member (:class:`ParamShards`), and every
leave/join deterministically fails the departed owners' shards over to
the live set.  Stale contributions from departed workers are released
(never folded, never counted toward a quorum), in-flight pushes
addressed to a shard owner that departed mid-transfer are dropped and
counted in ``messages_dropped`` — then re-addressed against the new
shard map, so the BSP barrier can never wait on a contribution the
failover already lost — and a joiner seeds its state from the live
shards before its first pull.

Registered as protocols ``"ps-bsp"`` (alias ``"ps"``), ``"ps-async"``
and ``"ps-ssp"``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.net.network import SharedNic
from repro.protocols.base import ProtocolCluster, ProtocolRuntime
from repro.protocols.registry import register_protocol, spec_common_kwargs
from repro.sim.engine import Environment
from repro.sim.events import Event


class ParamShards:
    """HetPipe-style shard map over the flat parameter vector.

    The vector is split exactly once, at founding, into one contiguous
    slice per founding member.  Shard *boundaries* never move — only
    ownership does — so re-sharding is pure reassignment (shard ``i``
    goes to ``sorted(live)[i % len(live)]``) and concatenating the
    slices reconstructs the flat vector bit-for-bit no matter how many
    failovers happened in between (property-tested).
    """

    def __init__(self, dim: int, owners: Iterable[int]) -> None:
        order = sorted(owners)
        if not order:
            raise ValueError("need at least one shard owner")
        n = len(order)
        base, extra = divmod(int(dim), n)
        bounds = []
        lo = 0
        for i in range(n):
            hi = lo + base + (1 if i < extra else 0)
            bounds.append((lo, hi))
            lo = hi
        self.dim = int(dim)
        self.bounds: Tuple[Tuple[int, int], ...] = tuple(bounds)
        self.owner_of: Dict[int, int] = {
            shard: order[shard] for shard in range(n)
        }

    @property
    def n_shards(self) -> int:
        return len(self.bounds)

    def owner(self, shard: int) -> int:
        return self.owner_of[shard]

    def owners(self) -> Tuple[int, ...]:
        """Current owner per shard (the push address list)."""
        return tuple(self.owner_of[s] for s in range(self.n_shards))

    def shard_fraction(self, shard: int) -> float:
        """This shard's share of the full vector (for byte accounting)."""
        lo, hi = self.bounds[shard]
        return (hi - lo) / self.dim if self.dim else 0.0

    def reassign(
        self, live: Iterable[int]
    ) -> Tuple[Tuple[int, int, int], ...]:
        """Deterministically re-derive ownership over the live set.

        Returns the failovers as ``(shard, old_owner, new_owner)``
        tuples; shards whose owner survived stay put.
        """
        order = sorted(live)
        if not order:
            raise ValueError("cannot re-shard over an empty live set")
        moved = []
        for shard in range(self.n_shards):
            new = order[shard % len(order)]
            old = self.owner_of[shard]
            if new != old:
                self.owner_of[shard] = new
                moved.append((shard, old, new))
        return tuple(moved)

    def split(self, params: np.ndarray) -> List[np.ndarray]:
        """The vector's shard slices (views, in shard order)."""
        return [params[lo:hi] for lo, hi in self.bounds]

    def flat(self, slices: List[np.ndarray]) -> np.ndarray:
        """Reassemble the flat vector from its shard slices."""
        return np.concatenate(slices)


class _ServerState:
    """Shared PS state: parameters, version, synchronization events."""

    def __init__(self, env: Environment, params: np.ndarray, n_workers: int):
        self.env = env
        self.params = params.copy()
        self.version = 0
        self.n_workers = n_workers
        self.worker_iterations = np.zeros(n_workers, dtype=int)
        self._version_events: Dict[int, Event] = {}
        self._min_advanced: List[Event] = []
        self.gradients_applied = 0
        self.gradients_dropped = 0
        #: BSP gradients awaiting quorum, as ``(wid, grad)`` (shared
        #: with the server loop so membership changes can scrub it).
        self.pending: List[Tuple[int, np.ndarray]] = []
        #: Set by the cluster under churn: min_iteration then ranges
        #: over *live* members only, so a departed straggler can never
        #: freeze the SSP staleness bound.
        self.membership = None

    def version_event(self, version: int) -> Event:
        """Event that fires when the PS moves past ``version``."""
        if self.version > version:
            done = Event(self.env)
            done.succeed()
            return done
        if version not in self._version_events:
            self._version_events[version] = Event(self.env)
        return self._version_events[version]

    def advance_version(self) -> None:
        self.version += 1
        event = self._version_events.pop(self.version - 1, None)
        if event is not None and not event.triggered:
            event.succeed()

    def min_iteration(self) -> int:
        if self.membership is None:
            return int(self.worker_iterations.min())
        live = [
            int(self.worker_iterations[w])
            for w in range(self.n_workers)
            if self.membership.is_active(w)
        ]
        return min(live) if live else 0

    def record_worker_iteration(self, wid: int, iteration: int) -> None:
        old_min = self.min_iteration()
        self.worker_iterations[wid] = iteration
        if self.min_iteration() > old_min:
            self.release_waiters()

    def release_waiters(self) -> None:
        """Fire every min-advance waiter so it re-checks its bound.

        Called on iteration-min advance, and by the membership hook on
        every leave/join — a departure can move the effective minimum
        without any worker reporting an iteration.
        """
        waiters, self._min_advanced = self._min_advanced, []
        for event in waiters:
            if not event.triggered:
                event.succeed()

    def wait_min_advance(self) -> Event:
        event = Event(self.env)
        self._min_advanced.append(event)
        return event


def _make_ps_membership(env, view, plan, max_iter, gap, cluster):
    """A membership runtime whose transitions drive the shard fabric.

    Defined lazily (class creation inside the factory) so importing
    this module never pulls in :mod:`repro.membership` for static runs.
    """
    from repro.membership import MembershipRuntime

    class _PSMembership(MembershipRuntime):
        def enact_leave(self, worker, now, iteration):
            super().enact_leave(worker, now, iteration)
            cluster._membership_changed(
                self, worker, now, iteration, departed=True
            )

        def enact_join(self, worker, now, start=None):
            was_active = self.is_active(worker)
            super().enact_join(worker, now, start)
            if not was_active and self.is_active(worker):
                cluster._membership_changed(
                    self,
                    worker,
                    now,
                    self.iterations.get(worker, 0),
                    departed=False,
                )

    return _PSMembership(env, view, plan, max_iter, gap=gap)


class ParameterServerCluster(ProtocolCluster):
    """Centralized training deployment.

    Args:
        n_workers: Worker count.
        mode: ``"bsp"``, ``"async"``, or ``"ssp"``.
        model_factory: Same convention as
            :class:`~repro.protocols.base.ProtocolCluster`.
        dataset: Training/test data.
        optimizer: Applied at the PS to aggregated gradients.
        n_backup: BSP backup workers (gradients needed = n - n_backup).
        staleness: Global staleness bound for SSP.
        ps_bandwidth: The PS NIC bandwidth (the hotspot's throughput).
        ps_latency: Per-transfer latency at the PS NIC.
        compute_model: Worker compute-time oracle.
        max_iter: Iterations per worker.
        churn: Optional membership churn plan; enables the sharded
            HetPipe-style failover fabric (see the module docstring).
        topology: Nominal overlay for membership rewire reporting under
            churn (the real PS fabric is the shard map); defaults to a
            ring over the workers.
    """

    def __init__(
        self,
        n_workers: int,
        model_factory,
        dataset,
        mode: str = "bsp",
        optimizer=None,
        n_backup: int = 0,
        staleness: int = 0,
        ps_bandwidth: float = 125.0,
        ps_latency: float = 1e-4,
        compute_model=None,
        batch_size: int = 32,
        max_iter: int = 100,
        seed: int = 0,
        update_size: Optional[float] = None,
        evaluate: bool = True,
        trace_channels=None,
        churn=None,
        topology=None,
        compression=None,
    ) -> None:
        if mode not in ("bsp", "async", "ssp"):
            raise ValueError(f"unknown PS mode {mode!r}")
        if n_backup < 0 or n_backup >= n_workers:
            raise ValueError("n_backup must be in [0, n_workers)")
        if mode == "ssp" and staleness < 1:
            raise ValueError("ssp needs staleness >= 1")
        super().__init__(
            n_workers=n_workers,
            model_factory=model_factory,
            dataset=dataset,
            optimizer=optimizer,
            batch_size=batch_size,
            compute_model=compute_model,
            max_iter=max_iter,
            seed=seed,
            update_size=update_size,
            evaluate=evaluate,
            trace_channels=trace_channels,
            compression=compression,
        )
        self.mode = mode
        self.protocol = f"ps-{mode}"
        self.n_backup = n_backup
        self.staleness = staleness
        self.ps_bandwidth = ps_bandwidth
        self.ps_latency = ps_latency
        self.topology = topology
        if churn is not None and churn.empty:
            churn = None
        if churn is not None:
            churn = churn.clipped(max_iter)
            churn.validate_for(n_workers)
            if churn.empty:
                churn = None
        self.churn = churn
        self._membership = None
        self._shards: Optional[ParamShards] = None

    # ------------------------------------------------------------------
    def _ps_round(
        self,
        wid: int,
        k: int,
        runtime: ProtocolRuntime,
        server: _ServerState,
        nic: SharedNic,
        model,
        batcher,
        grads_inbox,
        notify: List[Event],
    ):
        """Generator: one pull -> compute -> push iteration (shared by
        the static and elastic worker loops, so the two can't drift)."""
        env = runtime.env
        start = env.now
        server.record_worker_iteration(wid, k)
        runtime.gap.record(wid, k)

        # SSP: block while we are too far ahead of the slowest worker.
        if self.mode == "ssp":
            while k > server.min_iteration() + self.staleness:
                yield server.wait_min_advance()

        # Pull parameters through the PS NIC (download).
        yield from nic.transfer(runtime.update_size)
        if self._membership is not None:
            runtime.count_traffic(1, runtime.update_size)
        pulled_version = server.version
        x = server.params.copy()

        # Compute.
        model.set_params(x)
        xb, yb = batcher.next_batch()
        loss, grad = model.loss_and_grad(xb, yb)
        yield env.timeout(self.compute_model.duration(wid, k))

        # Compression shrinks the *push* only: the pull stays a dense
        # parameter download (the PS cannot error-feed per worker).
        compressor = self._stream_compressor(runtime, wid, stream="grad")
        if compressor is not None:
            _, grad = compressor.compress(grad)

        # Push the gradient through the PS NIC (upload).
        if self._membership is None:
            yield from nic.transfer(self._wire_size(runtime))
            grads_inbox.append((wid, pulled_version, grad))
            if not notify[0].triggered:
                notify[0].succeed()
        else:
            yield from self._push_sharded(
                wid, runtime, server, nic, grads_inbox, notify,
                pulled_version, grad,
            )

        if self.mode == "bsp":
            # Wait for the PS to fold this iteration and move on.
            yield server.version_event(pulled_version)

        runtime.tracer.log(f"loss/{wid}", env.now, loss)
        runtime.tracer.log(f"duration/{wid}", env.now, env.now - start)

    def _push_sharded(
        self,
        wid: int,
        runtime: ProtocolRuntime,
        server: _ServerState,
        nic: SharedNic,
        grads_inbox,
        notify: List[Event],
        pulled_version: int,
        grad,
    ):
        """Elastic push: the gradient is addressed shard-by-shard to
        the owners recorded at send time.

        Fragments whose addressed owner departed while the transfer was
        in flight are dropped at delivery and counted in
        ``messages_dropped`` (the Network epoch-routing contract); the
        worker then re-addresses the push against the post-failover
        shard map and retries, so the BSP barrier can never wait on a
        contribution the failover already lost.
        """
        membership = self._membership
        wire_size = self._wire_size(runtime)
        while True:
            addressed = self._shards.owners()
            yield from nic.transfer(wire_size)
            runtime.count_traffic(1, wire_size)
            lost = [
                owner
                for owner in addressed
                if not membership.is_active(owner)
            ]
            if not lost:
                break
            membership.messages_dropped += len(lost)
        grads_inbox.append((wid, pulled_version, grad))
        if not notify[0].triggered:
            notify[0].succeed()

    def _seed_from_shards(self, runtime: ProtocolRuntime, nic: SharedNic):
        """Joiner state: pull the full vector, shard by shard, from the
        live owners through the PS NIC before the first iteration."""
        yield from nic.transfer(runtime.update_size)
        runtime.count_traffic(self._shards.n_shards, runtime.update_size)

    def _worker(
        self,
        wid: int,
        runtime: ProtocolRuntime,
        server: _ServerState,
        nic: SharedNic,
        model,
        batcher,
        grads_inbox,
        notify: List[Event],
    ):
        """One PS worker process: pull -> compute -> push."""
        if self._membership is not None:
            return (
                yield from self._worker_elastic(
                    wid,
                    runtime,
                    server,
                    nic,
                    model,
                    batcher,
                    grads_inbox,
                    notify,
                )
            )
        for k in range(self.max_iter):
            yield from self._ps_round(
                wid, k, runtime, server, nic, model, batcher, grads_inbox,
                notify,
            )
        runtime.done[wid] = True

    def _worker_elastic(
        self,
        wid: int,
        runtime: ProtocolRuntime,
        server: _ServerState,
        nic: SharedNic,
        model,
        batcher,
        grads_inbox,
        notify: List[Event],
    ):
        """The PS worker loop under membership churn: same rounds, plus
        the leave/rejoin lifecycle with shard-seeded joiner state."""
        env = runtime.env
        membership = self._membership
        leave = membership.leave_event(wid)
        k = 0
        if not membership.is_active(wid):
            started = yield membership.rejoin_event(wid)
            if started is None:
                runtime.done[wid] = True
                return
            yield from self._seed_from_shards(runtime, nic)
            k = started
        while k < self.max_iter:
            if (
                leave is not None
                and k >= leave.leave_at
                and membership.is_active(wid)
            ):
                membership.enact_leave(wid, env.now, k)
                if leave.join_at is None:
                    runtime.done[wid] = True
                    return
                started = yield membership.rejoin_event(wid)
                if started is None:
                    runtime.done[wid] = True
                    return
                yield from self._seed_from_shards(runtime, nic)
                leave = None  # the cycle is spent
                k = started
                continue
            membership.on_iteration(wid, k, env.now)
            yield from self._ps_round(
                wid, k, runtime, server, nic, model, batcher, grads_inbox,
                notify,
            )
            self._completed[wid] = k + 1
            k += 1
        runtime.done[wid] = True

    def _membership_changed(
        self, membership, worker: int, now, iteration: int, departed: bool
    ) -> None:
        """The shard fabric's reaction to one enacted transition.

        HetPipe wave-sync failover: shards owned by departed members
        re-derive their owner over the live set (charged as one state
        transfer per moved shard); stale contributions from departed
        workers are released from the inbox and the BSP quorum; SSP
        min-advance waiters re-check their bound; and the server is
        poked so a quorum the departure just shrank below the pending
        count folds immediately instead of deadlocking the barrier.
        """
        runtime = self._elastic_runtime
        server = self._server_state
        moved = self._shards.reassign(membership.view.active)
        if moved:
            bytes_moved = sum(
                self._shards.shard_fraction(shard) * runtime.update_size
                for shard, _, _ in moved
            )
            runtime.count_traffic(len(moved), bytes_moved)
            membership.events.append(
                {
                    "kind": "reshard",
                    "worker": int(worker),
                    "time": float(now),
                    "iteration": int(iteration),
                    "epoch": int(membership.view.epoch),
                    "shards_moved": len(moved),
                    "bytes_moved": float(bytes_moved),
                }
            )
        if departed:
            # Release the departed worker's stale contributions: they
            # must neither be folded into the model nor counted toward
            # any quorum (HetPipe releases a whimpy member's wave).
            inbox = self._grads_inbox
            before = len(inbox)
            inbox[:] = [entry for entry in inbox if entry[0] != worker]
            pending = server.pending
            before += len(pending)
            pending[:] = [entry for entry in pending if entry[0] != worker]
            released = before - len(inbox) - len(pending)
            server.gradients_dropped += released
        else:
            # The joiner resumes at its start iteration; record it
            # before its first report so the SSP minimum never dips to
            # its stale pre-leave counter.
            server.worker_iterations[worker] = iteration
        server.release_waiters()
        notify = self._notify
        if not notify[0].triggered:
            notify[0].succeed()

    def _server(
        self,
        runtime: ProtocolRuntime,
        server: _ServerState,
        grads_inbox: list,
        notify: List[Event],
    ):
        """The PS process: aggregate gradients and update parameters."""
        env = runtime.env
        optimizer = self.optimizer_proto
        membership = self._membership
        # The BSP quorum lives on the server state so membership
        # transitions can scrub a departed worker's contribution.
        pending = server.pending

        def try_fold() -> None:
            # Once fast workers retire (or members depart), the quorum
            # shrinks to the remaining active workers (else stragglers
            # would wait forever for gradients nobody will send).
            if membership is None:
                active = int((~runtime.done).sum())
            else:
                active = sum(
                    1
                    for w in range(self.n_workers)
                    if not runtime.done[w] and membership.is_active(w)
                )
            need = max(1, min(self.n_workers - self.n_backup, active))
            if pending and len(pending) >= need:
                mean_grad = np.mean([g for _, g in pending], axis=0)
                delta = optimizer.step(
                    server.params, mean_grad, server.version
                )
                server.params = server.params + delta
                server.gradients_applied += len(pending)
                pending[:] = []
                server.advance_version()

        while not runtime.done.all() or grads_inbox:
            if membership is not None and self.mode == "bsp":
                # A leave may have shrunk the quorum below the pending
                # count without any new arrival; re-check on every poke
                # so the barrier folds instead of deadlocking.
                try_fold()
            if not grads_inbox:
                notify[0] = Event(env)
                yield notify[0]
                continue
            wid, version, grad = grads_inbox.pop(0)
            if self.mode == "bsp":
                if version != server.version:
                    server.gradients_dropped += 1
                    continue
                pending.append((wid, grad))
                try_fold()
            else:
                # async / ssp: apply immediately.
                delta = optimizer.step(server.params, grad, version)
                server.params = server.params + delta
                server.gradients_applied += 1
                server.advance_version()

    # ------------------------------------------------------------------
    # ProtocolCluster hooks
    # ------------------------------------------------------------------
    def _start(self, runtime: ProtocolRuntime) -> None:
        env = runtime.env
        nic = SharedNic(
            env, bandwidth=self.ps_bandwidth, latency=self.ps_latency
        )
        self._nic = nic
        server = _ServerState(
            env, runtime.models[0].get_params(), self.n_workers
        )
        self._server_state = server
        grads_inbox: list = []
        notify: List[Event] = [Event(env)]

        if self.churn is not None:
            from repro.graphs.builders import ring
            from repro.membership import MembershipView

            plan = self.churn
            # The real PS fabric is the shard map; the nominal overlay
            # only anchors the membership view's rewire reporting.
            nominal = self.topology or ring(self.n_workers)
            view = MembershipView.founding(
                nominal,
                absent=plan.initially_absent(),
                policy=plan.policy,
            )
            self._completed = [0] * self.n_workers
            self._shards = ParamShards(int(server.params.size), view.active)
            self._elastic_runtime = runtime
            self._grads_inbox = grads_inbox
            self._notify = notify
            self._membership = _make_ps_membership(
                env, view, plan, self.max_iter, runtime.gap, self
            )
            server.membership = self._membership

        for wid in range(self.n_workers):
            env.process(
                self._worker(
                    wid,
                    runtime,
                    server,
                    nic,
                    runtime.models[wid],
                    self._make_batcher(wid),
                    grads_inbox,
                    notify,
                ),
                name=f"ps-worker-{wid}",
            )
        env.process(
            self._server(runtime, server, grads_inbox, notify),
            name="ps-server",
        )

    def _final_param_stack(self, runtime: ProtocolRuntime) -> np.ndarray:
        return self._server_state.params[None, :]

    def _config_description(self) -> str:
        mode_desc = self.mode
        if self.mode == "bsp" and self.n_backup:
            mode_desc += f"+backup({self.n_backup})"
        if self.mode == "ssp":
            mode_desc += f"(s={self.staleness})"
        return f"parameter server, {mode_desc}"

    def _topology_name(self) -> str:
        return f"star({self.n_workers}+PS)"

    def _iterations_completed(self, runtime: ProtocolRuntime) -> List[int]:
        if self._membership is not None:
            return list(self._completed)
        return super()._iterations_completed(runtime)

    def _messages_dropped(self, runtime: ProtocolRuntime) -> int:
        if self._membership is not None:
            return self._membership.messages_dropped
        return 0

    def _message_totals(self, runtime: ProtocolRuntime) -> Tuple[int, float]:
        if self._membership is not None:
            # Retransmits, seeds and shard failovers make the analytic
            # count wrong under churn; the accumulated runtime traffic
            # is authoritative.
            return super()._message_totals(runtime)
        transfers = self.n_workers * self.max_iter
        # Dense pulls + (possibly compressed) pushes.  Uncompressed
        # this is bitwise the old 2*transfers*update_size: u + u == 2u
        # and doubling commutes with the rounding of each product.
        return 2 * transfers, (
            transfers * runtime.update_size
            + transfers * self._wire_size(runtime)
        )


def _builder(mode: str):
    def _build(spec) -> ParameterServerCluster:
        return ParameterServerCluster(
            n_workers=spec.topology.n,
            mode=mode,
            n_backup=spec.ps_backup,
            staleness=spec.ps_staleness,
            churn=getattr(spec.built_scenario(), "churn", None),
            topology=spec.topology,
            **spec_common_kwargs(spec),
        )

    return _build


# The PS protocols share HetPipe-style elasticity (Park et al.,
# arXiv:2005.14038): the parameter vector is sharded per founding
# member, leaves fail shards over to the live set and release stale
# contributions, joiners seed their state from the live shards.
register_protocol(
    "ps-bsp",
    _builder("bsp"),
    summary="Parameter server, bulk-synchronous (optional backup "
    "workers) behind a shared-NIC hotspot",
    paper="Li et al. — OSDI 2014; Chen et al. — arXiv:1604.00981",
    aliases=("ps",),
    elastic=True,
)
register_protocol(
    "ps-async",
    _builder("async"),
    summary="Parameter server, fully asynchronous (Hogwild-style)",
    paper="Dean et al. — NeurIPS 2012",
    elastic=True,
)
register_protocol(
    "ps-ssp",
    _builder("ssp"),
    summary="Parameter server, stale-synchronous (global staleness "
    "bound)",
    paper="Ho et al. — NeurIPS 2013",
    elastic=True,
)
