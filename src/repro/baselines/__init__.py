"""Baseline systems the paper compares against (or discusses).

* :class:`ParameterServerCluster` — centralized PS (BSP / async / SSP,
  with backup workers) behind a shared-NIC hotspot (Figure 13's foil).
  Registered as ``"ps-bsp"`` (alias ``"ps"``), ``"ps-async"``,
  ``"ps-ssp"``.
* :class:`RingAllReduceCluster` — synchronous chunked ring all-reduce.
  Registered as ``"allreduce"``.
* :class:`ADPSGDCluster` — asynchronous decentralized gossip SGD on a
  bipartite graph (the Section 5 comparison point).  Registered as
  ``"adpsgd"``.

All three subclass :class:`repro.protocols.ProtocolCluster` and are
resolved by name through :mod:`repro.protocols.registry` — see
``python -m repro protocols`` for the full table.
"""

from repro.baselines.adpsgd import ADPSGDCluster
from repro.baselines.allreduce import RingAllReduceCluster
from repro.baselines.ps import ParameterServerCluster

__all__ = [
    "ADPSGDCluster",
    "ParameterServerCluster",
    "RingAllReduceCluster",
]
