"""Baseline systems the paper compares against (or discusses).

* :class:`ParameterServerCluster` — centralized PS (BSP / async / SSP,
  with backup workers) behind a shared-NIC hotspot (Figure 13's foil).
* :class:`RingAllReduceCluster` — synchronous chunked ring all-reduce.
* :class:`ADPSGDCluster` — asynchronous decentralized gossip SGD on a
  bipartite graph (the Section 5 comparison point).
"""

from repro.baselines.adpsgd import ADPSGDCluster
from repro.baselines.allreduce import RingAllReduceCluster
from repro.baselines.ps import ParameterServerCluster

__all__ = [
    "ADPSGDCluster",
    "ParameterServerCluster",
    "RingAllReduceCluster",
]
