"""Ring All-Reduce training: the decentralized-but-synchronous baseline.

Bandwidth-optimal chunked ring all-reduce [Patarasuk & Yuan 2009]: each
iteration every worker computes a gradient, then the ring performs
``2(n-1)`` chunk steps (scatter-reduce + all-gather), each moving
``M/n`` data per link.  All workers stay in lockstep, so one straggler
stalls the whole ring — the inflexibility the paper contrasts Hop
against (Section 2.3: backup workers are impossible here).

Registered as protocol ``"allreduce"``.  The Prague-style *partial*
all-reduce (:mod:`repro.protocols.partial_allreduce`) relaxes exactly
this global barrier into independent, randomized groups.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.net.links import Link
from repro.protocols.base import ProtocolCluster, ProtocolRuntime
from repro.protocols.registry import register_protocol, spec_common_kwargs


class RingAllReduceCluster(ProtocolCluster):
    """Synchronous ring all-reduce training.

    Args:
        n_workers: Ring size.
        model_factory: Same convention as
            :class:`~repro.protocols.base.ProtocolCluster`.
        dataset: Training/test data.
        optimizer: One logical optimizer (all replicas are identical).
        link: Per-hop link model for the ring.
        compute_model: Worker compute-time oracle.
    """

    protocol = "allreduce"

    def __init__(
        self,
        n_workers: int,
        model_factory,
        dataset,
        optimizer=None,
        link: Optional[Link] = None,
        compute_model=None,
        batch_size: int = 32,
        max_iter: int = 100,
        seed: int = 0,
        update_size: Optional[float] = None,
        evaluate: bool = True,
        trace_channels=None,
    ) -> None:
        if n_workers < 2:
            raise ValueError("ring all-reduce needs >= 2 workers")
        super().__init__(
            n_workers=n_workers,
            model_factory=model_factory,
            dataset=dataset,
            optimizer=optimizer,
            batch_size=batch_size,
            compute_model=compute_model,
            max_iter=max_iter,
            seed=seed,
            update_size=update_size,
            evaluate=evaluate,
            trace_channels=trace_channels,
        )
        self.link = link or Link()

    def communication_time(self, update_size: float) -> float:
        """2(n-1) chunk steps of size M/n each (bandwidth-optimal)."""
        chunk = update_size / self.n_workers
        return 2 * (self.n_workers - 1) * self.link.transfer_time(chunk)

    # ------------------------------------------------------------------
    # ProtocolCluster hooks
    # ------------------------------------------------------------------
    def _start(self, runtime: ProtocolRuntime) -> None:
        env = runtime.env
        n = self.n_workers
        batchers = [self._make_batcher(wid) for wid in range(n)]
        self._params: List[np.ndarray] = [runtime.models[0].get_params()]
        comm_time = self.communication_time(runtime.update_size)
        optimizer = self.optimizer_proto

        def driver(env):
            params = self._params
            for k in range(self.max_iter):
                start = env.now
                runtime.gap.record_many(k)
                grads = []
                for wid in range(n):
                    runtime.models[wid].set_params(params[0])
                    xb, yb = batchers[wid].next_batch()
                    loss, grad = runtime.models[wid].loss_and_grad(xb, yb)
                    grads.append(grad)
                    runtime.tracer.log(f"loss/{wid}", env.now, loss)
                # Lockstep: the slowest worker gates the ring.
                slowest = max(
                    self.compute_model.duration(wid, k) for wid in range(n)
                )
                yield env.timeout(slowest + comm_time)
                mean_grad = np.mean(grads, axis=0)
                params[0] = params[0] + optimizer.step(params[0], mean_grad, k)
                for wid in range(n):
                    runtime.tracer.log(
                        f"duration/{wid}", env.now, env.now - start
                    )
            runtime.done[:] = True

        env.process(driver(env), name="allreduce-driver")

    def _final_param_stack(self, runtime: ProtocolRuntime) -> np.ndarray:
        return self._params[0][None, :]

    def _config_description(self) -> str:
        return "ring all-reduce (synchronous, chunked)"

    def _topology_name(self) -> str:
        return f"ring({self.n_workers})"

    def _message_totals(self, runtime: ProtocolRuntime) -> Tuple[int, float]:
        n, chunks = self.n_workers, 2 * (self.n_workers - 1)
        return (
            chunks * n * self.max_iter,
            chunks * runtime.update_size * self.max_iter,
        )


def _build_allreduce(spec) -> RingAllReduceCluster:
    return RingAllReduceCluster(
        n_workers=spec.topology.n, **spec_common_kwargs(spec)
    )


register_protocol(
    "allreduce",
    _build_allreduce,
    summary="Synchronous chunked ring all-reduce (global lockstep "
    "barrier)",
    paper="Patarasuk & Yuan — JPDC 2009",
    # A global barrier has no meaningful partial membership: churn
    # scenarios are rejected at build time; static behavior is pinned
    # bit-identically by the golden conformance cells.
    elastic=False,
)
