"""Ring All-Reduce training: the decentralized-but-synchronous baseline.

Bandwidth-optimal chunked ring all-reduce [Patarasuk & Yuan 2009]: each
iteration every worker computes a gradient, then the ring performs
``2(n-1)`` chunk steps (scatter-reduce + all-gather), each moving
``M/n`` data per link.  All workers stay in lockstep, so one straggler
stalls the whole ring — the inflexibility the paper contrasts Hop
against (Section 2.3: backup workers are impossible here).

Registered as protocol ``"allreduce"``.  The Prague-style *partial*
all-reduce (:mod:`repro.protocols.partial_allreduce`) relaxes exactly
this global barrier into independent, randomized groups.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.net.links import Link
from repro.protocols.base import ProtocolCluster, ProtocolRuntime
from repro.protocols.registry import register_protocol, spec_common_kwargs


def rebuild_ring(members: Iterable[int]) -> Tuple[Tuple[int, int], ...]:
    """The deterministic ring over a live member set.

    Members are ordered ascending and wrapped: departed workers are
    excised, joiners splice in at their id's position, and every
    participant derives the identical ring without coordination.
    Returns the directed edge list; fewer than two members yield no
    ring at all.
    """
    order = sorted(members)
    if len(order) < 2:
        return ()
    return tuple(
        (order[i], order[(i + 1) % len(order)]) for i in range(len(order))
    )


def chunk_schedule(members: Iterable[int], update_size: float) -> Tuple[int, float]:
    """``(chunk_steps, chunk_size)`` for a ring over ``members``.

    Bandwidth-optimal chunking re-derived from the live ring size
    ``g``: ``2(g - 1)`` steps (scatter-reduce + all-gather) moving
    ``M/g`` per link each.
    """
    g = len(tuple(members))
    if g < 2:
        return 0, 0.0
    return 2 * (g - 1), update_size / g


class RingAllReduceCluster(ProtocolCluster):
    """Synchronous ring all-reduce training.

    Args:
        n_workers: Ring size.
        model_factory: Same convention as
            :class:`~repro.protocols.base.ProtocolCluster`.
        dataset: Training/test data.
        optimizer: One logical optimizer (all replicas are identical).
        link: Per-hop link model for the ring.
        compute_model: Worker compute-time oracle.
        churn: Optional membership churn plan.  The ring is
            round-synchronous, so leave/join iterations are global
            round numbers: at each round boundary the driver enacts the
            plan's transitions, rebuilds the ring from the membership
            view (:func:`rebuild_ring`) and re-derives the chunk
            schedule (:func:`chunk_schedule`) over the live set.  A
            joiner needs no separate state transfer — the all-gather
            phase of its first round hands it the fully reduced
            parameter vector.
    """

    protocol = "allreduce"
    elastic = True

    def __init__(
        self,
        n_workers: int,
        model_factory,
        dataset,
        optimizer=None,
        link: Optional[Link] = None,
        compute_model=None,
        batch_size: int = 32,
        max_iter: int = 100,
        seed: int = 0,
        update_size: Optional[float] = None,
        evaluate: bool = True,
        trace_channels=None,
        churn=None,
        compression=None,
    ) -> None:
        if n_workers < 2:
            raise ValueError("ring all-reduce needs >= 2 workers")
        super().__init__(
            n_workers=n_workers,
            model_factory=model_factory,
            dataset=dataset,
            optimizer=optimizer,
            batch_size=batch_size,
            compute_model=compute_model,
            max_iter=max_iter,
            seed=seed,
            update_size=update_size,
            evaluate=evaluate,
            trace_channels=trace_channels,
            compression=compression,
        )
        self.link = link or Link()
        if churn is not None and churn.empty:
            churn = None
        if churn is not None:
            churn = churn.clipped(max_iter)
            churn.validate_for(n_workers)
            if churn.empty:
                churn = None
        self.churn = churn
        self._membership = None

    def communication_time(self, update_size: float) -> float:
        """2(n-1) chunk steps of size M/n each (bandwidth-optimal)."""
        chunk = update_size / self.n_workers
        return 2 * (self.n_workers - 1) * self.link.transfer_time(chunk)

    # ------------------------------------------------------------------
    # ProtocolCluster hooks
    # ------------------------------------------------------------------
    def _start(self, runtime: ProtocolRuntime) -> None:
        if self.churn is not None:
            return self._start_elastic(runtime)
        env = runtime.env
        n = self.n_workers
        batchers = [self._make_batcher(wid) for wid in range(n)]
        self._params: List[np.ndarray] = [runtime.models[0].get_params()]
        # Compressed rings move sparse/quantized chunks: the ring's
        # chunked schedule is priced at the wire size (dense runs see
        # the identical float — payload_bytes(x) * 1.0 is exact).
        comm_time = self.communication_time(self._wire_size(runtime))
        optimizer = self.optimizer_proto
        compressors = [
            self._stream_compressor(runtime, wid, stream="grad")
            for wid in range(n)
        ]

        def driver(env):
            params = self._params
            for k in range(self.max_iter):
                start = env.now
                runtime.gap.record_many(k)
                grads = []
                for wid in range(n):
                    runtime.models[wid].set_params(params[0])
                    xb, yb = batchers[wid].next_batch()
                    loss, grad = runtime.models[wid].loss_and_grad(xb, yb)
                    if compressors[wid] is not None:
                        # Error-feedback sparsification: the ring
                        # reduces each worker's reconstruction; the
                        # residual folds back into the next round.
                        _, grad = compressors[wid].compress(grad)
                    grads.append(grad)
                    runtime.tracer.log(f"loss/{wid}", env.now, loss)
                # Lockstep: the slowest worker gates the ring.
                slowest = max(
                    self.compute_model.duration(wid, k) for wid in range(n)
                )
                yield env.timeout(slowest + comm_time)
                mean_grad = np.mean(grads, axis=0)
                params[0] = params[0] + optimizer.step(params[0], mean_grad, k)
                for wid in range(n):
                    runtime.tracer.log(
                        f"duration/{wid}", env.now, env.now - start
                    )
            runtime.done[:] = True

        env.process(driver(env), name="allreduce-driver")

    def _start_elastic(self, runtime: ProtocolRuntime) -> None:
        """The churn-aware driver: one lockstep ring per round, rebuilt
        from the membership view at every round boundary."""
        from repro.graphs.builders import ring
        from repro.membership import MembershipRuntime, MembershipView

        env = runtime.env
        n = self.n_workers
        plan = self.churn
        batchers = [self._make_batcher(wid) for wid in range(n)]
        self._params = [runtime.models[0].get_params()]
        self._completed = [0] * n
        optimizer = self.optimizer_proto
        view = MembershipView.founding(
            ring(n), absent=plan.initially_absent(), policy=plan.policy
        )
        # Lockstep: leave/join iterations are global round numbers, so
        # the driver enacts joins itself instead of frontier triggers.
        membership = self._membership = MembershipRuntime(
            env,
            view,
            plan,
            self.max_iter,
            gap=runtime.gap,
            auto_join_triggers=False,
        )

        wire_size = self._wire_size(runtime)
        compressors = [
            self._stream_compressor(runtime, wid, stream="grad")
            for wid in range(n)
        ]

        def driver(env):
            params = self._params
            for k in range(self.max_iter):
                start = env.now
                # Round boundary: excise departed members, splice in
                # joiners, both recorded against round k.  The rewire
                # policy bridges the membership view's ring; the
                # compute/communication ring below is re-derived
                # deterministically from the resulting live set.
                for wid in range(n):
                    if membership.is_active(wid) and not plan.active_at(
                        wid, k
                    ):
                        membership.enact_leave(wid, env.now, k)
                for wid in range(n):
                    if not membership.is_active(wid) and plan.active_at(
                        wid, k
                    ):
                        membership.enact_join(wid, env.now, start=k)
                members = sorted(membership.view.active)
                steps, chunk = chunk_schedule(members, wire_size)
                comm_time = steps * self.link.transfer_time(chunk)
                grads = []
                for wid in members:
                    runtime.gap.record(wid, k)
                    runtime.models[wid].set_params(params[0])
                    xb, yb = batchers[wid].next_batch()
                    loss, grad = runtime.models[wid].loss_and_grad(xb, yb)
                    if compressors[wid] is not None:
                        _, grad = compressors[wid].compress(grad)
                    grads.append(grad)
                    runtime.tracer.log(f"loss/{wid}", env.now, loss)
                # Lockstep: the slowest live member gates the ring.
                slowest = max(
                    self.compute_model.duration(wid, k) for wid in members
                )
                yield env.timeout(slowest + comm_time)
                # Each chunk step moves one chunk over every live ring
                # edge; the edge count comes from the rebuilt ring.
                edges = len(rebuild_ring(members))
                runtime.count_traffic(steps * edges, steps * chunk * edges)
                mean_grad = np.mean(grads, axis=0)
                params[0] = params[0] + optimizer.step(params[0], mean_grad, k)
                for wid in members:
                    self._completed[wid] = k + 1
                    runtime.tracer.log(
                        f"duration/{wid}", env.now, env.now - start
                    )
            runtime.done[:] = True

        env.process(driver(env), name="allreduce-driver")

    def _final_param_stack(self, runtime: ProtocolRuntime) -> np.ndarray:
        return self._params[0][None, :]

    def _config_description(self) -> str:
        return "ring all-reduce (synchronous, chunked)"

    def _topology_name(self) -> str:
        return f"ring({self.n_workers})"

    def _iterations_completed(self, runtime: ProtocolRuntime) -> List[int]:
        if self._membership is not None:
            return list(self._completed)
        return super()._iterations_completed(runtime)

    def _messages_dropped(self, runtime: ProtocolRuntime) -> int:
        if self._membership is not None:
            return self._membership.messages_dropped
        return 0

    def _message_totals(self, runtime: ProtocolRuntime) -> Tuple[int, float]:
        if self._membership is not None:
            # Rings shrink and regrow under churn: the per-round counts
            # accumulated by the elastic driver are authoritative.
            return super()._message_totals(runtime)
        n, chunks = self.n_workers, 2 * (self.n_workers - 1)
        return (
            chunks * n * self.max_iter,
            chunks * self._wire_size(runtime) * self.max_iter,
        )


def _build_allreduce(spec) -> RingAllReduceCluster:
    # The ring prices every chunk step through one Link; honor the
    # spec's network override so bandwidth-constrained ablations
    # (fig26) see compression in the simulated clock, not just bytes.
    # (Scenario link flaps stay analytic-free here: the lockstep ring
    # has no per-message fabric for them to act on.)
    return RingAllReduceCluster(
        n_workers=spec.topology.n,
        link=spec.links.default if spec.links is not None else None,
        churn=getattr(spec.built_scenario(), "churn", None),
        **spec_common_kwargs(spec),
    )


register_protocol(
    "allreduce",
    _build_allreduce,
    summary="Synchronous chunked ring all-reduce (global lockstep "
    "barrier)",
    paper="Patarasuk & Yuan — JPDC 2009",
    # Round-synchronous elasticity: the driver rebuilds the ring from
    # the membership view at every round boundary and re-derives the
    # chunk schedule over the live set.
    elastic=True,
)
