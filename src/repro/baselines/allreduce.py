"""Ring All-Reduce training: the decentralized-but-synchronous baseline.

Bandwidth-optimal chunked ring all-reduce [Patarasuk & Yuan 2009]: each
iteration every worker computes a gradient, then the ring performs
``2(n-1)`` chunk steps (scatter-reduce + all-gather), each moving
``M/n`` data per link.  All workers stay in lockstep, so one straggler
stalls the whole ring — the inflexibility the paper contrasts Hop
against (Section 2.3: backup workers are impossible here).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core.cluster import TrainingRun
from repro.core.gap import GapTracker
from repro.hetero.compute import ComputeModel
from repro.ml.data import Batcher, Dataset
from repro.ml.optim import SGD
from repro.net.links import Link
from repro.net.message import params_message_size
from repro.sim.engine import Environment
from repro.sim.rng import RngStreams
from repro.sim.trace import StatAccumulator, Tracer


class RingAllReduceCluster:
    """Synchronous ring all-reduce training.

    Args:
        n_workers: Ring size.
        model_factory: Same convention as :class:`HopCluster`.
        dataset: Training/test data.
        optimizer: One logical optimizer (all replicas are identical).
        link: Per-hop link model for the ring.
        compute_model: Worker compute-time oracle.
    """

    def __init__(
        self,
        n_workers: int,
        model_factory: Callable[[np.random.Generator], object],
        dataset: Dataset,
        optimizer: Optional[SGD] = None,
        link: Optional[Link] = None,
        compute_model: Optional[ComputeModel] = None,
        batch_size: int = 32,
        max_iter: int = 100,
        seed: int = 0,
        update_size: Optional[float] = None,
        evaluate: bool = True,
    ) -> None:
        if n_workers < 2:
            raise ValueError("ring all-reduce needs >= 2 workers")
        self.n = n_workers
        self.model_factory = model_factory
        self.dataset = dataset
        self.optimizer = optimizer or SGD(lr=0.1, momentum=0.9)
        self.link = link or Link()
        self.batch_size = batch_size
        self.max_iter = max_iter
        self.seed = seed
        self.streams = RngStreams(seed)
        self.compute_model = compute_model or ComputeModel(
            base_time=0.1, n_workers=n_workers
        )
        self._update_size = update_size
        self.evaluate = evaluate

    def communication_time(self, update_size: float) -> float:
        """2(n-1) chunk steps of size M/n each (bandwidth-optimal)."""
        chunk = update_size / self.n
        return 2 * (self.n - 1) * self.link.transfer_time(chunk)

    def run(self) -> TrainingRun:
        env = Environment()
        tracer = Tracer()
        gap = GapTracker(self.n)
        models = [
            self.model_factory(self.streams.fresh("model-init"))
            for _ in range(self.n)
        ]
        update_size = (
            self._update_size
            if self._update_size is not None
            else params_message_size(models[0].dim)
        )
        batchers = [
            Batcher(
                self.dataset.x_train,
                self.dataset.y_train,
                self.batch_size,
                self.streams.stream("data", wid),
            )
            for wid in range(self.n)
        ]
        params = models[0].get_params()
        durations = StatAccumulator()
        comm_time = self.communication_time(update_size)

        def driver(env: Environment):
            nonlocal params
            for k in range(self.max_iter):
                start = env.now
                gap.record_many(k)
                grads = []
                for wid in range(self.n):
                    models[wid].set_params(params)
                    xb, yb = batchers[wid].next_batch()
                    loss, grad = models[wid].loss_and_grad(xb, yb)
                    grads.append(grad)
                    tracer.log(f"loss/{wid}", env.now, loss)
                # Lockstep: the slowest worker gates the ring.
                slowest = max(
                    self.compute_model.duration(wid, k)
                    for wid in range(self.n)
                )
                yield env.timeout(slowest + comm_time)
                mean_grad = np.mean(grads, axis=0)
                params = params + self.optimizer.step(params, mean_grad, k)
                durations.add(env.now - start)
                for wid in range(self.n):
                    tracer.log(f"duration/{wid}", env.now, env.now - start)

        env.process(driver(env), name="allreduce-driver")
        env.run()

        final_loss = final_accuracy = None
        if self.evaluate:
            models[0].set_params(params)
            final_loss, final_accuracy = models[0].evaluate(
                self.dataset.x_test, self.dataset.y_test
            )

        return TrainingRun(
            protocol="allreduce",
            config_description="ring all-reduce (synchronous, chunked)",
            topology_name=f"ring({self.n})",
            n_workers=self.n,
            max_iter=self.max_iter,
            wall_time=env.now,
            tracer=tracer,
            gap=gap,
            iterations_completed=[self.max_iter] * self.n,
            iterations_skipped=[0] * self.n,
            messages_sent=2 * (self.n - 1) * self.n * self.max_iter,
            bytes_sent=2 * (self.n - 1) * update_size * self.max_iter,
            final_params=params,
            final_loss=final_loss,
            final_accuracy=final_accuracy,
            consensus=0.0,
            worker_stats=[
                {
                    "wid": wid,
                    "iterations_completed": self.max_iter,
                    "iteration_duration_mean": durations.mean,
                    "iteration_duration_max": durations.max,
                    "recv_wait_mean": 0.0,
                    "loss_mean": 0.0,
                }
                for wid in range(self.n)
            ],
        )
