"""Loss functions with analytic gradients.

The paper's two workloads map to :class:`SoftmaxCrossEntropy` (CNN on
image classification) and :class:`LogisticLoss` (the paper uses "log
loss for SVM instead of hinge loss"); :class:`HingeLoss` is included
for completeness / ablations.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.special import expit


class Loss:
    """Base class: ``value_and_grad`` returns (mean loss, d loss / d scores)."""

    def value_and_grad(
        self, scores: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        raise NotImplementedError

    def value(self, scores: np.ndarray, targets: np.ndarray) -> float:
        return self.value_and_grad(scores, targets)[0]


class SoftmaxCrossEntropy(Loss):
    """Multi-class cross entropy over unnormalized scores.

    ``targets`` are integer class labels of shape ``(N,)``.
    """

    def value_and_grad(
        self, scores: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        n = scores.shape[0]
        targets = np.asarray(targets, dtype=int)
        shifted = scores - scores.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        eps = 1e-12
        loss = float(-np.mean(np.log(probs[np.arange(n), targets] + eps)))
        dscores = probs.copy()
        dscores[np.arange(n), targets] -= 1.0
        dscores /= n
        return loss, dscores


class LogisticLoss(Loss):
    """Binary log loss over margins (the paper's SVM objective).

    ``scores`` has shape ``(N, 1)`` or ``(N,)``; ``targets`` are
    in {-1, +1} (0/1 labels are remapped).  The loss is
    ``mean(log(1 + exp(-y * s)))``.
    """

    @staticmethod
    def _signed_targets(targets: np.ndarray) -> np.ndarray:
        targets = np.asarray(targets, dtype=np.float64).ravel()
        unique = np.unique(targets)
        if np.all(np.isin(unique, (0.0, 1.0))):
            return 2.0 * targets - 1.0
        if np.all(np.isin(unique, (-1.0, 1.0))):
            return targets
        raise ValueError(f"labels must be 0/1 or -1/+1, got {unique}")

    def value_and_grad(
        self, scores: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        original_shape = scores.shape
        s = np.asarray(scores, dtype=np.float64).ravel()
        y = self._signed_targets(targets)
        if s.shape != y.shape:
            raise ValueError(f"scores {s.shape} vs targets {y.shape}")
        margins = y * s
        # log(1 + exp(-m)) computed stably.
        loss = float(np.mean(np.logaddexp(0.0, -margins)))
        sigma = expit(-margins)  # = exp(-m) / (1 + exp(-m)), overflow-safe
        dscores = (-y * sigma) / s.size
        return loss, dscores.reshape(original_shape)


class HingeLoss(Loss):
    """Standard SVM hinge loss ``mean(max(0, 1 - y * s))``."""

    def value_and_grad(
        self, scores: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        original_shape = scores.shape
        s = np.asarray(scores, dtype=np.float64).ravel()
        y = LogisticLoss._signed_targets(targets)
        if s.shape != y.shape:
            raise ValueError(f"scores {s.shape} vs targets {y.shape}")
        margins = 1.0 - y * s
        loss = float(np.mean(np.maximum(0.0, margins)))
        active = (margins > 0).astype(np.float64)
        dscores = (-y * active) / s.size
        return loss, dscores.reshape(original_shape)
