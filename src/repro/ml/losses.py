"""Loss functions with analytic gradients.

The paper's two workloads map to :class:`SoftmaxCrossEntropy` (CNN on
image classification) and :class:`LogisticLoss` (the paper uses "log
loss for SVM instead of hinge loss"); :class:`HingeLoss` is included
for completeness / ablations.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.special import expit


class Loss:
    """Base class: ``value_and_grad`` returns (mean loss, d loss / d scores)."""

    def value_and_grad(
        self, scores: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        raise NotImplementedError

    def value(self, scores: np.ndarray, targets: np.ndarray) -> float:
        return self.value_and_grad(scores, targets)[0]


class SoftmaxCrossEntropy(Loss):
    """Multi-class cross entropy over unnormalized scores.

    ``targets`` are integer class labels of shape ``(N,)``.

    The shift/exp/normalize chain runs in one reusable probability
    buffer (per loss instance — each model owns its loss), so the
    per-minibatch hot path allocates only the returned gradient.  The
    operation order matches the former out-of-place arithmetic exactly.
    """

    def __init__(self) -> None:
        self._probs: np.ndarray = np.zeros(0)
        self._rows: np.ndarray = np.zeros(0, dtype=np.intp)

    def value_and_grad(
        self, scores: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        n = scores.shape[0]
        targets = np.asarray(targets, dtype=int)
        dtype = scores.dtype if scores.dtype.kind == "f" else np.float64
        probs = self._probs
        if probs.shape != scores.shape or probs.dtype != dtype:
            probs = self._probs = np.empty(scores.shape, dtype=dtype)
        rows = self._rows
        if rows.size != n:
            rows = self._rows = np.arange(n)
        np.subtract(scores, scores.max(axis=1, keepdims=True), out=probs)
        np.exp(probs, out=probs)
        probs /= probs.sum(axis=1, keepdims=True)
        eps = 1e-12
        loss = float(-np.mean(np.log(probs[rows, targets] + eps)))
        dscores = probs.copy()
        dscores[rows, targets] -= 1.0
        dscores /= n
        return loss, dscores


class LogisticLoss(Loss):
    """Binary log loss over margins (the paper's SVM objective).

    ``scores`` has shape ``(N, 1)`` or ``(N,)``; ``targets`` are
    in {-1, +1} (0/1 labels are remapped).  The loss is
    ``mean(log(1 + exp(-y * s)))``.
    """

    @staticmethod
    def _signed_targets(targets: np.ndarray) -> np.ndarray:
        # Two cheap vectorized membership checks instead of the former
        # np.unique + np.isin pair: this runs once per minibatch on the
        # training hot path.  Outputs are unchanged.
        targets = np.asarray(targets, dtype=np.float64).ravel()
        positive = targets == 1.0
        if (positive | (targets == 0.0)).all():
            return 2.0 * targets - 1.0
        if (positive | (targets == -1.0)).all():
            return targets
        raise ValueError(
            f"labels must be 0/1 or -1/+1, got {np.unique(targets)}"
        )

    def value_and_grad(
        self, scores: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        original_shape = scores.shape
        s = np.asarray(scores, dtype=np.float64).ravel()
        y = self._signed_targets(targets)
        if s.shape != y.shape:
            raise ValueError(f"scores {s.shape} vs targets {y.shape}")
        margins = y * s
        # ``-margins`` feeds both the stable log term and the sigmoid;
        # negate once.  add.reduce/size is np.mean minus the wrapper —
        # bit-identical, and this runs once per minibatch.
        neg_margins = -margins
        losses = np.logaddexp(0.0, neg_margins)  # log(1 + exp(-m)), stable
        loss = float(np.add.reduce(losses) / losses.size)
        sigma = expit(neg_margins)  # = exp(-m) / (1 + exp(-m)), overflow-safe
        dscores = (-y * sigma) / s.size
        return loss, dscores.reshape(original_shape)


class HingeLoss(Loss):
    """Standard SVM hinge loss ``mean(max(0, 1 - y * s))``."""

    def value_and_grad(
        self, scores: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        original_shape = scores.shape
        s = np.asarray(scores, dtype=np.float64).ravel()
        y = LogisticLoss._signed_targets(targets)
        if s.shape != y.shape:
            raise ValueError(f"scores {s.shape} vs targets {y.shape}")
        margins = 1.0 - y * s
        loss = float(np.mean(np.maximum(0.0, margins)))
        active = (margins > 0).astype(np.float64)
        dscores = (-y * active) / s.size
        return loss, dscores.reshape(original_shape)
