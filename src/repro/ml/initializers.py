"""Weight initializers for the numpy NN engine."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def zeros(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """All-zero initialization (biases)."""
    del rng  # determinism: zeros never consume randomness
    return np.zeros(shape)


def normal(
    shape: Tuple[int, ...], rng: np.random.Generator, scale: float = 0.01
) -> np.ndarray:
    """Gaussian initialization with a fixed scale."""
    return rng.normal(0.0, scale, size=shape)


def he(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) initialization for ReLU networks.

    Fan-in is the product of all dimensions except the first (works for
    both dense ``(out, in)`` and conv ``(filters, C, KH, KW)`` shapes).
    """
    fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else int(shape[0])
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


def xavier(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else int(shape[0])
    fan_out = int(shape[0])
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape)
