"""Neural-network layers with explicit forward/backward passes.

Pure-numpy implementations sized for the simulator: the paper trains
VGG11 on CIFAR-10; we train a scaled-down VGG-style CNN (same layer
types: convolution, ReLU, max-pooling, dense) on synthetic images, so
gradient *dynamics* are real while per-step cost stays laptop-sized.

Every layer implements::

    y = layer.forward(x, training=...)
    dx = layer.backward(dy)     # also accumulates parameter gradients
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.ml.initializers import he, zeros
from repro.ml.params import Parameter


class Layer:
    """Base class: stateless layers just override forward/backward."""

    def parameters(self) -> List[Parameter]:
        return []

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dout: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Dense(Layer):
    """Fully connected layer: ``y = x @ W.T + b``."""

    def __init__(
        self, in_features: int, out_features: int, rng: np.random.Generator
    ) -> None:
        self.in_features = in_features
        self.out_features = out_features
        self.W = Parameter(he((out_features, in_features), rng), "dense.W")
        self.b = Parameter(zeros((out_features,), rng), "dense.b")
        self._x: Optional[np.ndarray] = None

    def parameters(self) -> List[Parameter]:
        return [self.W, self.b]

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expected (N, {self.in_features}), got {x.shape}"
            )
        self._x = x if training else None
        return x @ self.W.data.T + self.b.data

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward() before forward(training=True)")
        self.W.grad += dout.T @ self._x
        self.b.grad += dout.sum(axis=0)
        return dout @ self.W.data

    def __repr__(self) -> str:
        return f"Dense({self.in_features}, {self.out_features})"


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        mask = x > 0
        self._mask = mask if training else None
        return x * mask

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward() before forward(training=True)")
        return dout * self._mask


class Tanh(Layer):
    """Hyperbolic-tangent activation."""

    def __init__(self) -> None:
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        out = np.tanh(x)
        self._out = out if training else None
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward() before forward(training=True)")
        return dout * (1.0 - self._out**2)


class Sigmoid(Layer):
    """Logistic activation."""

    def __init__(self) -> None:
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        out = 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))
        self._out = out if training else None
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward() before forward(training=True)")
        return dout * self._out * (1.0 - self._out)


class Flatten(Layer):
    """Collapse all non-batch dimensions."""

    def __init__(self) -> None:
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward() before forward()")
        return dout.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout; identity at evaluation time."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return dout
        return dout * self._mask

    def __repr__(self) -> str:
        return f"Dropout({self.rate})"


def _im2col_indices(
    x_shape: Tuple[int, int, int, int], kh: int, kw: int, stride: int, pad: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Index arrays mapping padded input pixels to column positions."""
    n, c, h, w = x_shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1

    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, c)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kw), kh * c)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(c), kh * kw).reshape(-1, 1)
    return k, i, j, out_h, out_w


class Conv2D(Layer):
    """2D convolution (im2col), NCHW layout.

    Args:
        in_channels: Input channel count ``C``.
        out_channels: Number of filters ``F``.
        kernel_size: Square kernel side ``K``.
        rng: Initializer stream.
        stride: Spatial stride.
        pad: Zero padding on each side.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        pad: int = 0,
    ) -> None:
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.pad = pad
        self.W = Parameter(
            he((out_channels, in_channels, kernel_size, kernel_size), rng),
            "conv.W",
        )
        self.b = Parameter(zeros((out_channels,), rng), "conv.b")
        self._cache: Optional[tuple] = None

    def parameters(self) -> List[Parameter]:
        return [self.W, self.b]

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2D expected (N, {self.in_channels}, H, W), got {x.shape}"
            )
        n = x.shape[0]
        k_idx, i_idx, j_idx, out_h, out_w = _im2col_indices(
            x.shape, self.kernel_size, self.kernel_size, self.stride, self.pad
        )
        x_pad = np.pad(
            x, ((0, 0), (0, 0), (self.pad, self.pad), (self.pad, self.pad))
        )
        # cols: (C*K*K, N*out_h*out_w)
        cols = x_pad[:, k_idx, i_idx, j_idx].transpose(1, 2, 0)
        cols = cols.reshape(self.in_channels * self.kernel_size**2, -1)

        W_row = self.W.data.reshape(self.out_channels, -1)
        out = W_row @ cols + self.b.data.reshape(-1, 1)
        out = out.reshape(self.out_channels, out_h, out_w, n)
        out = out.transpose(3, 0, 1, 2)

        if training:
            self._cache = (x.shape, cols, k_idx, i_idx, j_idx)
        else:
            self._cache = None
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() before forward(training=True)")
        x_shape, cols, k_idx, i_idx, j_idx = self._cache
        n, c, h, w = x_shape

        dout_mat = dout.transpose(1, 2, 3, 0).reshape(self.out_channels, -1)
        self.b.grad += dout_mat.sum(axis=1)
        self.W.grad += (dout_mat @ cols.T).reshape(self.W.shape)

        W_row = self.W.data.reshape(self.out_channels, -1)
        dcols = W_row.T @ dout_mat  # (C*K*K, N*out_h*out_w)
        dcols = dcols.reshape(
            self.in_channels * self.kernel_size**2, -1, n
        ).transpose(2, 0, 1)

        dx_pad = np.zeros((n, c, h + 2 * self.pad, w + 2 * self.pad))
        np.add.at(dx_pad, (slice(None), k_idx, i_idx, j_idx), dcols)
        if self.pad:
            return dx_pad[:, :, self.pad : -self.pad, self.pad : -self.pad]
        return dx_pad

    def __repr__(self) -> str:
        return (
            f"Conv2D({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, stride={self.stride}, pad={self.pad})"
        )


class AvgPool2D(Layer):
    """Average pooling with square window and matching stride (NCHW)."""

    def __init__(self, size: int = 2) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = size
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        if h % s or w % s:
            raise ValueError(f"input {h}x{w} not divisible by pool size {s}")
        self._shape = x.shape if training else None
        return x.reshape(n, c, h // s, s, w // s, s).mean(axis=(3, 5))

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward() before forward(training=True)")
        n, c, h, w = self._shape
        s = self.size
        share = dout / (s * s)
        expanded = np.broadcast_to(
            share[:, :, :, None, :, None], (n, c, h // s, s, w // s, s)
        )
        return expanded.reshape(n, c, h, w)

    def __repr__(self) -> str:
        return f"AvgPool2D({self.size})"


class MaxPool2D(Layer):
    """Max pooling with square window and matching stride (NCHW)."""

    def __init__(self, size: int = 2) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = size
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        if h % s or w % s:
            raise ValueError(f"input {h}x{w} not divisible by pool size {s}")
        # windows: (N, C, H/s, W/s, s*s)
        windows = (
            x.reshape(n, c, h // s, s, w // s, s)
            .transpose(0, 1, 2, 4, 3, 5)
            .reshape(n, c, h // s, w // s, s * s)
        )
        out = windows.max(axis=-1)
        if training:
            # Break ties deterministically: only the first max gets gradient.
            first = np.argmax(windows, axis=-1)
            mask = np.zeros_like(windows, dtype=bool)
            idx = np.indices(first.shape)
            mask[idx[0], idx[1], idx[2], idx[3], first] = True
            self._cache = (x.shape, mask)
        else:
            self._cache = None
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() before forward(training=True)")
        x_shape, mask = self._cache
        n, c, h, w = x_shape
        s = self.size
        expanded = dout[..., None] * mask  # (N, C, H/s, W/s, s*s)
        return (
            expanded.reshape(n, c, h // s, w // s, s, s)
            .transpose(0, 1, 2, 4, 3, 5)
            .reshape(n, c, h, w)
        )

    def __repr__(self) -> str:
        return f"MaxPool2D({self.size})"
