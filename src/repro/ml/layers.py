"""Neural-network layers with explicit forward/backward passes.

Pure-numpy implementations sized for the simulator: the paper trains
VGG11 on CIFAR-10; we train a scaled-down VGG-style CNN (same layer
types: convolution, ReLU, max-pooling, dense) on synthetic images, so
gradient *dynamics* are real while per-step cost stays laptop-sized.

Every layer implements::

    y = layer.forward(x, training=...)
    dx = layer.backward(dy)     # also accumulates parameter gradients
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Tuple

import numpy as np

from repro.ml.initializers import he, zeros
from repro.ml.params import Parameter

try:  # optional: sparse col2im operator (bincount fallback below)
    from scipy import sparse as _sparse
except ImportError:  # pragma: no cover - scipy is present in CI
    _sparse = None


class Layer:
    """Base class: stateless layers just override forward/backward."""

    def parameters(self) -> List[Parameter]:
        return []

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        raise NotImplementedError

    def backward(self, dout: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Dense(Layer):
    """Fully connected layer: ``y = x @ W.T + b``."""

    def __init__(
        self, in_features: int, out_features: int, rng: np.random.Generator
    ) -> None:
        self.in_features = in_features
        self.out_features = out_features
        self.W = Parameter(he((out_features, in_features), rng), "dense.W")
        self.b = Parameter(zeros((out_features,), rng), "dense.b")
        self._x: Optional[np.ndarray] = None

    def parameters(self) -> List[Parameter]:
        return [self.W, self.b]

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expected (N, {self.in_features}), got {x.shape}"
            )
        self._x = x if training else None
        return x @ self.W.data.T + self.b.data

    def backward(
        self, dout: np.ndarray, need_input_grad: bool = True
    ) -> Optional[np.ndarray]:
        """Accumulate parameter grads; return ``dx`` (or ``None``).

        ``need_input_grad=False`` skips the input-gradient matmul —
        used for a network's first layer, whose ``dx`` has no consumer.
        """
        if self._x is None:
            raise RuntimeError("backward() before forward(training=True)")
        self.W.grad += dout.T @ self._x
        self.b.grad += dout.sum(axis=0)
        if not need_input_grad:
            return None
        return dout @ self.W.data

    def __repr__(self) -> str:
        return f"Dense({self.in_features}, {self.out_features})"


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        mask = x > 0
        self._mask = mask if training else None
        return x * mask

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward() before forward(training=True)")
        return dout * self._mask


class Tanh(Layer):
    """Hyperbolic-tangent activation."""

    def __init__(self) -> None:
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        out = np.tanh(x)
        self._out = out if training else None
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward() before forward(training=True)")
        return dout * (1.0 - self._out**2)


class Sigmoid(Layer):
    """Logistic activation."""

    def __init__(self) -> None:
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        out = 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))
        self._out = out if training else None
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward() before forward(training=True)")
        return dout * self._out * (1.0 - self._out)


class Flatten(Layer):
    """Collapse all non-batch dimensions."""

    def __init__(self) -> None:
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward() before forward()")
        return dout.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout; identity at evaluation time."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self._rng = rng
        self._mask: Optional[np.ndarray] = None
        self._trained = False

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            self._trained = training
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        self._trained = True
        return x * self._mask

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if not self._trained:
            raise RuntimeError("backward() before forward(training=True)")
        if self._mask is None:  # rate == 0: identity
            return dout
        return dout * self._mask

    def __repr__(self) -> str:
        return f"Dropout({self.rate})"


@lru_cache(maxsize=256)
def _conv_plan(
    x_shape: Tuple[int, int, int, int], kh: int, kw: int, stride: int, pad: int
) -> Tuple[int, int, np.ndarray]:
    """Cached im2col/col2im index plan for one (input shape, kernel) pair.

    Returns ``(out_h, out_w, scatter)`` where ``scatter`` holds, for
    every im2col column entry, its flat destination index in the padded
    input — ordered ``(c*kh*kw, n, out_h*out_w)`` to line up with
    ``W.T @ dout_mat`` in :meth:`Conv2D.backward` without a transpose.
    The plan depends only on shapes, so each (layer, input-shape) pair
    computes it once per process instead of on every forward pass.
    """
    n, c, h, w = x_shape
    hp, wp = h + 2 * pad, w + 2 * pad
    out_h = (hp - kh) // stride + 1
    out_w = (wp - kw) // stride + 1

    i0 = np.tile(np.repeat(np.arange(kh), kw), c)
    j0 = np.tile(np.arange(kw), kh * c)
    k0 = np.repeat(np.arange(c), kh * kw)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    # (c*kh*kw, out_h*out_w) flat offsets within one padded sample.
    within = (k0[:, None] * hp + i0[:, None] + i1[None, :]) * wp
    within += j0[:, None] + j1[None, :]
    offsets = np.arange(n) * (c * hp * wp)
    indices = (within[:, None, :] + offsets[None, :, None]).ravel()
    indices.setflags(write=False)
    return out_h, out_w, indices


@lru_cache(maxsize=256)
def _col2im_operator(
    x_shape: Tuple[int, int, int, int], kh: int, kw: int, stride: int, pad: int
):
    """Cached sparse col2im scatter matrix, or ``None`` without scipy.

    ``op @ dcols.ravel()`` sums every column entry into its padded-input
    pixel — the same accumulation as the bincount fallback, but in one
    CSR matvec that preserves float32.
    """
    if _sparse is None:
        return None
    _, _, plan = _conv_plan(x_shape, kh, kw, stride, pad)
    n, c, h, w = x_shape
    m = n * c * (h + 2 * pad) * (w + 2 * pad)
    nnz = plan.size
    return _sparse.csr_matrix(
        (np.ones(nnz, dtype=np.float32), (plan, np.arange(nnz))),
        shape=(m, nnz),
    )


@lru_cache(maxsize=64)
def _flat_arange(size: int) -> np.ndarray:
    """Cached row indices for the pooling gather/scatter fast path."""
    indices = np.arange(size)
    indices.setflags(write=False)
    return indices


@lru_cache(maxsize=64)
def _pool_scatter_base(
    x_shape: Tuple[int, int, int, int], s: int
) -> np.ndarray:
    """Flat index of each pooling window's top-left input pixel.

    ``base + (first // s) * w + first % s`` is the flat input index of
    the window element selected by ``first``, so pool backward becomes
    a single fancy scatter into a zeroed flat buffer — no expanded
    (windows, s*s) intermediate and no transposed reassembly copy.
    """
    n, c, h, w = x_shape
    rows = np.arange(n * c * (h // s)).reshape(n, c, h // s, 1)
    cols = np.arange(w // s).reshape(1, 1, 1, w // s)
    base = (rows * s * w + cols * s).reshape(n, c, h // s, w // s)
    base.setflags(write=False)
    return base


class Conv2D(Layer):
    """2D convolution (im2col), NCHW layout.

    Args:
        in_channels: Input channel count ``C``.
        out_channels: Number of filters ``F``.
        kernel_size: Square kernel side ``K``.
        rng: Initializer stream.
        stride: Spatial stride.
        pad: Zero padding on each side.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        stride: int = 1,
        pad: int = 0,
    ) -> None:
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.pad = pad
        self.W = Parameter(
            he((out_channels, in_channels, kernel_size, kernel_size), rng),
            "conv.W",
        )
        self.b = Parameter(zeros((out_channels,), rng), "conv.b")
        self._cache: Optional[tuple] = None

    def parameters(self) -> List[Parameter]:
        return [self.W, self.b]

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2D expected (N, {self.in_channels}, H, W), got {x.shape}"
            )
        n, c, h, w = x.shape
        k, stride, pad = self.kernel_size, self.stride, self.pad
        out_h, out_w, plan = _conv_plan(x.shape, k, k, stride, pad)
        if pad:
            x_pad = np.zeros(
                (n, c, h + 2 * pad, w + 2 * pad), dtype=x.dtype
            )
            x_pad[:, :, pad : h + pad, pad : w + pad] = x
        else:
            x_pad = np.ascontiguousarray(x)
        # im2col as one flat gather through the cached index plan
        # (fancy indexing: measurably faster than ndarray.take here).
        # cols: (C*K*K, N*out_h*out_w), columns ordered (n, out_h, out_w).
        cols = x_pad.ravel()[plan].reshape(
            c * k * k, n * out_h * out_w
        )

        W_row = self.W.data.reshape(self.out_channels, -1)
        out = W_row @ cols + self.b.data.reshape(-1, 1)
        out = out.reshape(self.out_channels, n, out_h, out_w)
        out = out.transpose(1, 0, 2, 3)

        if training:
            self._cache = (x.shape, x.dtype, cols)
        else:
            self._cache = None
        return out

    def backward(
        self, dout: np.ndarray, need_input_grad: bool = True
    ) -> Optional[np.ndarray]:
        """Accumulate parameter grads; return ``dx`` (or ``None``).

        ``need_input_grad=False`` skips the whole col2im half of the
        pass — :class:`~repro.ml.models.Sequential` uses it for the
        first layer of a network, whose input gradient has no consumer.
        """
        if self._cache is None:
            raise RuntimeError("backward() before forward(training=True)")
        x_shape, x_dtype, cols = self._cache
        n, c, h, w = x_shape
        k, pad = self.kernel_size, self.pad

        # dout columns ordered (n, out_h, out_w) to match `cols`.
        dout_mat = dout.transpose(1, 0, 2, 3).reshape(self.out_channels, -1)
        self.b.grad += dout_mat.sum(axis=1)
        self.W.grad += (dout_mat @ cols.T).reshape(self.W.shape)
        if not need_input_grad:
            return None

        W_row = self.W.data.reshape(self.out_channels, -1)
        dcols = W_row.T @ dout_mat  # (C*K*K, N*out_h*out_w)

        # col2im: scatter-add every column entry back to its input pixel
        # through the cached index plan — a sparse matvec when scipy is
        # available, otherwise one bincount (which accumulates in
        # float64, then restores the input dtype).  Both replace the
        # old elementwise np.add.at scatter.
        hp, wp = h + 2 * pad, w + 2 * pad
        operator = _col2im_operator(x_shape, k, k, self.stride, pad)
        if operator is not None:
            dx_pad = operator @ dcols.ravel()
        else:
            _, _, scatter = _conv_plan(x_shape, k, k, self.stride, pad)
            dx_pad = np.bincount(
                scatter, weights=dcols.ravel(), minlength=n * c * hp * wp
            )
        dx_pad = dx_pad.reshape(n, c, hp, wp).astype(x_dtype, copy=False)
        if pad:
            return dx_pad[:, :, pad:-pad, pad:-pad]
        return dx_pad

    def __repr__(self) -> str:
        return (
            f"Conv2D({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, stride={self.stride}, pad={self.pad})"
        )


class AvgPool2D(Layer):
    """Average pooling with square window and matching stride (NCHW)."""

    def __init__(self, size: int = 2) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = size
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        if h % s or w % s:
            raise ValueError(f"input {h}x{w} not divisible by pool size {s}")
        self._shape = x.shape if training else None
        return x.reshape(n, c, h // s, s, w // s, s).mean(axis=(3, 5))

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward() before forward(training=True)")
        n, c, h, w = self._shape
        s = self.size
        share = dout / (s * s)
        expanded = np.broadcast_to(
            share[:, :, :, None, :, None], (n, c, h // s, s, w // s, s)
        )
        return expanded.reshape(n, c, h, w)

    def __repr__(self) -> str:
        return f"AvgPool2D({self.size})"


class MaxPool2D(Layer):
    """Max pooling with square window and matching stride (NCHW)."""

    def __init__(self, size: int = 2) -> None:
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = size
        self._cache: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        if h % s or w % s:
            raise ValueError(f"input {h}x{w} not divisible by pool size {s}")
        if s == 2:
            # 2x2 fast path: a three-comparison max tree over strided
            # window views — no transposed window copy, no argmax
            # inner loop.  Bit-identical to the generic path, including
            # first-max tie-breaking (strict > keeps the earlier
            # window position on ties).
            r = x.reshape(n, c, h // 2, 2, w // 2, 2)
            w00 = r[:, :, :, 0, :, 0]
            w01 = r[:, :, :, 0, :, 1]
            w10 = r[:, :, :, 1, :, 0]
            w11 = r[:, :, :, 1, :, 1]
            top_right = w01 > w00
            top = np.where(top_right, w01, w00)
            bottom_right = w11 > w10
            bottom = np.where(bottom_right, w11, w10)
            bottom_wins = bottom > top
            out = np.where(bottom_wins, bottom, top)
            if training:
                first = np.where(
                    bottom_wins, bottom_right + 2, top_right + 0
                )
                self._cache = (x.shape, first)
            else:
                self._cache = None
            return out
        # windows: (N, C, H/s, W/s, s*s)
        windows = (
            x.reshape(n, c, h // s, s, w // s, s)
            .transpose(0, 1, 2, 4, 3, 5)
            .reshape(n, c, h // s, w // s, s * s)
        )
        # Ties break deterministically: only the first max gets gradient.
        first = np.argmax(windows, axis=-1)
        rows = _flat_arange(first.size)
        out = windows.reshape(first.size, s * s)[rows, first.ravel()]
        out = out.reshape(first.shape)
        self._cache = (x.shape, first) if training else None
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward() before forward(training=True)")
        x_shape, first = self._cache
        n, c, h, w = x_shape
        s = self.size
        # One fancy scatter through the cached flat-index base: each
        # window routes its gradient to the selected input pixel
        # directly, with no (windows, s*s) intermediate and no
        # transposed reassembly copy.
        dx = np.zeros(n * c * h * w, dtype=dout.dtype)
        base = _pool_scatter_base(x_shape, s)
        dx[base + (first // s) * w + first % s] = dout
        return dx.reshape(n, c, h, w)

    def __repr__(self) -> str:
        return f"MaxPool2D({self.size})"
