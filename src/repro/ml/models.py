"""Models: a Sequential container, the scaled-down VGG CNN, and the SVM.

The protocol layer talks to models exclusively through the
:class:`Model` facade (flat parameter vectors, ``loss_and_grad``),
keeping Hop and all baselines model-agnostic.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.layers import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    MaxPool2D,
    ReLU,
)
from repro.analysis.runtime import sanitize_enabled, writable_window
from repro.ml.losses import Loss, LogisticLoss, SoftmaxCrossEntropy
from repro.ml.params import Parameter, pack_parameters, readonly_view


class Sequential:
    """A stack of layers executed in order."""

    def __init__(self, layers: Sequence[Layer]) -> None:
        self.layers = list(layers)
        # The first layer's input gradient has no consumer; layers
        # whose backward accepts need_input_grad can skip computing it
        # (for a leading Conv2D that is the entire col2im pass).
        first = self.layers[0] if self.layers else None
        self._first_supports_skip = isinstance(first, (Conv2D, Dense))

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training)
        return out

    def backward(self, dout: np.ndarray) -> Optional[np.ndarray]:
        """Backpropagate; returns the input gradient (or ``None`` when
        the first layer elides it — no caller consumes it)."""
        grad = dout
        for layer in reversed(self.layers[1:]):
            grad = layer.backward(grad)
        if not self.layers:
            return grad
        if self._first_supports_skip:
            return self.layers[0].backward(grad, need_input_grad=False)
        return self.layers[0].backward(grad)

    def __repr__(self) -> str:
        inner = ", ".join(repr(layer) for layer in self.layers)
        return f"Sequential([{inner}])"


class Model:
    """A trainable model exposed through flat parameter vectors.

    This is the only interface protocol code uses:

    * :attr:`dim` — total parameter count (message sizing),
    * :meth:`get_params` / :meth:`set_params` — flat vector in/out,
    * :meth:`loss_and_grad` — minibatch loss and flat gradient,
    * :meth:`predict` / :meth:`evaluate` — inference.

    All parameters live as views into one contiguous flat buffer (see
    :func:`repro.ml.params.pack_parameters`), so the flat interface is
    zero-copy: :meth:`get_params` and :meth:`loss_and_grad` return
    *read-only views* of buffers this model owns and overwrites on the
    next :meth:`set_params` / :meth:`loss_and_grad` call.  Callers that
    store the vector across such calls must take
    :meth:`get_params_copy` (or ``.copy()`` the view) — see
    docs/ARCHITECTURE.md's performance-architecture section for the
    ownership rules.

    Args:
        network: The layer stack.
        loss: Loss object mapping scores to (value, dscores).
        l2: Optional L2 regularization coefficient added to the loss
            (the paper's "weight decay" is applied in the optimizer; this
            is for experiments that want it in the objective instead).
    """

    def __init__(self, network: Sequential, loss: Loss, l2: float = 0.0) -> None:
        self.network = network
        self.loss = loss
        self.l2 = float(l2)
        self._params = network.parameters()
        if not self._params:
            raise ValueError("model has no trainable parameters")
        self._sanitize = sanitize_enabled()
        self._repack()

    def _repack(self) -> None:
        """(Re)alias all parameters into the contiguous flat buffers."""
        self._flat, self._flat_grad = pack_parameters(self._params)
        self._flat_view = readonly_view(self._flat)
        self._grad_view = readonly_view(self._flat_grad)
        if self._sanitize:
            # REPRO_SANITIZE: lock the flat buffer and every per-tensor
            # alias so any write outside the sanctioned `set_params`
            # window raises immediately.  Views capture writeability at
            # creation, so each alias must be locked individually; grad
            # buffers stay writable (backward fills them every step).
            self._flat.flags.writeable = False
            for p in self._params:
                p.data.flags.writeable = False

    @property
    def dim(self) -> int:
        return int(self._flat.size)

    def get_params(self) -> np.ndarray:
        """Read-only view of the live flat parameter buffer (O(1)).

        The view tracks every subsequent :meth:`set_params`; copy it to
        keep a snapshot.
        """
        return self._flat_view

    def get_params_copy(self) -> np.ndarray:
        """An owned snapshot of the current parameters."""
        return self._flat.copy()

    def set_params(self, flat: np.ndarray) -> None:
        """Copy ``flat`` into the parameter buffer (one memcpy).

        Under ``REPRO_SANITIZE=1`` this is the single sanctioned
        in-place window: the flat buffer is unlocked for the copy and
        re-locked before returning.
        """
        if self._sanitize:
            with writable_window(self._flat):
                self._copy_into_flat(flat)
        else:
            self._copy_into_flat(flat)

    def _copy_into_flat(self, flat: np.ndarray) -> None:
        if (
            type(flat) is np.ndarray
            and flat.ndim == 1
            and flat.size == self._flat.size
        ):
            np.copyto(self._flat, flat)
            return
        flat = np.asarray(flat)
        if flat.size != self._flat.size:
            raise ValueError(
                f"flat vector has {flat.size} entries, parameters need "
                f"{self._flat.size}"
            )
        np.copyto(self._flat, flat.reshape(-1))

    def zero_grad(self) -> None:
        self._flat_grad.fill(0.0)

    def loss_and_grad(
        self, x: np.ndarray, y: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Mean minibatch loss and the flat gradient at current params.

        The gradient is a read-only view of the model's flat grad
        buffer, valid until the next ``loss_and_grad`` / ``zero_grad``
        call; copy it to keep it across computes.
        """
        self.zero_grad()
        scores = self.network.forward(x, training=True)
        value, dscores = self.loss.value_and_grad(scores, y)
        self.network.backward(dscores)
        if self.l2 > 0.0:
            flat = self._flat
            value += 0.5 * self.l2 * float(flat @ flat)
            return value, self._flat_grad + self.l2 * flat
        return value, self._grad_view

    def loss_value(self, x: np.ndarray, y: np.ndarray) -> float:
        """Loss without touching gradients (evaluation)."""
        scores = self.network.forward(x, training=False)
        value = self.loss.value(scores, y)
        if self.l2 > 0.0:
            flat = self._flat
            value += 0.5 * self.l2 * float(flat @ flat)
        return value

    def astype(self, dtype) -> "Model":
        """Cast all parameters (and grad buffers) to ``dtype``, in place.

        The layers honor input dtype end-to-end, so a float32 model fed
        float32 inputs trains entirely in float32.
        """
        for p in self._params:
            p.data = p.data.astype(dtype, copy=False)
            p.grad = np.zeros_like(p.data)
        self._repack()
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions: argmax for multi-class, sign for margins."""
        scores = self.network.forward(x, training=False)
        if scores.ndim == 2 and scores.shape[1] > 1:
            return np.argmax(scores, axis=1)
        return (scores.ravel() > 0).astype(int)

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> Tuple[float, float]:
        """Return ``(loss, accuracy)`` on a dataset."""
        loss = self.loss_value(x, y)
        predictions = self.predict(x)
        targets = np.asarray(y).ravel()
        if set(np.unique(targets)) <= {-1, 1}:
            targets = ((targets + 1) // 2).astype(int)
        accuracy = float(np.mean(predictions == targets))
        return loss, accuracy

    def __repr__(self) -> str:
        return f"<Model dim={self.dim} loss={type(self.loss).__name__}>"


def build_vgg_lite(
    rng: np.random.Generator,
    image_size: int = 8,
    channels: int = 3,
    n_classes: int = 10,
    base_filters: int = 8,
    hidden: int = 32,
    dropout: float = 0.0,
) -> Model:
    """A scaled-down VGG-style CNN (conv-relu-pool blocks + dense head).

    Stands in for the paper's VGG11/CIFAR-10 workload: same layer
    types and training dynamics, laptop-sized cost.
    """
    if image_size % 4 != 0:
        raise ValueError("image_size must be divisible by 4 (two 2x2 pools)")
    layers: List[Layer] = [
        Conv2D(channels, base_filters, 3, rng, pad=1),
        ReLU(),
        MaxPool2D(2),
        Conv2D(base_filters, 2 * base_filters, 3, rng, pad=1),
        ReLU(),
        MaxPool2D(2),
        Flatten(),
    ]
    flat_dim = 2 * base_filters * (image_size // 4) ** 2
    if dropout > 0.0:
        layers.append(Dropout(dropout, rng))
    layers.extend(
        [
            Dense(flat_dim, hidden, rng),
            ReLU(),
            Dense(hidden, n_classes, rng),
        ]
    )
    return Model(Sequential(layers), SoftmaxCrossEntropy())


def build_mlp(
    rng: np.random.Generator,
    in_features: int,
    hidden: Sequence[int],
    n_classes: int,
) -> Model:
    """A plain multilayer perceptron (useful for fast integration tests)."""
    layers: List[Layer] = []
    prev = in_features
    for width in hidden:
        layers.append(Dense(prev, width, rng))
        layers.append(ReLU())
        prev = width
    layers.append(Dense(prev, n_classes, rng))
    return Model(Sequential(layers), SoftmaxCrossEntropy())


def build_svm(
    rng: np.random.Generator,
    in_features: int,
    loss: Optional[Loss] = None,
) -> Model:
    """Linear SVM with log loss (the paper's webspam workload)."""
    network = Sequential([Dense(in_features, 1, rng)])
    return Model(network, loss or LogisticLoss())
