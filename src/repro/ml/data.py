"""Synthetic datasets standing in for CIFAR-10 and webspam.

The offline environment has no dataset downloads, so (per DESIGN.md's
substitution table) we generate synthetic data with the same *roles*:

* :class:`SyntheticImages` — class-conditional image distribution for
  the CNN workload (CIFAR-10 stand-in).  Each class has a random
  spatial template; samples are template + Gaussian noise, so the task
  is learnable but non-trivial at practical noise levels.
* :class:`SyntheticWebspam` — high-dimensional sparse-ish binary
  classification for the SVM workload (webspam stand-in), generated
  from a ground-truth hyperplane with label noise.

Each worker samples minibatches from its own RNG stream via
:class:`Batcher`, mirroring the paper's random sampling per worker.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


class Dataset:
    """In-memory dataset with train/test splits."""

    def __init__(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_test: np.ndarray,
        y_test: np.ndarray,
        name: str,
    ) -> None:
        if len(x_train) != len(y_train) or len(x_test) != len(y_test):
            raise ValueError("features and labels must have equal lengths")
        self.x_train = x_train
        self.y_train = y_train
        self.x_test = x_test
        self.y_test = y_test
        self.name = name

    @property
    def n_train(self) -> int:
        return len(self.x_train)

    @property
    def n_test(self) -> int:
        return len(self.x_test)

    def __repr__(self) -> str:
        return (
            f"<Dataset {self.name!r} train={self.n_train} test={self.n_test} "
            f"x_shape={self.x_train.shape[1:]}>"
        )


def synthetic_images(
    rng: np.random.Generator,
    n_train: int = 2048,
    n_test: int = 512,
    image_size: int = 8,
    channels: int = 3,
    n_classes: int = 10,
    noise: float = 0.6,
) -> Dataset:
    """Class-conditional image dataset (CIFAR-10 stand-in).

    Each class gets a smooth random template; a sample is its class
    template plus i.i.d. Gaussian pixel noise.  ``noise`` around 0.5-0.8
    makes single-sample classification imperfect, so SGD has real work.
    """
    templates = rng.normal(
        0.0, 1.0, size=(n_classes, channels, image_size, image_size)
    )
    # Smooth templates spatially so convolutions have local structure.
    for axis in (2, 3):
        templates = (
            templates + np.roll(templates, 1, axis=axis) + np.roll(
                templates, -1, axis=axis
            )
        ) / 3.0

    def make_split(n: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = rng.integers(0, n_classes, size=n)
        samples = templates[labels] + noise * rng.normal(
            0.0, 1.0, size=(n, channels, image_size, image_size)
        )
        return samples, labels

    x_train, y_train = make_split(n_train)
    x_test, y_test = make_split(n_test)
    return Dataset(x_train, y_train, x_test, y_test, name="synthetic_images")


def synthetic_webspam(
    rng: np.random.Generator,
    n_train: int = 4096,
    n_test: int = 1024,
    n_features: int = 128,
    density: float = 0.25,
    label_noise: float = 0.05,
) -> Dataset:
    """Sparse-ish linear binary classification (webspam stand-in).

    Features are mostly zero (density controls the active fraction,
    like bag-of-words spam features); labels come from a ground-truth
    hyperplane with ``label_noise`` flip probability.
    """
    w_true = rng.normal(0.0, 1.0, size=n_features)

    def make_split(n: int) -> Tuple[np.ndarray, np.ndarray]:
        x = rng.normal(0.0, 1.0, size=(n, n_features))
        mask = rng.random((n, n_features)) < density
        x = x * mask
        margins = x @ w_true
        labels = (margins > 0).astype(int)
        flips = rng.random(n) < label_noise
        labels[flips] = 1 - labels[flips]
        return x, labels

    x_train, y_train = make_split(n_train)
    x_test, y_test = make_split(n_test)
    return Dataset(x_train, y_train, x_test, y_test, name="synthetic_webspam")


class Batcher:
    """Random minibatch sampler bound to one worker's RNG stream."""

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        batch_size: int,
        rng: np.random.Generator,
    ) -> None:
        if len(x) != len(y):
            raise ValueError("features and labels must have equal lengths")
        if batch_size < 1 or batch_size > len(x):
            raise ValueError(
                f"batch_size {batch_size} out of range for {len(x)} samples"
            )
        self.x = x
        self.y = y
        self.batch_size = int(batch_size)
        self._rng = rng
        # Index rows prefetched in blocks: one integers() call per
        # _PREFETCH batches instead of per batch.  A (k, batch) block
        # draw consumes the Generator stream exactly like k sequential
        # (batch,) draws (values and post-draw state are identical), so
        # batches are unchanged — this only amortizes the call.
        self._block: Optional[np.ndarray] = None
        self._cursor = 0

    _PREFETCH = 32

    def next_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """Sample a batch uniformly with replacement (paper's SGD model)."""
        block = self._block
        if block is None or self._cursor >= len(block):
            block = self._block = self._rng.integers(
                0, len(self.x), size=(self._PREFETCH, self.batch_size)
            )
            self._cursor = 0
        idx = block[self._cursor]
        self._cursor += 1
        return self.x[idx], self.y[idx]

    def __repr__(self) -> str:
        return f"<Batcher n={len(self.x)} batch={self.batch_size}>"


def shard_dataset(
    dataset: Dataset, n_shards: int, shard: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Contiguous shard of the training split (data-parallel partition)."""
    if not 0 <= shard < n_shards:
        raise ValueError(f"shard {shard} out of range for {n_shards}")
    per = dataset.n_train // n_shards
    if per < 1:
        raise ValueError("more shards than training samples")
    lo = shard * per
    hi = dataset.n_train if shard == n_shards - 1 else lo + per
    return dataset.x_train[lo:hi], dataset.y_train[lo:hi]
