"""Parameters and flat-vector packing.

Decentralized training exchanges *whole parameter vectors* between
workers (the paper sends parameters, not gradients).  The protocol
layer therefore works with flat ``numpy`` vectors; this module provides
the :class:`Parameter` container and pack/unpack helpers between a
model's parameter list and its flat representation.

Since the zero-copy refactor, a model's parameters normally *live* as
views into one contiguous flat buffer (:func:`pack_parameters`): the
flat vector and the per-layer tensors are two windows onto the same
memory, so ``Model.get_params`` / ``set_params`` cost one aliased read
/ one memcpy instead of a concatenate / per-tensor scatter.  The
legacy :func:`flatten_params` / :func:`unflatten_into` helpers remain
for parameter lists that are not packed.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np


class Parameter:
    """A trainable tensor with its gradient buffer."""

    def __init__(self, data: np.ndarray, name: str = "param") -> None:
        data = np.asarray(data)
        if data.dtype.kind != "f":
            data = data.astype(np.float64)
        self.data = data
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self.data.shape)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:
        return f"Parameter({self.name!r}, shape={self.shape})"


def pack_parameters(
    parameters: Sequence[Parameter],
) -> Tuple[np.ndarray, np.ndarray]:
    """Repack parameter/grad tensors as views into contiguous buffers.

    Returns ``(flat_data, flat_grad)``.  After packing, every
    ``p.data`` / ``p.grad`` is a reshaped view into the corresponding
    flat buffer: writing the buffer updates the tensors and vice versa,
    with no copies on either path.  Existing values are preserved.

    Mixed-dtype parameter lists are promoted to their common dtype,
    matching what :func:`flatten_params` (``np.concatenate``) always
    did.
    """
    if not parameters:
        return np.zeros(0), np.zeros(0)
    dtype = parameters[0].data.dtype
    for p in parameters[1:]:
        if p.data.dtype != dtype:
            dtype = np.result_type(*[q.data.dtype for q in parameters])
            break
    total = sum(p.size for p in parameters)
    flat = np.empty(total, dtype=dtype)
    flat_grad = np.empty(total, dtype=dtype)
    offset = 0
    for p in parameters:
        shape = p.data.shape
        end = offset + p.size
        flat[offset:end] = p.data.ravel()
        flat_grad[offset:end] = p.grad.ravel()
        p.data = flat[offset:end].reshape(shape)
        p.grad = flat_grad[offset:end].reshape(shape)
        offset = end
    return flat, flat_grad


def readonly_view(array: np.ndarray) -> np.ndarray:
    """A non-writable alias of ``array`` (zero-copy escape hatch).

    Handing out read-only views is how the flat-buffer owner shares its
    parameters without copying: a caller that needs to mutate (or keep
    a stable snapshot of) the vector must take an explicit ``.copy()``,
    and a forgotten copy fails loudly instead of corrupting the model.
    """
    view = array.view()
    view.setflags(write=False)
    return view


def flatten_params(parameters: Sequence[Parameter]) -> np.ndarray:
    """Concatenate all parameter data into one flat vector."""
    if not parameters:
        return np.zeros(0)
    return np.concatenate([p.data.ravel() for p in parameters])


def flatten_grads(parameters: Sequence[Parameter]) -> np.ndarray:
    """Concatenate all parameter gradients into one flat vector."""
    if not parameters:
        return np.zeros(0)
    return np.concatenate([p.grad.ravel() for p in parameters])


def unflatten_into(parameters: Sequence[Parameter], flat: np.ndarray) -> None:
    """Write a flat vector back into the parameter tensors (in place)."""
    flat = np.asarray(flat, dtype=np.float64)
    expected = sum(p.size for p in parameters)
    if flat.size != expected:
        raise ValueError(
            f"flat vector has {flat.size} entries, parameters need {expected}"
        )
    offset = 0
    for p in parameters:
        chunk = flat[offset : offset + p.size]
        p.data[...] = chunk.reshape(p.shape)
        offset += p.size


def total_size(parameters: Iterable[Parameter]) -> int:
    """Total number of scalar parameters."""
    return sum(p.size for p in parameters)
