"""Parameters and flat-vector packing.

Decentralized training exchanges *whole parameter vectors* between
workers (the paper sends parameters, not gradients).  The protocol
layer therefore works with flat ``numpy`` vectors; this module provides
the :class:`Parameter` container and pack/unpack helpers between a
model's parameter list and its flat representation.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np


class Parameter:
    """A trainable tensor with its gradient buffer."""

    def __init__(self, data: np.ndarray, name: str = "param") -> None:
        data = np.asarray(data)
        if data.dtype.kind != "f":
            data = data.astype(np.float64)
        self.data = data
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self.data.shape)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:
        return f"Parameter({self.name!r}, shape={self.shape})"


def flatten_params(parameters: Sequence[Parameter]) -> np.ndarray:
    """Concatenate all parameter data into one flat vector."""
    if not parameters:
        return np.zeros(0)
    return np.concatenate([p.data.ravel() for p in parameters])


def flatten_grads(parameters: Sequence[Parameter]) -> np.ndarray:
    """Concatenate all parameter gradients into one flat vector."""
    if not parameters:
        return np.zeros(0)
    return np.concatenate([p.grad.ravel() for p in parameters])


def unflatten_into(parameters: Sequence[Parameter], flat: np.ndarray) -> None:
    """Write a flat vector back into the parameter tensors (in place)."""
    flat = np.asarray(flat, dtype=np.float64)
    expected = sum(p.size for p in parameters)
    if flat.size != expected:
        raise ValueError(
            f"flat vector has {flat.size} entries, parameters need {expected}"
        )
    offset = 0
    for p in parameters:
        chunk = flat[offset : offset + p.size]
        p.data[...] = chunk.reshape(p.shape)
        offset += p.size


def total_size(parameters: Iterable[Parameter]) -> int:
    """Total number of scalar parameters."""
    return sum(p.size for p in parameters)
