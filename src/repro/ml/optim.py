"""Optimizers operating on flat parameter vectors.

The paper's hyper-parameter setup (Section 7.2): SGD with momentum 0.9,
weight decay (1e-4 for VGG, 1e-7 for SVM), constant learning rate
(0.1 for VGG, 10 for SVM), batch size 128.

In decentralized training the optimizer state (momentum buffer) is
*worker-local*; the gradient step is computed against the worker's
pre-reduce parameters and applied to the post-reduce average, exactly
as the parallel computation graph (Figure 2b) prescribes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class LRSchedule:
    """Base learning-rate schedule: ``lr(iteration) -> float``."""

    def __call__(self, iteration: int) -> float:
        raise NotImplementedError


class ConstantLR(LRSchedule):
    """The paper's choice: no decay."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def __call__(self, iteration: int) -> float:
        return self.lr


class StepDecayLR(LRSchedule):
    """Multiply the rate by ``gamma`` every ``step_size`` iterations."""

    def __init__(self, lr: float, step_size: int, gamma: float = 0.1) -> None:
        if lr <= 0 or step_size <= 0 or not 0 < gamma <= 1:
            raise ValueError("invalid StepDecayLR configuration")
        self.lr = float(lr)
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def __call__(self, iteration: int) -> float:
        return self.lr * self.gamma ** (iteration // self.step_size)


class SGD:
    """SGD with momentum and (decoupled) weight decay on flat vectors.

    ``step(params, grad, iteration)`` returns the *delta* to add to the
    parameters; callers decide which parameter vector to apply it to
    (pre-reduce for the serial graph, post-reduce for the parallel one).
    """

    def __init__(
        self,
        lr: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        schedule: Optional[LRSchedule] = None,
    ) -> None:
        if momentum < 0 or momentum >= 1:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be >= 0, got {weight_decay}")
        self.schedule = schedule or ConstantLR(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: Optional[np.ndarray] = None
        #: Reusable weight-decay accumulator (allocation-free hot path).
        self._scratch: Optional[np.ndarray] = None

    def reset(self) -> None:
        """Forget momentum state (used when a worker skips iterations)."""
        self._velocity = None

    def step(
        self, params: np.ndarray, grad: np.ndarray, iteration: int = 0
    ) -> np.ndarray:
        """Compute the additive update ``delta`` for this iteration.

        State updates (momentum, weight-decay accumulation) happen in
        place in reusable float64 buffers; only the returned ``delta``
        is a fresh array (the caller owns it).  The in-place operation
        order reproduces the former out-of-place arithmetic bit for
        bit.
        """
        if self.weight_decay > 0.0:
            scratch = self._scratch
            if scratch is None or scratch.shape != np.shape(grad):
                scratch = self._scratch = np.empty(
                    np.shape(grad), dtype=np.float64
                )
            # Bitwise equal to ``grad + wd * params`` in float64:
            # addition commutes exactly and the casts are value-exact.
            # dtype pins the loop to float64 even for float32 params.
            np.multiply(params, self.weight_decay, out=scratch, dtype=np.float64)
            scratch += grad
            effective = scratch
        else:
            effective = np.asarray(grad, dtype=np.float64)
        if self.momentum > 0.0:
            velocity = self._velocity
            if velocity is None:
                velocity = self._velocity = np.zeros_like(effective)
            velocity *= self.momentum
            velocity += effective
            effective = velocity
        return np.multiply(effective, -self.schedule(iteration))

    def clone(self) -> "SGD":
        """A fresh optimizer with the same hyper-parameters (new state)."""
        return SGD(
            lr=self.schedule(0),
            momentum=self.momentum,
            weight_decay=self.weight_decay,
            schedule=self.schedule,
        )

    def __repr__(self) -> str:
        return (
            f"SGD(lr={self.schedule(0)}, momentum={self.momentum}, "
            f"weight_decay={self.weight_decay})"
        )
