"""Pure-numpy training substrate: layers, models, losses, data, optim.

Public API::

    from repro.ml import build_vgg_lite, synthetic_images, SGD, Batcher
    import numpy as np

    rng = np.random.default_rng(0)
    data = synthetic_images(rng)
    model = build_vgg_lite(rng)
    optimizer = SGD(lr=0.1, momentum=0.9, weight_decay=1e-4)
    batcher = Batcher(data.x_train, data.y_train, 128, rng)

    xb, yb = batcher.next_batch()
    loss, grad = model.loss_and_grad(xb, yb)
    model.set_params(model.get_params() + optimizer.step(model.get_params(), grad))
"""

from repro.ml.data import (
    Batcher,
    Dataset,
    shard_dataset,
    synthetic_images,
    synthetic_webspam,
)
from repro.ml.gradcheck import (
    check_model_gradient,
    numerical_gradient,
    relative_error,
)
from repro.ml.layers import (
    AvgPool2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Tanh,
)
from repro.ml.losses import HingeLoss, LogisticLoss, Loss, SoftmaxCrossEntropy
from repro.ml.metrics import accuracy, smooth_series
from repro.ml.models import (
    Model,
    Sequential,
    build_mlp,
    build_svm,
    build_vgg_lite,
)
from repro.ml.optim import SGD, ConstantLR, LRSchedule, StepDecayLR
from repro.ml.params import (
    Parameter,
    flatten_grads,
    flatten_params,
    total_size,
    unflatten_into,
)

__all__ = [
    "AvgPool2D",
    "Batcher",
    "ConstantLR",
    "Conv2D",
    "Dataset",
    "Dense",
    "Dropout",
    "Flatten",
    "HingeLoss",
    "LRSchedule",
    "Layer",
    "LogisticLoss",
    "Loss",
    "MaxPool2D",
    "Model",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "SoftmaxCrossEntropy",
    "StepDecayLR",
    "Tanh",
    "accuracy",
    "build_mlp",
    "build_svm",
    "build_vgg_lite",
    "check_model_gradient",
    "flatten_grads",
    "flatten_params",
    "numerical_gradient",
    "relative_error",
    "shard_dataset",
    "smooth_series",
    "synthetic_images",
    "synthetic_webspam",
    "total_size",
    "unflatten_into",
]
