"""Small evaluation helpers shared by the harness and the examples."""

from __future__ import annotations

import numpy as np


def accuracy(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of matching labels (binary targets may be -1/+1 or 0/1)."""
    predictions = np.asarray(predictions).ravel()
    targets = np.asarray(targets).ravel()
    if set(np.unique(targets)) <= {-1, 1}:
        targets = ((targets + 1) // 2).astype(int)
    if predictions.shape != targets.shape:
        raise ValueError(
            f"shape mismatch: {predictions.shape} vs {targets.shape}"
        )
    return float(np.mean(predictions == targets))


def smooth_series(values: np.ndarray, window: int = 5) -> np.ndarray:
    """Trailing moving average (for readable loss curves in reports)."""
    values = np.asarray(values, dtype=float)
    if window <= 1 or values.size == 0:
        return values
    kernel = np.ones(min(window, values.size)) / min(window, values.size)
    padded = np.concatenate([np.full(len(kernel) - 1, values[0]), values])
    return np.convolve(padded, kernel, mode="valid")
