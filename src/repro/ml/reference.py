"""Reference (naive) conv/pool kernels: the pre-optimization seed code.

The fast paths in :mod:`repro.ml.layers` cache their im2col index plan
and replace the ``np.add.at`` col2im scatter with a vectorized
``bincount`` formulation.  These functions keep the original, obviously
correct implementations so the parity suite
(``tests/ml/test_conv_fastpath.py``) can check the fast kernels against
them across stride/pad/dtype combinations.  Nothing in the training
path imports this module.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def im2col_indices(
    x_shape: Tuple[int, int, int, int], kh: int, kw: int, stride: int, pad: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, int, int]:
    """Index arrays mapping padded input pixels to column positions."""
    n, c, h, w = x_shape
    out_h = (h + 2 * pad - kh) // stride + 1
    out_w = (w + 2 * pad - kw) // stride + 1

    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, c)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kw), kh * c)
    j1 = stride * np.tile(np.arange(out_w), out_h)
    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(c), kh * kw).reshape(-1, 1)
    return k, i, j, out_h, out_w


def conv2d_forward_reference(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray,
    stride: int = 1,
    pad: int = 0,
) -> np.ndarray:
    """Naive im2col convolution forward (NCHW)."""
    n, c = x.shape[0], x.shape[1]
    n_filters, _, kh, kw = weight.shape
    k_idx, i_idx, j_idx, out_h, out_w = im2col_indices(
        x.shape, kh, kw, stride, pad
    )
    x_pad = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    cols = x_pad[:, k_idx, i_idx, j_idx].transpose(1, 2, 0)
    cols = cols.reshape(c * kh * kw, -1)
    w_row = weight.reshape(n_filters, -1)
    out = w_row @ cols + bias.reshape(-1, 1)
    out = out.reshape(n_filters, out_h, out_w, n)
    return out.transpose(3, 0, 1, 2)


def conv2d_backward_reference(
    x: np.ndarray,
    weight: np.ndarray,
    dout: np.ndarray,
    stride: int = 1,
    pad: int = 0,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Naive conv backward: ``np.add.at`` col2im scatter.

    Returns ``(dx, dweight, dbias)``.
    """
    n, c, h, w = x.shape
    n_filters, _, kh, kw = weight.shape
    k_idx, i_idx, j_idx, _, _ = im2col_indices(x.shape, kh, kw, stride, pad)
    x_pad = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    cols = x_pad[:, k_idx, i_idx, j_idx].transpose(1, 2, 0)
    cols = cols.reshape(c * kh * kw, -1)

    dout_mat = dout.transpose(1, 2, 3, 0).reshape(n_filters, -1)
    dbias = dout_mat.sum(axis=1)
    dweight = (dout_mat @ cols.T).reshape(weight.shape)

    w_row = weight.reshape(n_filters, -1)
    dcols = w_row.T @ dout_mat
    dcols = dcols.reshape(c * kh * kw, -1, n).transpose(2, 0, 1)
    dx_pad = np.zeros((n, c, h + 2 * pad, w + 2 * pad))
    np.add.at(dx_pad, (slice(None), k_idx, i_idx, j_idx), dcols)
    if pad:
        dx = dx_pad[:, :, pad:-pad, pad:-pad]
    else:
        dx = dx_pad
    return dx, dweight, dbias


def maxpool_forward_reference(
    x: np.ndarray, size: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Naive max pooling; returns ``(out, mask)`` with a first-max mask."""
    n, c, h, w = x.shape
    s = size
    windows = (
        x.reshape(n, c, h // s, s, w // s, s)
        .transpose(0, 1, 2, 4, 3, 5)
        .reshape(n, c, h // s, w // s, s * s)
    )
    out = windows.max(axis=-1)
    first = np.argmax(windows, axis=-1)
    mask = np.zeros_like(windows, dtype=bool)
    idx = np.indices(first.shape)
    mask[idx[0], idx[1], idx[2], idx[3], first] = True
    return out, mask


def maxpool_backward_reference(
    dout: np.ndarray, x_shape: Tuple[int, ...], mask: np.ndarray, size: int
) -> np.ndarray:
    """Naive max pooling backward from the boolean first-max mask."""
    n, c, h, w = x_shape
    s = size
    expanded = dout[..., None] * mask
    return (
        expanded.reshape(n, c, h // s, w // s, s, s)
        .transpose(0, 1, 2, 4, 3, 5)
        .reshape(n, c, h, w)
    )
