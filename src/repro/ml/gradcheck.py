"""Numerical gradient checking for layers and models."""

from __future__ import annotations

from typing import Callable

import numpy as np


def numerical_gradient(
    f: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of scalar ``f`` with respect to ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        plus = f(x)
        x[idx] = original - eps
        minus = f(x)
        x[idx] = original
        grad[idx] = (plus - minus) / (2.0 * eps)
        it.iternext()
    return grad


def relative_error(a: np.ndarray, b: np.ndarray) -> float:
    """Max elementwise relative error, safe near zero."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    denominator = np.maximum(np.abs(a) + np.abs(b), 1e-8)
    return float(np.max(np.abs(a - b) / denominator))


def check_model_gradient(model, x, y, eps: float = 1e-6) -> float:
    """Compare a model's analytic flat gradient to central differences.

    Returns the max relative error (small values = correct backward).
    """
    flat0 = model.get_params()
    _, analytic = model.loss_and_grad(x, y)

    def loss_at(flat: np.ndarray) -> float:
        model.set_params(flat)
        value = model.loss_value(x, y)
        return value

    numeric = numerical_gradient(loss_at, flat0.copy(), eps=eps)
    model.set_params(flat0)
    return relative_error(analytic, numeric)
