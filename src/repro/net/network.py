"""The network: asynchronous delivery of messages between workers.

``Network.send`` is non-blocking (like the paper's Send operation): it
spawns a delivery process that waits for the link's transfer time and
then invokes a delivery action (usually an enqueue into the receiver's
update queue).  ``Network.rpc`` models a blocking request/response
round trip (token acquisition, iteration inquiries).

A :class:`SharedNic` serializes transfers through a single interface,
modeling the parameter-server hotspot: when ``n`` workers push to the
PS at once, their transfers queue up on the PS NIC.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence

from repro.net.links import LinkModel
from repro.net.message import Message
from repro.sim.engine import Environment
from repro.sim.events import Event
from repro.sim.process import Process
from repro.sim.resources import Resource
from repro.sim.trace import StatAccumulator


class Network:
    """Message fabric over a :class:`~repro.net.links.LinkModel`.

    Args:
        env: Simulation environment.
        links: Link timing model.
        egress_nics: Optional per-worker shared egress NICs.  When a
            message's source has one and the destination is on a
            different machine, the message's serialization time is paid
            *through the NIC* (serialized with the machine's other
            outbound traffic) instead of on a private link — this is
            how co-located workers contend for their host's uplink.
        machine_of: Worker -> machine map used to decide whether a
            transfer leaves the machine.  ``None`` treats every
            non-self edge as cross-machine.
        message_loss: Optional loss-with-retransmit model (scenario
            fault injection, see
            :class:`repro.scenarios.faults.MessageLoss`).  A dropped
            attempt costs the transfer time plus the retransmit
            timeout; delivery stays eventual, so protocols cannot
            deadlock on a lost update.
    """

    def __init__(
        self,
        env: Environment,
        links: Optional[LinkModel] = None,
        egress_nics: Optional[Dict[int, "SharedNic"]] = None,
        machine_of: Optional[Sequence[int]] = None,
        message_loss=None,
    ) -> None:
        self.env = env
        self.links = links or LinkModel()
        self.egress_nics = egress_nics or {}
        self.machine_of = list(machine_of) if machine_of is not None else None
        self.message_loss = message_loss
        self.bytes_sent = StatAccumulator()
        self.messages_sent = 0

    @property
    def messages_dropped(self) -> int:
        return self.message_loss.messages_dropped if self.message_loss else 0

    def _loss_penalty(self, src: int, dst: int, transfer_time: float) -> float:
        """Extra delay for lost attempts of one (src != dst) message."""
        if self.message_loss is None or src == dst:
            return 0.0
        # Draws happen synchronously at send time, so the draw order —
        # and with it the whole run — stays deterministic.
        drops = self.message_loss.draw_drops()
        return drops * (transfer_time + self.message_loss.retransmit_timeout)

    def _egress_nic(self, src: int, dst: int) -> Optional["SharedNic"]:
        if src == dst or src not in self.egress_nics:
            return None
        if self.machine_of is not None and self.machine_of[src] == self.machine_of[dst]:
            return None
        return self.egress_nics[src]

    def send(
        self,
        message: Message,
        deliver: Callable[[Message], None],
    ) -> Process:
        """Fire-and-forget delivery after the link transfer time."""
        message.sent_at = self.env.now
        self.messages_sent += 1
        self.bytes_sent.add(message.size)
        nic = self._egress_nic(message.src, message.dst)

        if nic is None:
            transfer = self.links.transfer_time(
                message.src, message.dst, message.size
            )
            delay = transfer + self._loss_penalty(
                message.src, message.dst, transfer
            )

            def delivery(env: Environment):
                yield env.timeout(delay)
                deliver(message)

        else:
            # Serialization happens at the shared machine uplink; only
            # the propagation latency remains on the link itself.  A
            # lost attempt still pays the full (estimated) transfer —
            # NIC serialization plus propagation — before the retry,
            # matching the non-NIC path's per-drop cost.
            latency = self.links.link(message.src, message.dst).latency
            attempt_cost = (
                nic.latency + message.size / nic.bandwidth + latency
            )
            penalty = self._loss_penalty(
                message.src, message.dst, attempt_cost
            )

            def delivery(env: Environment):
                yield from nic.transfer(message.size)
                yield env.timeout(latency + penalty)
                deliver(message)

        return self.env.process(
            delivery(self.env), name=f"deliver-{message.kind}"
        )

    def transfer(self, src: int, dst: int, size: float) -> Event:
        """An event that fires when a transfer completes (blocking send)."""
        self.messages_sent += 1
        self.bytes_sent.add(size)
        duration = self.links.transfer_time(src, dst, size)
        return self.env.timeout(
            duration + self._loss_penalty(src, dst, duration)
        )

    def rpc(self, src: int, dst: int, size: float = 0.0) -> Event:
        """An event that fires after a request/response round trip."""
        self.messages_sent += 2
        self.bytes_sent.add(size)
        duration = self.links.round_trip(src, dst, size)
        return self.env.timeout(
            duration + self._loss_penalty(src, dst, duration)
        )

    def __repr__(self) -> str:
        return f"<Network messages={self.messages_sent}>"


class SharedNic:
    """A serializing network interface (the PS hotspot model).

    Transfers through the NIC queue up and are served one at a time at
    the NIC's bandwidth, so ``n`` simultaneous pushes of size ``s``
    take ``n * s / bandwidth`` — exactly the hotspot behavior that
    makes decentralized training win Figure 13.

    Usage inside a process::

        yield from nic.transfer(size)
    """

    def __init__(
        self,
        env: Environment,
        bandwidth: float = 125.0,
        latency: float = 1e-4,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.env = env
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self._port = Resource(env, capacity=1)
        self.busy_time = 0.0

    def transfer(self, size: float):
        """Generator: acquire the NIC, hold it for the serialization time."""
        if size < 0:
            raise ValueError(f"negative message size {size}")
        request = self._port.request()
        yield request
        duration = self.latency + size / self.bandwidth
        try:
            start = self.env.now
            yield self.env.timeout(duration)
            self.busy_time += self.env.now - start
        finally:
            self._port.release(request)

    @property
    def queue_length(self) -> int:
        return self._port.queue_length

    def __repr__(self) -> str:
        return f"<SharedNic bw={self.bandwidth} busy={self.busy_time:.3f}>"
