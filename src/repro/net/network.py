"""The network: asynchronous delivery of messages between workers.

``Network.send`` is non-blocking (like the paper's Send operation): it
spawns a delivery process that waits for the link's transfer time and
then invokes a delivery action (usually an enqueue into the receiver's
update queue).  ``Network.rpc`` models a blocking request/response
round trip (token acquisition, iteration inquiries).

A :class:`SharedNic` serializes transfers through a single interface,
modeling the parameter-server hotspot: when ``n`` workers push to the
PS at once, their transfers queue up on the PS NIC.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence

import heapq

from repro.net.links import LinkModel
from repro.net.message import Message
from repro.sim.engine import Environment
from repro.sim.events import NORMAL, Event
from repro.sim.process import Process
from repro.sim.resources import Resource
from repro.sim.trace import StatAccumulator


class Delivery(Event):
    """A scheduled message delivery (the closure-free send fast path).

    One pre-triggered event on the heap whose single callback hands the
    message (or bare payload, for :meth:`Network.push`) to the receiver
    — no generator, no :class:`~repro.sim.process.Process` bootstrap,
    no per-message name formatting.  Replaces the former
    ``deliver-<kind>`` delivery process for plain-link sends
    (shared-NIC sends still need a process to queue through the
    uplink).
    """

    __slots__ = ("_deliver", "_message")

    def __init__(
        self,
        env: Environment,
        delay: float,
        deliver: Callable[[Any], None],
        message: Any,
    ) -> None:
        self.env = env
        self.defused = False
        self._ok = True
        self._value = None
        self._deliver = deliver
        self._message = message
        self.callbacks = [self._run]
        heapq.heappush(
            env._queue, (env._now + delay, NORMAL, next(env._eid), self)
        )

    def _run(self, event: Event) -> None:
        self._deliver(self._message)

    def __repr__(self) -> str:
        return f"<Delivery {self._message!r} at {id(self):#x}>"


class Network:
    """Message fabric over a :class:`~repro.net.links.LinkModel`.

    Args:
        env: Simulation environment.
        links: Link timing model.
        egress_nics: Optional per-worker shared egress NICs.  When a
            message's source has one and the destination is on a
            different machine, the message's serialization time is paid
            *through the NIC* (serialized with the machine's other
            outbound traffic) instead of on a private link — this is
            how co-located workers contend for their host's uplink.
        machine_of: Worker -> machine map used to decide whether a
            transfer leaves the machine.  ``None`` treats every
            non-self edge as cross-machine.
        message_loss: Optional loss-with-retransmit model (scenario
            fault injection, see
            :class:`repro.scenarios.faults.MessageLoss`).  A dropped
            attempt costs the transfer time plus the retransmit
            timeout; delivery stays eventual, so protocols cannot
            deadlock on a lost update.
    """

    def __init__(
        self,
        env: Environment,
        links: Optional[LinkModel] = None,
        egress_nics: Optional[Dict[int, "SharedNic"]] = None,
        machine_of: Optional[Sequence[int]] = None,
        message_loss=None,
    ) -> None:
        self.env = env
        self.links = links or LinkModel()
        self.egress_nics = egress_nics or {}
        self.machine_of = list(machine_of) if machine_of is not None else None
        self.message_loss = message_loss
        #: Optional membership runtime (elastic clusters): deliveries
        #: are routed by membership epoch — a message addressed to a
        #: worker that departed while it was in flight is counted as
        #: dropped instead of landing in a dead queue.  ``None`` (the
        #: static case) keeps the zero-overhead fast path.
        self.membership = None
        #: Cache of membership-checked delivery callbacks, keyed by
        #: ``(dst, deliver, size, control)`` — the tuple is stable per
        #: edge and message class (bound queue enqueues, constant
        #: per-stream sizes), so elastic runs stay closure-free per
        #: message like the static fast path.
        self._membership_checked: Dict[tuple, Callable[[Any], None]] = {}
        #: Payload bytes actually delivered.  Static runs credit at
        #: launch time (delivery is guaranteed: message loss models
        #: retransmit-until-success); elastic runs credit at delivery,
        #: so a message whose destination departs mid-flight lands in
        #: :attr:`bytes_dropped` instead.
        self.bytes_sent = StatAccumulator()
        #: Payload bytes of in-flight messages dropped by membership
        #: departures.  ``bytes_sent + bytes_dropped`` equals the sum
        #: of every launched payload's size once the event queue
        #: drains.
        self.bytes_dropped = StatAccumulator()
        #: Control-plane bytes (ACKs, tokens, RPCs) — charged for
        #: timing but kept out of the payload-volume stats they used
        #: to pollute.  Counted at launch, delivered or not (control
        #: messages are tiny by construction).
        self.control_bytes = StatAccumulator()
        #: Extra bytes burned by lost-and-retransmitted attempts
        #: (:class:`~repro.scenarios.faults.MessageLoss`); the
        #: delivered copy itself is counted exactly once, above.
        self.bytes_retransmitted = StatAccumulator()
        #: Legacy aggregate: every byte offered to the fabric —
        #: payload and control alike — accumulated at launch time in
        #: launch order, regardless of the delivery outcome.  This is
        #: the quantity the recorded golden-stats cells pin (their
        #: ``bytes_sent`` key predates the split), so its accumulation
        #: points and order must never move.
        self.bytes_attempted = StatAccumulator()
        self.messages_sent = 0
        # Uniform-fabric fast path: a plain LinkModel with no per-edge
        # overrides gives every cross-worker message the same
        # latency/bandwidth — resolve them once instead of per send.
        # (Link-model subclasses, e.g. time-varying scenario wrappers,
        # never take this path.)
        self._uniform_link = (
            self.links.default
            if type(self.links) is LinkModel and not self.links.overrides
            else None
        )

    @property
    def messages_dropped(self) -> int:
        dropped = self.message_loss.messages_dropped if self.message_loss else 0
        if self.membership is not None:
            dropped += self.membership.messages_dropped
        return dropped

    def _membership_deliver(
        self,
        dst: int,
        deliver: Callable[[Any], None],
        size: float = 0.0,
        control: bool = False,
    ):
        """Delivery callback routed by membership epoch (elastic runs).

        The active check happens at *delivery* time: a message launched
        toward a live worker that departs mid-flight is dropped and
        counted, never enqueued into a dead worker's queue.  Payload
        byte accounting resolves here too — delivered bytes credit
        :attr:`bytes_sent`, dropped bytes :attr:`bytes_dropped` (the
        pre-split accounting credited both at launch, so departures
        inflated the delivered-traffic stat).  Wrappers are cached per
        ``(dst, deliver, size, control)`` so the hot path allocates no
        closure per message.
        """
        key = (dst, deliver, size, control)
        checked = self._membership_checked.get(key)
        if checked is None:
            membership = self.membership
            if control:
                # Control bytes are counted at launch; only the drop
                # tally resolves at delivery time.
                def checked(payload: Any) -> None:
                    if membership.is_active(dst):
                        deliver(payload)
                    else:
                        membership.messages_dropped += 1

            else:
                bytes_sent = self.bytes_sent
                bytes_dropped = self.bytes_dropped

                def checked(payload: Any) -> None:
                    if membership.is_active(dst):
                        bytes_sent.add(size)
                        deliver(payload)
                    else:
                        membership.messages_dropped += 1
                        bytes_dropped.add(size)

            self._membership_checked[key] = checked
        return checked

    def _loss_penalty(
        self, src: int, dst: int, transfer_time: float, size: float
    ) -> float:
        """Extra delay for lost attempts of one (src != dst) message."""
        if self.message_loss is None or src == dst:
            return 0.0
        # Draws happen synchronously at send time, so the draw order —
        # and with it the whole run — stays deterministic.
        drops = self.message_loss.draw_drops()
        if drops:
            self.bytes_retransmitted.add(drops * size)
        return drops * (transfer_time + self.message_loss.retransmit_timeout)

    def _egress_nic(self, src: int, dst: int) -> Optional["SharedNic"]:
        if src == dst or src not in self.egress_nics:
            return None
        if self.machine_of is not None and self.machine_of[src] == self.machine_of[dst]:
            return None
        return self.egress_nics[src]

    def _plain_transfer(self, src: int, dst: int, size: float) -> float:
        """Delivery delay on a plain (non-NIC) link, loss included.

        The single source of truth for both :meth:`send` and
        :meth:`push` — the uniform-link shortcut, the link-model
        fallback and the loss-penalty gate must never diverge between
        the two hot paths.
        """
        link = self._uniform_link
        if link is not None and src != dst:
            transfer = link.latency + size / link.bandwidth
        else:
            transfer = self.links.transfer_time(src, dst, size)
        if self.message_loss is not None:
            transfer += self._loss_penalty(src, dst, transfer, size)
        return transfer

    def send(
        self,
        message: Message,
        deliver: Callable[[Message], None],
        control: bool = False,
        credit: bool = True,
    ) -> Event:
        """Fire-and-forget delivery after the link transfer time.

        ``control=True`` classifies the message as control-plane
        traffic (ACKs, tokens): charged for timing, counted in
        :attr:`control_bytes`, excluded from the payload-volume stats.
        ``credit=False`` means a delivery-outcome crediting wrapper is
        already installed in ``deliver`` (the elastic :meth:`push`
        fallback), so this launch site must not double-count.

        Returns the event that fires at delivery: a :class:`Delivery`
        on plain links, a :class:`~repro.sim.process.Process` when the
        transfer serializes through a shared egress NIC.
        """
        message.sent_at = self.env.now
        self.messages_sent += 1
        self.bytes_attempted.add(message.size)
        if control:
            self.control_bytes.add(message.size)
        elif credit:
            self.bytes_sent.add(message.size)
        # Common case first: no egress NICs configured at all.
        nic = (
            self._egress_nic(message.src, message.dst)
            if self.egress_nics
            else None
        )

        if nic is None:
            delay = self._plain_transfer(
                message.src, message.dst, message.size
            )
            return Delivery(self.env, delay, deliver, message)
        else:
            # Serialization happens at the shared machine uplink; only
            # the propagation latency remains on the link itself.  A
            # lost attempt still pays the full (estimated) transfer —
            # NIC serialization plus propagation — before the retry,
            # matching the non-NIC path's per-drop cost.
            latency = self.links.link(message.src, message.dst).latency
            attempt_cost = (
                nic.latency + message.size / nic.bandwidth + latency
            )
            penalty = self._loss_penalty(
                message.src, message.dst, attempt_cost, message.size
            )

            # Shared-NIC slow path: runs only for egress-serialized
            # transfers, so the per-message generator closure is an
            # accepted cost here.
            def delivery(env: Environment):  # repro: ignore[perf-send-closure]
                yield from nic.transfer(message.size)
                yield env.timeout(latency + penalty)
                deliver(message)

            # No per-message f-string name: the generator's own name
            # suffices for diagnostics.
            return self.env.process(delivery(self.env))

    def push(
        self,
        src: int,
        dst: int,
        size: float,
        payload: Any,
        deliver: Callable[[Any], None],
        control: bool = False,
    ) -> Event:
        """Message-object-free send for protocol hot paths.

        Timing, counters and loss injection are identical to
        :meth:`send`; the payload is handed to ``deliver`` directly at
        delivery time, skipping the :class:`~repro.net.message.Message`
        wrapper (one object construction per message on the fan-out
        path).  ``control=True`` classifies the message as
        control-plane traffic (see :meth:`send`).  Transfers that must
        serialize through a shared egress NIC fall back to the full
        :meth:`send` machinery.
        """
        if self.membership is not None:
            # Wrapped before either branch so the egress-NIC fallback
            # routes by membership epoch too.  The wrapper owns the
            # delivered/dropped byte crediting.
            deliver = self._membership_deliver(dst, deliver, size, control)
        if self.egress_nics and self._egress_nic(src, dst) is not None:
            message = Message(
                src=src, dst=dst, kind="update", payload=payload, size=size
            )
            # Egress-NIC fallback already pays for a Message object and
            # the full send() machinery; one unwrapping lambda per
            # serialized transfer is noise by comparison.
            return self.send(
                message,
                deliver=lambda m: deliver(m.payload),  # repro: ignore[perf-send-closure]
                control=control,
                credit=self.membership is None,
            )
        self.messages_sent += 1
        self.bytes_attempted.add(size)
        if control:
            self.control_bytes.add(size)
        elif self.membership is None:
            self.bytes_sent.add(size)
        delay = self._plain_transfer(src, dst, size)
        return Delivery(self.env, delay, deliver, payload)

    def transfer(self, src: int, dst: int, size: float) -> Event:
        """An event that fires when a transfer completes (blocking send).

        The caller blocks until the transfer finishes (re-sync pulls,
        state copies), so the bytes are credited as delivered at launch.
        """
        self.messages_sent += 1
        self.bytes_attempted.add(size)
        self.bytes_sent.add(size)
        duration = self.links.transfer_time(src, dst, size)
        return self.env.timeout(
            duration + self._loss_penalty(src, dst, duration, size)
        )

    def rpc(self, src: int, dst: int, size: float = 0.0) -> Event:
        """An event that fires after a request/response round trip.

        RPCs are control-plane by definition (token acquisition,
        iteration inquiries): charged for timing, counted in
        :attr:`control_bytes`, never in the payload-volume stats.
        """
        self.messages_sent += 2
        self.bytes_attempted.add(size)
        self.control_bytes.add(size)
        duration = self.links.round_trip(src, dst, size)
        return self.env.timeout(
            duration + self._loss_penalty(src, dst, duration, size)
        )

    def __repr__(self) -> str:
        return f"<Network messages={self.messages_sent}>"


class SharedNic:
    """A serializing network interface (the PS hotspot model).

    Transfers through the NIC queue up and are served one at a time at
    the NIC's bandwidth, so ``n`` simultaneous pushes of size ``s``
    take ``n * s / bandwidth`` — exactly the hotspot behavior that
    makes decentralized training win Figure 13.

    Usage inside a process::

        yield from nic.transfer(size)
    """

    def __init__(
        self,
        env: Environment,
        bandwidth: float = 125.0,
        latency: float = 1e-4,
    ) -> None:
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.env = env
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self._port = Resource(env, capacity=1)
        self.busy_time = 0.0

    def transfer(self, size: float):
        """Generator: acquire the NIC, hold it for the serialization time."""
        if size < 0:
            raise ValueError(f"negative message size {size}")
        request = self._port.request()
        yield request
        duration = self.latency + size / self.bandwidth
        try:
            start = self.env.now
            yield self.env.timeout(duration)
            self.busy_time += self.env.now - start
        finally:
            self._port.release(request)

    @property
    def queue_length(self) -> int:
        return self._port.queue_length

    def __repr__(self) -> str:
        return f"<SharedNic bw={self.bandwidth} busy={self.busy_time:.3f}>"


# ----------------------------------------------------------------------
# Sharded-engine support: conservative lookahead from the link model
# ----------------------------------------------------------------------
def min_cross_shard_latency(
    links: LinkModel,
    regions: Sequence[Sequence[int]],
    edges: Optional[Sequence] = None,
) -> float:
    """The conservative lookahead for a region partition.

    A message crossing shards takes at least the latency of its link,
    so shards that have exchanged everything scheduled before ``t`` can
    safely simulate ``[t, t + lookahead)`` without hearing from each
    other — the classic conservative-PDES window, computable at build
    time because :class:`~repro.net.links.LinkModel` owns every
    latency.

    Args:
        links: The deployment's link model.
        regions: Worker-id regions (one per shard), e.g. from
            :func:`repro.graphs.topology.region_partition`.
        edges: Optional iterable of ``(src, dst)`` pairs restricting
            the scan to the topology's real edges.  ``None`` scans
            every cross-region pair (correct but O(n^2); fine for the
            uniform fabric, which short-circuits below).

    Returns:
        The minimum latency over cross-shard links, or ``inf`` when no
        link crosses shards (single shard, or empty regions).
    """
    populated = [region for region in regions if len(region)]
    if len(populated) <= 1:
        return float("inf")
    if not links.overrides:
        # Uniform fabric: every remote link shares the default latency.
        return float(links.default.latency)
    owners = {}
    for shard, region in enumerate(regions):
        for wid in region:
            owners[wid] = shard
    if edges is None:
        edges = [
            (src, dst)
            for src in owners
            for dst in owners
            if src != dst
        ]
    lookahead = float("inf")
    link = links.link
    for src, dst in edges:
        if src == dst:
            continue
        src_shard = owners.get(src)
        dst_shard = owners.get(dst)
        if src_shard is None or dst_shard is None or src_shard == dst_shard:
            continue
        latency = float(link(src, dst).latency)
        if latency < lookahead:
            lookahead = latency
    return lookahead
