"""Message types exchanged between workers.

Sizes are in abstract "units" (think MB): the link model turns a size
into serialization time via its bandwidth.  Parameter updates dominate
traffic; control messages (token ops, iteration inquiries) are tiny.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


#: Size of a control message (tokens, ACKs, iteration inquiries).
CONTROL_SIZE = 1e-4


@dataclass(slots=True)
class Message:
    """A network message.

    Attributes:
        src: Sending worker id.
        dst: Receiving worker id.
        kind: Message kind tag (``"update"``, ``"token"``, ``"ack"``,
            ``"control"``...).
        payload: Arbitrary content (parameter vectors, tags, ...).
        size: Size in bandwidth units.
        sent_at: Simulated send time (stamped by the network).
    """

    src: int
    dst: int
    kind: str
    payload: Any = None
    size: float = CONTROL_SIZE
    sent_at: float = field(default=0.0, compare=False)

    def __repr__(self) -> str:
        return (
            f"Message({self.kind!r}, {self.src}->{self.dst}, "
            f"size={self.size:g})"
        )


def params_message_size(dim: int, bytes_per_scalar: int = 4) -> float:
    """Message size (in MB) for a flat parameter vector of ``dim`` floats."""
    return dim * bytes_per_scalar / 1e6


def payload_bytes(
    update_size: float, wire_ratio: float = 1.0, vectors: float = 1.0
) -> float:
    """Wire size of one update message (bandwidth units, think MB).

    The single pricing helper every protocol's send path routes
    through:

    * ``update_size`` — the dense per-update payload of the workload
      (abstract MB; a stand-in for VGG-scale messages).
    * ``wire_ratio`` — compressed-over-dense byte ratio, derived from
      the actual encoded buffer dtypes/shapes
      (:meth:`repro.compression.base.Compressor.wire_ratio`); ``1.0``
      when uncompressed.
    * ``vectors`` — logical vectors per message: momentum-tracking
      gossips parameters *and* a momentum buffer, so its payload is
      ``vectors=2.0`` (this subsumes the former bespoke
      ``gossip_payload`` 2x pricing).

    With ``wire_ratio == vectors == 1.0`` the result is bitwise
    ``update_size`` (multiplying by 1.0 is exact), which is what keeps
    the uncompressed golden cells pinned.
    """
    if update_size < 0:
        raise ValueError(f"negative update size {update_size}")
    return update_size * wire_ratio * vectors
