"""Message types exchanged between workers.

Sizes are in abstract "units" (think MB): the link model turns a size
into serialization time via its bandwidth.  Parameter updates dominate
traffic; control messages (token ops, iteration inquiries) are tiny.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


#: Size of a control message (tokens, ACKs, iteration inquiries).
CONTROL_SIZE = 1e-4


@dataclass(slots=True)
class Message:
    """A network message.

    Attributes:
        src: Sending worker id.
        dst: Receiving worker id.
        kind: Message kind tag (``"update"``, ``"token"``, ``"ack"``,
            ``"control"``...).
        payload: Arbitrary content (parameter vectors, tags, ...).
        size: Size in bandwidth units.
        sent_at: Simulated send time (stamped by the network).
    """

    src: int
    dst: int
    kind: str
    payload: Any = None
    size: float = CONTROL_SIZE
    sent_at: float = field(default=0.0, compare=False)

    def __repr__(self) -> str:
        return (
            f"Message({self.kind!r}, {self.src}->{self.dst}, "
            f"size={self.size:g})"
        )


def params_message_size(dim: int, bytes_per_scalar: int = 4) -> float:
    """Message size (in MB) for a flat parameter vector of ``dim`` floats."""
    return dim * bytes_per_scalar / 1e6
