"""Point-to-point link timing model.

A transfer of ``size`` units over a link takes
``latency + size / bandwidth`` simulated seconds.  Per-edge overrides
express network heterogeneity (slow cross-machine links, a congested
worker, ...), which drives the Figure 20/21 topology experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Link:
    """Latency/bandwidth pair for one directed edge."""

    latency: float = 1e-4
    bandwidth: float = 125.0  # ~1 Gb/s in MB/s, the paper's cluster NIC

    def __post_init__(self) -> None:
        # Validate at construction: a zero/negative bandwidth used to
        # surface only much later, as a ZeroDivisionError deep inside
        # transfer_time of whatever edge the override landed on.
        if self.bandwidth <= 0:
            raise ValueError(
                f"link bandwidth must be positive, got {self.bandwidth}"
            )
        if self.latency < 0:
            raise ValueError(
                f"link latency must be non-negative, got {self.latency}"
            )

    def transfer_time(self, size: float) -> float:
        """Seconds to move ``size`` units across this link."""
        if size < 0:
            raise ValueError(f"negative message size {size}")
        return self.latency + size / self.bandwidth

    def scaled(self, factor: float) -> "Link":
        """A link ``factor`` times slower (latency and bandwidth)."""
        if factor <= 0:
            raise ValueError("slowdown factor must be positive")
        return Link(latency=self.latency * factor, bandwidth=self.bandwidth / factor)


class LinkModel:
    """Maps directed edges to :class:`Link` objects.

    Args:
        default: Link used when no override matches.
        overrides: Per-edge overrides ``{(src, dst): Link}``.
        local: Link used for self-edges (worker to itself); effectively
            free by default.
    """

    def __init__(
        self,
        default: Optional[Link] = None,
        overrides: Optional[Dict[Tuple[int, int], Link]] = None,
        local: Optional[Link] = None,
    ) -> None:
        self.default = default or Link()
        self.overrides = dict(overrides or {})
        self.local = local or Link(latency=0.0, bandwidth=1e12)

    def link(self, src: int, dst: int) -> Link:
        if src == dst:
            return self.local
        return self.overrides.get((src, dst), self.default)

    def transfer_time(self, src: int, dst: int, size: float) -> float:
        return self.link(src, dst).transfer_time(size)

    def round_trip(self, src: int, dst: int, size: float = 0.0) -> float:
        """Request/response latency (token acquisition, inquiries)."""
        return self.link(src, dst).transfer_time(size) + self.link(
            dst, src
        ).transfer_time(0.0)

    def __repr__(self) -> str:
        return f"<LinkModel default={self.default} overrides={len(self.overrides)}>"


def uniform_links(latency: float = 1e-4, bandwidth: float = 125.0) -> LinkModel:
    """Homogeneous network: every edge identical."""
    return LinkModel(default=Link(latency=latency, bandwidth=bandwidth))


def cluster_links(
    machine_of_worker: Sequence[int],
    intra: Optional[Link] = None,
    inter: Optional[Link] = None,
) -> LinkModel:
    """Two-tier cluster network: fast intra-machine, slow inter-machine.

    Models the paper's deployment (several workers per physical
    machine): co-located workers talk through shared memory / loopback,
    remote ones through Ethernet.

    Args:
        machine_of_worker: ``machine_of_worker[i]`` is worker ``i``'s
            physical machine.
        intra: Link for co-located pairs (default: 20 us, 10 GB/s).
        inter: Link for cross-machine pairs (default: 200 us, 125 MB/s
            i.e. 1 Gb/s Ethernet, the paper's cluster).
    """
    intra = intra or Link(latency=2e-5, bandwidth=10_000.0)
    inter = inter or Link(latency=2e-4, bandwidth=125.0)
    n = len(machine_of_worker)
    overrides: Dict[Tuple[int, int], Link] = {}
    for src in range(n):
        for dst in range(n):
            if src == dst:
                continue
            same = machine_of_worker[src] == machine_of_worker[dst]
            overrides[(src, dst)] = intra if same else inter
    return LinkModel(default=inter, overrides=overrides)


def degraded_links(
    base: LinkModel,
    slow_edges: Dict[Tuple[int, int], float],
) -> LinkModel:
    """Slow selected edges by per-edge factors (link heterogeneity)."""
    overrides = dict(base.overrides)
    for edge, factor in slow_edges.items():
        overrides[edge] = base.link(*edge).scaled(factor)
    return LinkModel(default=base.default, overrides=overrides, local=base.local)
