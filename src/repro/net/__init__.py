"""Network substrate: messages, link timing, delivery, NIC contention."""

from repro.net.links import (
    Link,
    LinkModel,
    cluster_links,
    degraded_links,
    uniform_links,
)
from repro.net.message import CONTROL_SIZE, Message, params_message_size
from repro.net.network import Network, SharedNic

__all__ = [
    "CONTROL_SIZE",
    "Link",
    "LinkModel",
    "Message",
    "Network",
    "SharedNic",
    "cluster_links",
    "degraded_links",
    "params_message_size",
    "uniform_links",
]
