"""Generator-based simulation processes.

A process wraps a Python generator.  The generator yields
:class:`~repro.sim.events.Event` objects; the process resumes when the
yielded event fires, receiving the event's value at the ``yield``
expression.  A process is itself an event that triggers when the
generator returns (with the generator's return value) or raises.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import NORMAL, URGENT, Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


class Process(Event):
    """A running simulation process.

    Args:
        env: The owning environment.
        generator: The generator to execute.
        name: Optional human-readable name (for debugging/tracing).
    """

    __slots__ = ("_generator", "name", "_target", "_send", "_throw")

    def __init__(
        self,
        env: "Environment",
        generator: Generator,
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        # Bound methods cached once: _resume runs once per event.
        self._send = generator.send
        self._throw = generator.throw
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting on.
        self._target: Optional[Event] = None

        # Kick the process off via an initialization event so that it
        # starts inside the engine loop, not synchronously at creation.
        # Built inline (same fields Event.__init__ + succeed() would
        # set) — process spawn is on the per-message hot path.
        init = Event.__new__(Event)
        init.env = env
        init.defused = False
        init._ok = True
        init._value = None
        init.callbacks = [self._resume]
        env.schedule_triggered(init, URGENT)

    @property
    def target(self) -> Optional[Event]:
        """The event the process is waiting on (``None`` if not waiting)."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    # ------------------------------------------------------------------
    # Resumption
    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        self.env._active_process = self
        while True:
            try:
                if event._ok:
                    target = self._send(event._value)
                else:
                    # The exception is being delivered into the process,
                    # which counts as handling it.
                    event.defused = True
                    target = self._throw(event._value)
            except StopIteration as stop:
                self._target = None
                self.env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self._target = None
                self.env._active_process = None
                self.fail(exc)
                return

            if not isinstance(target, Event):
                self.env._active_process = None
                error = RuntimeError(
                    f"process {self.name!r} yielded a non-event: {target!r}"
                )
                # Deliver the misuse as a process failure.
                try:
                    self._generator.throw(error)
                except BaseException as exc:
                    self.fail(exc)
                return

            if target.processed:
                # The event already fired and ran its callbacks; continue
                # synchronously with its stored value.
                event = target
                continue

            target.callbacks.append(self._resume)
            self._target = target
            self.env._active_process = None
            return

    # ------------------------------------------------------------------
    # Interruption
    # ------------------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process.

        The process receives the interrupt at its current ``yield``
        and may catch it to handle failure/slowdown injection.
        """
        if self.triggered:
            raise RuntimeError(f"{self.name!r} has already finished")
        if self._target is None:
            raise RuntimeError(
                f"{self.name!r} has not started yet and cannot be interrupted"
            )

        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event.defused = True  # prevent engine-level crash if unhandled here
        event.callbacks.append(self._resume)
        self.env.schedule(event, priority=URGENT)

    def __repr__(self) -> str:
        state = (
            "finished"
            if self.triggered
            else f"waiting on {self._target!r}"
            if self._target is not None
            else "starting"
        )
        return f"<Process {self.name!r} {state}>"
