"""Measurement collection for simulation runs.

:class:`Tracer` records named time-series during a run (loss curves,
iteration timestamps, queue occupancy, ...); :class:`StatAccumulator`
keeps streaming summary statistics without storing samples.

Hot-path producers should grab a *channel* once
(``log = tracer.channel(f"iter/{wid}")``) and call it per event: the
key string is formatted and hashed exactly once, and when the channel
is disabled (a ``Tracer`` built with an allowlist of consumed
prefixes) the returned callable is a shared no-op, so unconsumed
series cost nothing per event.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np


def _noop_log(time: float, value: object = None) -> None:
    """Shared sink for disabled tracer channels."""


class Tracer:
    """Records ``(time, value)`` samples under string keys.

    Args:
        channels: Optional allowlist of key *prefixes* (the part before
            the first ``/``).  ``None`` records everything; otherwise
            only series whose prefix is listed are stored and every
            other :meth:`log` / :meth:`channel` becomes a no-op.
    """

    __slots__ = ("_records", "_channels")

    def __init__(self, channels: Optional[Sequence[str]] = None) -> None:
        self._records: Dict[str, List[Tuple[float, object]]] = {}
        self._channels = None if channels is None else frozenset(channels)

    def enabled(self, key: str) -> bool:
        """Whether samples logged under ``key`` are stored."""
        if self._channels is None:
            return True
        return key.partition("/")[0] in self._channels

    def channel(self, key: str) -> Callable[..., None]:
        """A fast-path appender bound to one series.

        Returns ``log(time, value=None)``; a shared no-op when the
        series is disabled, so callers can log unconditionally.
        """
        if not self.enabled(key):
            return _noop_log
        append = self._records.setdefault(key, []).append

        def log(time: float, value: object = None) -> None:
            append((time, value))

        return log

    def log(self, key: str, time: float, value: object = None) -> None:
        """Append one sample to the series ``key``."""
        if not self.enabled(key):
            return
        records = self._records.get(key)
        if records is None:
            records = self._records[key] = []
        records.append((time, value))

    def keys(self) -> List[str]:
        return sorted(self._records.keys())

    def raw(self, key: str) -> List[Tuple[float, object]]:
        """All samples logged for ``key`` (empty list if none)."""
        return list(self._records.get(key, []))

    def count(self, key: str) -> int:
        return len(self._records.get(key, []))

    def last(self, key: str) -> Optional[Tuple[float, object]]:
        records = self._records.get(key)
        return records[-1] if records else None

    def series(self, key: str) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(times, values)`` arrays for a numeric series."""
        records = self._records.get(key, [])
        if not records:
            return np.array([]), np.array([])
        times = np.array([t for t, _ in records], dtype=float)
        values = np.array([v for _, v in records], dtype=float)
        return times, values

    def replace(
        self, key: str, records: Sequence[Tuple[float, object]]
    ) -> None:
        """Overwrite the series ``key`` with ``records``.

        Result-merge hook for the sharded runner: a worker's numeric
        series (e.g. ``loss/<wid>``) is authoritative only on the
        shard that owns the worker, and the merged run substitutes the
        owner's samples for the local stub's.  Respects the channel
        allowlist like :meth:`log`.
        """
        if not self.enabled(key):
            return
        self._records[key] = list(records)

    def merge(self, other: "Tracer") -> None:
        """Fold another tracer's records into this one (stable order)."""
        for key, records in other._records.items():
            merged = self._records.setdefault(key, [])
            merged.extend(records)
            merged.sort(key=lambda tv: tv[0])

    def __repr__(self) -> str:
        return f"<Tracer keys={len(self._records)}>"


class StatAccumulator:
    """Streaming count/mean/min/max/variance (Welford) accumulator."""

    __slots__ = ("count", "mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def total(self) -> float:
        return self.mean * self.count

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min if self.count else float("nan"),
            "max": self.max if self.count else float("nan"),
        }

    def __repr__(self) -> str:
        if not self.count:
            return "<StatAccumulator empty>"
        return (
            f"<StatAccumulator n={self.count} mean={self.mean:.4g} "
            f"min={self.min:.4g} max={self.max:.4g}>"
        )
