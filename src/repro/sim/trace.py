"""Measurement collection for simulation runs.

:class:`Tracer` records named time-series during a run (loss curves,
iteration timestamps, queue occupancy, ...); :class:`StatAccumulator`
keeps streaming summary statistics without storing samples.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

import numpy as np


class Tracer:
    """Records ``(time, value)`` samples under string keys."""

    def __init__(self) -> None:
        self._records: Dict[str, List[Tuple[float, object]]] = defaultdict(list)

    def log(self, key: str, time: float, value: object = None) -> None:
        """Append one sample to the series ``key``."""
        self._records[key].append((time, value))

    def keys(self) -> List[str]:
        return sorted(self._records.keys())

    def raw(self, key: str) -> List[Tuple[float, object]]:
        """All samples logged for ``key`` (empty list if none)."""
        return list(self._records.get(key, []))

    def count(self, key: str) -> int:
        return len(self._records.get(key, []))

    def last(self, key: str) -> Optional[Tuple[float, object]]:
        records = self._records.get(key)
        return records[-1] if records else None

    def series(self, key: str) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(times, values)`` arrays for a numeric series."""
        records = self._records.get(key, [])
        if not records:
            return np.array([]), np.array([])
        times = np.array([t for t, _ in records], dtype=float)
        values = np.array([v for _, v in records], dtype=float)
        return times, values

    def merge(self, other: "Tracer") -> None:
        """Fold another tracer's records into this one (stable order)."""
        for key, records in other._records.items():
            self._records[key].extend(records)
            self._records[key].sort(key=lambda tv: tv[0])

    def __repr__(self) -> str:
        return f"<Tracer keys={len(self._records)}>"


class StatAccumulator:
    """Streaming count/mean/min/max/variance (Welford) accumulator."""

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    @property
    def total(self) -> float:
        return self.mean * self.count

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min if self.count else float("nan"),
            "max": self.max if self.count else float("nan"),
        }

    def __repr__(self) -> str:
        if not self.count:
            return "<StatAccumulator empty>"
        return (
            f"<StatAccumulator n={self.count} mean={self.mean:.4g} "
            f"min={self.min:.4g} max={self.max:.4g}>"
        )
