"""The discrete-event simulation engine.

:class:`Environment` owns the simulated clock and the time-ordered event
heap.  Processes (see :mod:`repro.sim.process`) are generators that
yield events; the environment resumes them when those events fire.

The engine is deterministic: events scheduled for the same time are
processed in (priority, insertion-order).
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, Iterable, Optional, Union

from repro.sim.events import (
    NORMAL,
    AllOf,
    AnyOf,
    Event,
    StopSimulation,
    Timeout,
)
from repro.sim.process import Process


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class Environment:
    """A discrete-event simulation environment.

    Args:
        initial_time: Starting value of the simulated clock.

    Example::

        env = Environment()

        def proc(env):
            yield env.timeout(5)
            return "done"

        p = env.process(proc(env))
        env.run()
        assert env.now == 5 and p.value == "done"

    Determinism contract: events fire in ``(time, priority,
    insertion-order)``; every scheduling path — generic
    :meth:`schedule`, the inlined :meth:`timeout` /
    :meth:`schedule_triggered` fast paths, and process bootstrap —
    draws its insertion id from the single shared counter, so fast and
    slow paths produce identical orderings.
    """

    __slots__ = ("_now", "_queue", "_eid", "_active_process")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list = []
        self._eid = count()
        self._active_process: Optional[Process] = None

    # ------------------------------------------------------------------
    # Clock and schedule
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def schedule(
        self, event: Event, delay: float = 0.0, priority: int = NORMAL
    ) -> None:
        """Place a triggered event on the heap ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._eid), event)
        )

    def schedule_triggered(self, event: Event, priority: int = NORMAL) -> None:
        """Immediate-schedule fast path (``Event.succeed`` / ``fail``).

        Identical to ``schedule(event, delay=0, priority=...)`` minus
        the delay validation — succeed/fail always fire "now".
        """
        heapq.heappush(
            self._queue, (self._now, priority, next(self._eid), event)
        )

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process the next scheduled event.

        Raises:
            EmptySchedule: If no events remain.
        """
        try:
            when, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no scheduled events") from None

        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event.defused:
            # An untouched failure crashes the simulation loudly rather
            # than passing silently.
            exc = event._value
            raise exc

    def run(self, until: Union[None, float, Event] = None) -> Any:
        """Run the simulation.

        Args:
            until: ``None`` runs until the schedule is empty.  A number
                runs until the clock reaches it.  An :class:`Event` runs
                until that event is processed (its value is returned).

        Returns:
            The value of ``until`` when it is an event, else ``None``.
        """
        if until is not None and not isinstance(until, Event):
            at = float(until)
            if at < self._now:
                raise ValueError(f"until ({at}) is in the past (now={self._now})")
            until = Event(self)
            until._ok = True
            until._value = None
            self.schedule(until, delay=at - self._now, priority=0)

        if isinstance(until, Event):
            if until.callbacks is None:
                # Already processed; nothing to run.
                return until.value
            until.callbacks.append(StopSimulation.callback)

        # The event loop is inlined (rather than calling self.step())
        # because it runs once per event: the method dispatch, the
        # try/except per event and the attribute reloads are measurable
        # at 100+ workers.  Semantics are identical to step() in a
        # while-loop.
        queue = self._queue
        pop = heapq.heappop
        try:
            while True:
                try:
                    when, _, _, event = pop(queue)
                except IndexError:
                    raise EmptySchedule("no scheduled events") from None
                self._now = when
                callbacks = event.callbacks
                event.callbacks = None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event.defused:
                    # An untouched failure crashes the simulation loudly
                    # rather than passing silently.
                    raise event._value
        except StopSimulation as stop:
            return stop.args[0] if stop.args else None
        except EmptySchedule:
            if isinstance(until, Event) and not until.triggered:
                raise RuntimeError(
                    "simulation ran out of events before the awaited event "
                    "triggered (possible deadlock)"
                ) from None
            return None

    def run_window(self, until: float) -> int:
        """Process every event scheduled strictly before ``until``.

        The conservative-window primitive of the sharded engine
        (:mod:`repro.sim.sharded`): a shard drains one lookahead window
        at a time and synchronizes with its peers between windows.
        Unlike :meth:`run`, no sentinel stop event is scheduled — the
        loop simply stops popping at the window boundary — so a run
        driven window-by-window consumes exactly the same insertion-id
        sequence as one uninterrupted :meth:`run` and stays bitwise
        deterministic against it.

        Returns:
            The number of events processed in this window.
        """
        # Inlined for the same reason run() is: this wraps the hottest
        # loop in the simulator.  Semantics are identical to step() in
        # a while-loop guarded by ``peek() < until``.
        queue = self._queue
        pop = heapq.heappop
        processed = 0
        while queue and queue[0][0] < until:
            when, _, _, event = pop(queue)
            self._now = when
            callbacks = event.callbacks
            event.callbacks = None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event.defused:
                raise event._value
            processed += 1
        return processed

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now.

        This is the single most frequent engine operation (every
        compute step, transfer and wait goes through it), so the
        constructor + generic-schedule path is inlined here: one object
        allocation, five slot stores, one heappush.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = Timeout.__new__(Timeout)
        event.env = self
        event.callbacks = []
        event.defused = False
        event._delay = delay
        event._ok = True
        event._value = value
        heapq.heappush(
            self._queue, (self._now + delay, NORMAL, next(self._eid), event)
        )
        return event

    def process(
        self, generator: Generator, name: Optional[str] = None
    ) -> Process:
        """Start a new process from a generator."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    def __repr__(self) -> str:
        return f"<Environment now={self._now} pending={len(self._queue)}>"
