"""Sharded conservative-parallel DES: one simulation, many processes.

The single-threaded engine (:mod:`repro.sim.engine`) tops out at one
core.  This module partitions a simulation across *shards* — one
process per shard, each owning a private :class:`Environment` — with
the classic conservative synchronization argument:

    If every cross-shard interaction takes at least ``lookahead``
    simulated time (for cluster runs: the minimum cross-shard link
    latency, which the link model knows at build time), then a shard
    that has received everything scheduled before ``t`` can simulate
    the window ``[t, t + lookahead)`` without hearing from its peers.

Two cooperating pieces live here:

* :func:`drive_windows` — the window primitive: drain one environment
  in lookahead-sized windows, invoking a synchronization callback at
  each boundary.  ``repro.harness.sharded`` drives replicated cluster
  environments with it (a barrier per window); the bare engine below
  uses it implicitly through the same ``run_window`` core.

* :class:`ShardedEngine` — the bare partitioned engine: ``n_shards``
  processes, each running its own event loop over its own workload.
  Cross-shard events travel in per-window batches over inter-process
  queues and are injected at the destination in the **deterministic
  merge order** ``(time, priority, seq, shard)``, so a run is
  bit-reproducible for a fixed shard count.  All emission goes through
  :meth:`ShardContext.send` (which stamps the merge key and enforces
  the lookahead contract) and all injection through the sorted merge —
  the ``det-shard-merge`` lint rule flags any bypass.

Determinism notes: the engine never reads wall-clock time itself — the
optional ``clock`` callable (injected by harness code, which is allowed
to read clocks) only feeds the idle/sync-wait accounting in the shard
reports, never any simulated quantity.  When process spawning is
unavailable the engine degrades to an in-process serial mode that
replays the identical window/merge schedule, so results are unchanged.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from itertools import count
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.sim.engine import Environment
from repro.sim.events import NORMAL, Event

#: One cross-shard message: ``(dst_shard, time, priority, seq,
#: src_shard, payload)``.  ``seq`` is the emitting shard's running
#: counter; ``(time, priority, seq, src_shard)`` is the merge key.
CrossShardMessage = Tuple[int, float, int, int, int, Any]


def merge_order(message: CrossShardMessage) -> Tuple[float, int, int, int]:
    """The deterministic cross-shard merge key: (time, priority, seq, shard)."""
    _, time, priority, seq, src_shard, _ = message
    return (time, priority, seq, src_shard)


@dataclass
class WindowStats:
    """What one windowed drive of an environment did."""

    events: int = 0
    windows: int = 0
    sync_wait_seconds: float = 0.0


def drive_windows(
    env: Environment,
    lookahead: float,
    sync: Optional[Callable[[float], None]] = None,
    clock: Optional[Callable[[], float]] = None,
) -> WindowStats:
    """Drain ``env`` in conservative windows, synchronizing between them.

    Runs ``[t, t + lookahead)`` where ``t`` is the next event time,
    then calls ``sync(window_end)`` (a barrier, an exchange, ...) and
    repeats until the schedule is empty.  Because ``run_window``
    consumes no sentinel events, the overall event sequence is bitwise
    identical to one uninterrupted ``env.run()``.

    Args:
        env: The environment to drain.
        lookahead: Window length in simulated time (> 0, or ``inf``
            for a single all-draining window).
        sync: Called with the window's end time after each window.
        clock: Optional monotonic-seconds callable used *only* to
            attribute time spent inside ``sync`` (idle/sync-wait) in
            the returned stats; never consulted for simulation state.
    """
    if lookahead <= 0:
        raise ValueError(f"lookahead must be > 0, got {lookahead}")
    stats = WindowStats()
    inf = float("inf")
    while True:
        start = env.peek()
        if start == inf:
            return stats
        end = start + lookahead
        stats.events += env.run_window(end)
        stats.windows += 1
        if sync is not None:
            if clock is not None:
                waited = clock()
                sync(end)
                stats.sync_wait_seconds += clock() - waited
            else:
                sync(end)


@dataclass
class ShardReport:
    """One shard's side of a :class:`ShardedEngine` run."""

    shard: int
    events: int
    windows: int
    cross_sent: int
    cross_received: int
    sync_wait_seconds: float
    result: Any = None


@dataclass
class ShardedRunReport:
    """The merged outcome of a :class:`ShardedEngine` run."""

    n_shards: int
    lookahead: float
    mode: str  # "processes" | "serial"
    rounds: int
    shards: List[ShardReport] = field(default_factory=list)

    @property
    def total_events(self) -> int:
        return sum(report.events for report in self.shards)

    @property
    def cross_messages(self) -> int:
        return sum(report.cross_sent for report in self.shards)

    def results(self) -> List[Any]:
        return [report.result for report in self.shards]


class ShardContext:
    """What a shard's workload sees: its environment plus the fabric.

    The workload's ``build(ctx)`` callback registers processes on
    ``ctx.env``, may set ``ctx.on_message`` to receive cross-shard
    payloads, and emits cross-shard events only through :meth:`send` —
    the single sanctioned path onto the deterministic merge.
    """

    __slots__ = (
        "env",
        "shard",
        "n_shards",
        "lookahead",
        "on_message",
        "result",
        "cross_sent",
        "cross_received",
        "_outbox",
        "_seq",
    )

    def __init__(
        self, env: Environment, shard: int, n_shards: int, lookahead: float
    ) -> None:
        self.env = env
        self.shard = shard
        self.n_shards = n_shards
        self.lookahead = lookahead
        self.on_message: Optional[Callable[["ShardContext", Any], None]] = None
        self.result: Any = None
        self.cross_sent = 0
        self.cross_received = 0
        self._outbox: List[CrossShardMessage] = []
        self._seq = count()

    def send(
        self,
        dst_shard: int,
        delay: float,
        payload: Any = None,
        priority: int = NORMAL,
    ) -> None:
        """Emit a cross-shard event ``delay`` simulated time from now.

        The conservative contract is enforced here: a remote delivery
        closer than the lookahead could land in a window the receiver
        has already simulated, so it is rejected loudly.
        """
        if not 0 <= dst_shard < self.n_shards:
            raise ValueError(f"dst_shard {dst_shard} out of range")
        if dst_shard != self.shard and delay < self.lookahead:
            raise ValueError(
                f"cross-shard delay {delay} violates the conservative "
                f"lookahead {self.lookahead}"
            )
        self.cross_sent += 1
        self._outbox.append(
            (
                dst_shard,
                self.env.now + delay,
                priority,
                next(self._seq),
                self.shard,
                payload,
            )
        )

    # ------------------------------------------------------------------
    # Fabric side (engine internals)
    # ------------------------------------------------------------------
    def _drain_outbox(self) -> List[CrossShardMessage]:
        outbox, self._outbox = self._outbox, []
        return outbox

    def _inject(self, inbox: Sequence[CrossShardMessage]) -> None:
        """Schedule received messages in deterministic merge order.

        This is the single sanctioned injection path: the batch is
        sorted by ``(time, priority, seq, shard)`` before any event id
        is drawn, so the destination heap's tie-break order — and with
        it the whole downstream simulation — is independent of queue
        arrival order.
        """
        env = self.env
        queue = env._queue
        eid = env._eid
        for message in sorted(inbox, key=merge_order):
            _, time, priority, _, _, payload = message
            event = Event(env)
            event._ok = True
            event._value = payload
            event.callbacks.append(self._dispatch)
            heapq.heappush(queue, (time, priority, next(eid), event))
            self.cross_received += 1

    def _dispatch(self, event: Event) -> None:
        if self.on_message is not None:
            self.on_message(self, event.value)

    def _report(self, stats: WindowStats) -> ShardReport:
        return ShardReport(
            shard=self.shard,
            events=stats.events,
            windows=stats.windows,
            cross_sent=self.cross_sent,
            cross_received=self.cross_received,
            sync_wait_seconds=stats.sync_wait_seconds,
            result=self.result,
        )


class ShardedEngine:
    """A conservatively synchronized, process-per-shard event loop.

    Args:
        n_shards: Number of shards (>= 1).
        lookahead: Minimum cross-shard interaction delay (> 0).
        build: ``build(ctx)`` — called once per shard (inside the shard
            process) to register that shard's workload on ``ctx.env``.
        clock: Optional monotonic-seconds callable for idle/sync-wait
            accounting (injected by harness code; the engine itself
            never reads wall clocks).

    The run protocol is parent-mediated: each round, every shard
    reports its next local event time and its outbox; the parent
    computes the global window ``[min(next), min(next) + lookahead)``,
    routes each outbox entry to its destination, and releases the
    shards into the window.  Rounds are lockstep, so the per-round
    inbox composition — and therefore the merged event order — is a
    pure function of the workload.
    """

    def __init__(
        self,
        n_shards: int,
        lookahead: float,
        build: Callable[[ShardContext], None],
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if lookahead <= 0:
            raise ValueError(f"lookahead must be > 0, got {lookahead}")
        self.n_shards = n_shards
        self.lookahead = lookahead
        self.build = build
        self.clock = clock

    # ------------------------------------------------------------------
    # Serial reference mode (also the no-process fallback)
    # ------------------------------------------------------------------
    def run_serial(self) -> ShardedRunReport:
        """Run every shard in-process, interleaved window by window.

        Replays exactly the window/merge schedule of the process mode,
        so results (event counts, merge order, workload results) are
        identical — this is both the graceful-degradation path and the
        determinism oracle the tests compare the process mode against.
        """
        contexts = []
        for shard in range(self.n_shards):
            ctx = ShardContext(
                Environment(), shard, self.n_shards, self.lookahead
            )
            self.build(ctx)
            contexts.append(ctx)
        stats = [WindowStats() for _ in contexts]
        rounds = 0
        inf = float("inf")
        pending: List[CrossShardMessage] = []
        while True:
            horizon = min(
                (ctx.env.peek() for ctx in contexts), default=inf
            )
            if pending:
                horizon = min(horizon, min(m[1] for m in pending))
            if horizon == inf:
                break
            if pending:
                for shard, ctx in enumerate(contexts):
                    ctx._inject([m for m in pending if m[0] == shard])
                pending = []
            end = horizon + self.lookahead
            rounds += 1
            for shard, ctx in enumerate(contexts):
                stats[shard].events += ctx.env.run_window(end)
                stats[shard].windows += 1
                pending.extend(ctx._drain_outbox())
        report = ShardedRunReport(
            n_shards=self.n_shards,
            lookahead=self.lookahead,
            mode="serial",
            rounds=rounds,
        )
        report.shards = [
            ctx._report(stat) for ctx, stat in zip(contexts, stats)
        ]
        return report

    # ------------------------------------------------------------------
    # Process mode
    # ------------------------------------------------------------------
    def run(self, processes: bool = True) -> ShardedRunReport:
        """Run the sharded simulation and return the merged report.

        Falls back to :meth:`run_serial` — with a result bit-identical
        by construction — when ``processes`` is false, only one shard
        exists, or worker processes cannot be spawned.
        """
        if not processes or self.n_shards == 1:
            return self.run_serial()
        try:
            return self._run_processes()
        except (ImportError, OSError):
            return self.run_serial()

    def _run_processes(self) -> ShardedRunReport:
        import multiprocessing

        mp = multiprocessing.get_context("fork")
        up_queue = mp.SimpleQueue()
        down_queues = [mp.SimpleQueue() for _ in range(self.n_shards)]
        workers = [
            mp.Process(
                target=_shard_main,
                args=(
                    shard,
                    self,
                    up_queue,
                    down_queues[shard],
                ),
                daemon=True,
            )
            for shard in range(self.n_shards)
        ]
        for worker in workers:
            worker.start()
        try:
            return self._mediate(up_queue, down_queues)
        finally:
            for worker in workers:
                worker.join(timeout=60.0)
                if worker.is_alive():  # pragma: no cover - hung shard
                    worker.terminate()
                    worker.join()

    def _mediate(self, up_queue, down_queues) -> ShardedRunReport:
        """The parent's half of the lockstep round protocol."""
        inf = float("inf")
        rounds = 0
        pending: List[CrossShardMessage] = []
        reports: List[Optional[ShardReport]] = [None] * self.n_shards
        while True:
            next_times = [inf] * self.n_shards
            for _ in range(self.n_shards):
                kind, shard, value, outbox = up_queue.get()
                if kind == "error":  # pragma: no cover - shard crash
                    raise RuntimeError(f"shard {shard} failed: {value}")
                next_times[shard] = value
                pending.extend(outbox)
            horizon = min(next_times)
            if pending:
                horizon = min(horizon, min(m[1] for m in pending))
            if horizon == inf:
                break
            rounds += 1
            for shard, down_queue in enumerate(down_queues):
                inbox = [m for m in pending if m[0] == shard]
                # Sanctioned merge handoff: the shard injects this batch
                # through ShardContext._inject (sorted by merge_order).
                down_queue.put(("run", horizon + self.lookahead, inbox))  # repro: ignore[det-shard-merge]
            pending = []
        for down_queue in down_queues:
            down_queue.put(("done", None, None))  # repro: ignore[det-shard-merge]
        for _ in range(self.n_shards):
            kind, shard, value, _ = up_queue.get()
            if kind != "report":  # pragma: no cover - protocol breach
                raise RuntimeError(f"unexpected shard message {kind!r}")
            reports[shard] = value
        report = ShardedRunReport(
            n_shards=self.n_shards,
            lookahead=self.lookahead,
            mode="processes",
            rounds=rounds,
        )
        report.shards = list(reports)
        return report


def _shard_main(shard: int, engine: ShardedEngine, up_queue, down_queue):
    """One shard process: build, then lockstep rounds until done."""
    try:
        ctx = ShardContext(
            Environment(), shard, engine.n_shards, engine.lookahead
        )
        engine.build(ctx)
        clock = engine.clock
        stats = WindowStats()
        while True:
            # Report readiness: next local event time plus this
            # window's outbox (merge-key-stamped by ShardContext.send).
            up_queue.put(("state", shard, ctx.env.peek(), ctx._drain_outbox()))  # repro: ignore[det-shard-merge]
            waited = clock() if clock is not None else 0.0
            command, end, inbox = down_queue.get()
            if clock is not None:
                stats.sync_wait_seconds += clock() - waited
            if command == "done":
                break
            ctx._inject(inbox)
            stats.events += ctx.env.run_window(end)
            stats.windows += 1
        up_queue.put(("report", shard, ctx._report(stats), None))  # repro: ignore[det-shard-merge]
    except BaseException as error:  # pragma: no cover - shard crash
        up_queue.put(("error", shard, repr(error), None))  # repro: ignore[det-shard-merge]
        raise
