"""Blocking stores (FIFO channels) for process communication.

Stores are the rendezvous primitive of the simulation: a producer
``put``s items, a consumer ``get``s them, and both sides block (their
events stay untriggered) until the operation can complete.

Three flavors:

* :class:`Store` — plain FIFO with optional capacity.
* :class:`FilterStore` — consumers ask for the first item matching a
  predicate (used to implement tag-matched dequeues).
* :class:`PriorityStore` — items come out smallest-first.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


class StorePut(Event):
    """Event representing a pending ``put``; succeeds when admitted."""

    __slots__ = ("item", "store")

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        self.store = store

    def cancel(self) -> bool:
        """Withdraw the put if it has not been admitted yet."""
        return self.store._cancel_put(self)


class StoreGet(Event):
    """Event representing a pending ``get``; succeeds with the item."""

    __slots__ = ("filter", "store")

    def __init__(self, store: "Store", filter: Optional[Callable] = None) -> None:
        super().__init__(store.env)
        self.filter = filter
        self.store = store

    def cancel(self) -> bool:
        """Withdraw the get if it has not been satisfied yet."""
        return self.store._cancel_get(self)


class Store:
    """A FIFO store with optional capacity.

    Args:
        env: Owning environment.
        capacity: Maximum number of items held; ``inf`` by default.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: deque = deque()
        self._put_waiters: deque = deque()
        self._get_waiters: deque = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def level(self) -> int:
        """Number of items currently stored."""
        return len(self.items)

    def put(self, item: Any) -> StorePut:
        """Offer ``item``; the returned event succeeds once stored."""
        event = StorePut(self, item)
        self._put_waiters.append(event)
        self._dispatch()
        return event

    def get(self) -> StoreGet:
        """Request an item; the returned event succeeds with the item."""
        event = StoreGet(self)
        self._get_waiters.append(event)
        self._dispatch()
        return event

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _admit(self, item: Any) -> None:
        self.items.append(item)

    def _match(self, getter: StoreGet) -> Any:
        """Return the item satisfying ``getter`` or the PENDING sentinel."""
        if self.items:
            return self.items.popleft()
        return _NO_MATCH

    def _dispatch(self) -> None:
        """Fixpoint: admit puts while there is space, satisfy gets."""
        progress = True
        while progress:
            progress = False
            while self._put_waiters and len(self.items) < self.capacity:
                putter = self._put_waiters.popleft()
                self._admit(putter.item)
                putter.succeed()
                progress = True
            pending = []
            while self._get_waiters:
                getter = self._get_waiters.popleft()
                item = self._match(getter)
                if item is _NO_MATCH:
                    pending.append(getter)
                else:
                    getter.succeed(item)
                    progress = True
            self._get_waiters.extend(pending)

    def _cancel_put(self, event: StorePut) -> bool:
        try:
            self._put_waiters.remove(event)
            return True
        except ValueError:
            return False

    def _cancel_get(self, event: StoreGet) -> bool:
        try:
            self._get_waiters.remove(event)
            return True
        except ValueError:
            return False

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} items={len(self.items)} "
            f"waiting_put={len(self._put_waiters)} "
            f"waiting_get={len(self._get_waiters)}>"
        )


#: Sentinel distinguishing "no matching item" from a stored ``None``.
_NO_MATCH = object()


class FilterStore(Store):
    """A store whose consumers select items with a predicate.

    ``get(lambda item: ...)`` succeeds with the first stored item (in
    FIFO order) satisfying the predicate.  Getters that cannot be
    satisfied yet do not block other getters.
    """

    def get(self, filter: Callable[[Any], bool] = lambda item: True) -> StoreGet:
        event = StoreGet(self, filter=filter)
        self._get_waiters.append(event)
        self._dispatch()
        return event

    def _match(self, getter: StoreGet) -> Any:
        for index, item in enumerate(self.items):
            if getter.filter(item):
                del self.items[index]
                return item
        return _NO_MATCH


class PriorityItem:
    """Wrap an item with an orderable priority for :class:`PriorityStore`."""

    __slots__ = ("priority", "item")

    def __init__(self, priority: Any, item: Any) -> None:
        self.priority = priority
        self.item = item

    def __lt__(self, other: "PriorityItem") -> bool:
        return self.priority < other.priority

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PriorityItem):
            return NotImplemented
        return self.priority == other.priority and self.item == other.item

    def __repr__(self) -> str:
        return f"PriorityItem({self.priority!r}, {self.item!r})"


class PriorityStore(Store):
    """A store that releases items smallest-first.

    Items must be mutually orderable; use :class:`PriorityItem` to
    attach explicit priorities.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        super().__init__(env, capacity)
        self.items: list = []

    def _admit(self, item: Any) -> None:
        heapq.heappush(self.items, item)

    def _match(self, getter: StoreGet) -> Any:
        if self.items:
            return heapq.heappop(self.items)
        return _NO_MATCH
