"""Discrete-event simulation substrate.

A from-scratch, deterministic event/process simulator in the SimPy
style.  The Hop protocol, all baselines, and the network model run as
generator processes on this engine against a simulated clock.

Public API::

    from repro.sim import Environment, Store, FilterStore, RngStreams

    env = Environment()

    def worker(env, inbox):
        item = yield inbox.get()
        yield env.timeout(1.0)
        return item

    inbox = Store(env)
    inbox.put("hello")
    proc = env.process(worker(env, inbox))
    env.run()
"""

from repro.sim.engine import EmptySchedule, Environment
from repro.sim.events import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Interrupt,
    Timeout,
)
from repro.sim.process import Process
from repro.sim.resources import Request, Resource
from repro.sim.rng import RngStreams, derive_seed
from repro.sim.store import (
    FilterStore,
    PriorityItem,
    PriorityStore,
    Store,
    StoreGet,
    StorePut,
)
from repro.sim.trace import StatAccumulator, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "EmptySchedule",
    "Environment",
    "Event",
    "FilterStore",
    "Interrupt",
    "PriorityItem",
    "PriorityStore",
    "Process",
    "Request",
    "Resource",
    "RngStreams",
    "StatAccumulator",
    "Store",
    "StoreGet",
    "StorePut",
    "Timeout",
    "Tracer",
    "derive_seed",
]
