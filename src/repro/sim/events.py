"""Event primitives for the discrete-event simulation engine.

The simulation substrate follows the classic event/process model (as
popularized by SimPy, re-implemented here from scratch): an
:class:`Event` is a one-shot occurrence with a value, processes wait on
events by yielding them, and the :class:`~repro.sim.engine.Environment`
drives everything from a time-ordered heap.

Only the engine ever *processes* events; user code creates them,
triggers them (``succeed`` / ``fail``) and waits on them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.engine import Environment

#: Sentinel for "this event has no value yet".
PENDING = object()

#: Scheduling priority for interrupts and other must-run-first events.
URGENT = 0
#: Scheduling priority for ordinary events.
NORMAL = 1


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The ``cause`` passed to :meth:`repro.sim.process.Process.interrupt`
    is available as :attr:`cause`.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class StopSimulation(Exception):
    """Internal control-flow exception used by ``Environment.run(until=...)``."""

    @classmethod
    def callback(cls, event: "Event") -> None:
        """Event callback that stops the simulation with the event's value."""
        if event.ok:
            raise cls(event.value)
        raise event.value


class Event:
    """A one-shot occurrence in simulated time.

    Lifecycle: *pending* -> *triggered* (value set, scheduled on the
    event heap) -> *processed* (callbacks executed by the engine).

    ``__slots__`` keeps events dict-free: the engine creates several
    events per message and per iteration, so attribute storage is on
    the simulator's hottest allocation path.

    Attributes:
        env: The environment this event belongs to.
        callbacks: Functions ``cb(event)`` invoked when the event is
            processed.  ``None`` once processed.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        #: Failed events raise out of ``Environment.step`` unless some
        #: callback marks them as handled ("defused").
        self.defused = False

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the engine has run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._value is PENDING:
            raise RuntimeError(f"{self!r} has not been triggered")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or exception, for failed events)."""
        if self._value is PENDING:
            raise RuntimeError(f"{self!r} has not been triggered")
        return self._value

    # ------------------------------------------------------------------
    # Triggering
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule_triggered(self, priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env.schedule_triggered(self, priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of another (triggered) event onto this one.

        Useful as a callback: ``other.callbacks.append(this.trigger)``.
        """
        if event.ok:
            self.succeed(event.value)
        else:
            event.defused = True
            self.fail(event.value)

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically after ``delay`` simulated time units.

    Prefer ``env.timeout(delay)``: it builds the same object through an
    inlined fast path that skips the generic ``schedule`` machinery.
    """

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self.defused = False
        self._delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    @property
    def delay(self) -> float:
        return self._delay

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay} at {id(self):#x}>"


class ConditionValue:
    """Ordered mapping of the events a condition has collected values from."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list = []

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(repr(event))
        return event.value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def todict(self) -> dict:
        return {event: event.value for event in self.events}

    def __repr__(self) -> str:
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """An event that triggers when ``evaluate(events, n_done)`` is satisfied.

    Used through the :class:`AllOf` / :class:`AnyOf` helpers.  If any
    constituent event fails, the condition fails with that exception.
    """

    __slots__ = ("_evaluate", "_events", "_count", "_done")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[tuple, int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = tuple(events)
        self._count = 0
        self._done: set = set()

        for event in self._events:
            if event.env is not env:
                raise ValueError("all events must share one environment")

        if self._evaluate(self._events, self._count) and not self.triggered:
            # Immediately true (e.g. empty AllOf).
            self.succeed(self._collect_value())
            return

        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_value(self) -> ConditionValue:
        value = ConditionValue()
        for event in self._events:
            if event in self._done:
                value.events.append(event)
        return value

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                # Condition already decided; swallow late failures.
                event.defused = True
            return
        self._count += 1
        if not event.ok:
            event.defused = True
            self.fail(event.value)
            return
        self._done.add(event)
        if self._evaluate(self._events, self._count):
            self.succeed(self._collect_value())

    @staticmethod
    def all_events(events: tuple, count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: tuple, count: int) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Triggers once *all* of ``events`` have succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Triggers once *any* of ``events`` has succeeded."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)
