"""Capacity-limited resources (counting semaphores) for the simulator.

Used to model shared facilities such as a NIC that can serve a limited
number of concurrent transfers, or an exclusive lock on a parameter
copy (AD-PSGD's atomic averaging).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


class Request(Event):
    """A pending acquisition of a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource

    def cancel(self) -> bool:
        """Withdraw the request if not yet granted."""
        return self.resource._cancel(self)


class Resource:
    """A resource with ``capacity`` concurrently usable slots.

    Usage inside a process::

        req = resource.request()
        yield req
        try:
            ...  # hold the resource
        finally:
            resource.release(req)
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self.users: list = []
        self._waiters: deque = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Request:
        """Ask for a slot; the returned event succeeds when granted."""
        request = Request(self)
        self._waiters.append(request)
        self._grant()
        return request

    def release(self, request: Request) -> None:
        """Return a previously granted slot."""
        try:
            self.users.remove(request)
        except ValueError:
            raise RuntimeError(
                "release() of a request that does not hold the resource"
            ) from None
        self._grant()

    def _grant(self) -> None:
        while self._waiters and len(self.users) < self.capacity:
            request = self._waiters.popleft()
            self.users.append(request)
            request.succeed()

    def _cancel(self, request: Request) -> bool:
        try:
            self._waiters.remove(request)
            return True
        except ValueError:
            return False

    def __repr__(self) -> str:
        return (
            f"<Resource capacity={self.capacity} in_use={len(self.users)} "
            f"waiting={len(self._waiters)}>"
        )
