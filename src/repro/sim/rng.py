"""Named, seeded random-number streams.

Every stochastic component of an experiment (per-worker data sampling,
per-worker slowdown draws, initialization, ...) pulls its own stream
from a :class:`RngStreams` registry.  Streams are derived from the
master seed and a stable string key, so:

* runs with the same seed are bit-for-bit reproducible, and
* changing one component's draws (e.g. adding a slowdown model) never
  perturbs any other component's stream.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def derive_seed(master_seed: int, key: str) -> int:
    """Derive a stable 64-bit child seed from ``(master_seed, key)``."""
    digest = hashlib.sha256(f"{master_seed}/{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngStreams:
    """A registry of independent, reproducible RNG streams.

    Args:
        seed: Master seed for the whole experiment.

    Example::

        streams = RngStreams(seed=7)
        data_rng = streams.stream("worker", 3, "data")
        slow_rng = streams.stream("worker", 3, "slowdown")
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def key(self, *parts: object) -> str:
        """Join stream-name parts into the canonical key string."""
        return "/".join(str(part) for part in parts)

    def stream(self, *parts: object) -> np.random.Generator:
        """Return (creating if needed) the stream named by ``parts``."""
        key = self.key(*parts)
        if key not in self._streams:
            child_seed = derive_seed(self.seed, key)
            self._streams[key] = np.random.default_rng(child_seed)
        return self._streams[key]

    def fresh(self, *parts: object) -> np.random.Generator:
        """Return a *new* generator for ``parts`` (not cached).

        Useful when a component must be able to replay its own draws.
        """
        return np.random.default_rng(derive_seed(self.seed, self.key(*parts)))

    def spawn(self, *parts: object) -> "RngStreams":
        """Create a child registry rooted at a namespaced seed."""
        return RngStreams(derive_seed(self.seed, self.key(*parts)))

    def __repr__(self) -> str:
        return f"<RngStreams seed={self.seed} streams={len(self._streams)}>"
