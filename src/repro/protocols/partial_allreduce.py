"""Prague-style partial all-reduce [Luo et al., arXiv:1909.08029].

The follow-up to Hop replaces global All-Reduce with *Partial
All-Reduce*: a group generator repeatedly draws small, randomized
worker groups; each group runs one all-reduce among only its members
and moves on.  A straggler then delays just its current group-mates —
never the whole deployment — and the randomized regrouping mixes
parameters across the cluster over time (the paper's *conflict-free
group generation* keeps any worker from being scheduled into two
concurrent groups).

This simulation reproduces that scheme:

* :class:`GroupSchedule` draws one conflict-free partition of the
  workers per training round from a seeded RNG (``static_groups=True``
  freezes the round-0 partition — the ablation knob that removes
  randomized mixing while keeping the group-local barrier).
* :class:`PartialAllReduceCluster` runs one process per worker:
  compute -> local SGD step -> group barrier -> in-group chunked ring
  all-reduce (``2(g-1)`` chunk steps of size ``M/g``).

Registered as protocol ``"partial-allreduce"`` (alias ``"prague"``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.ml.optim import SGD
from repro.net.links import LinkModel, uniform_links
from repro.protocols.base import ProtocolCluster, ProtocolRuntime
from repro.protocols.registry import register_protocol, spec_common_kwargs
from repro.sim.engine import Environment
from repro.sim.events import Event


class GroupSchedule:
    """Deterministic, conflict-free group generator.

    Every round ``k`` maps to one *partition* of ``range(n_workers)``
    into groups of (at most) ``group_size`` members, drawn from an RNG
    seeded by ``(seed, k)`` — identical for every worker that asks, and
    conflict-free by construction: a partition cannot place one worker
    in two groups of the same round.

    Args:
        n_workers: Cluster size.
        group_size: Target members per group (the last group of a round
            keeps the remainder and may be smaller).
        seed: Base seed for the per-round draws.
        static: Freeze the round-0 partition for every round (ablation:
            no randomized re-mixing across groups).
        active_of_round: Optional ``k -> sorted member tuple`` derived
            from a churn plan; each round partitions only that round's
            members, so a departed worker can never strand a group
            barrier.  ``None`` (the static case) partitions everyone,
            bit-identically to the pre-membership behavior.
    """

    def __init__(
        self,
        n_workers: int,
        group_size: int,
        seed: int = 0,
        static: bool = False,
        active_of_round=None,
    ) -> None:
        if group_size < 2:
            raise ValueError(f"group_size must be >= 2, got {group_size}")
        if n_workers < 2:
            raise ValueError("partial all-reduce needs >= 2 workers")
        if static and active_of_round is not None:
            raise ValueError(
                "static groups cannot track membership churn (a frozen "
                "partition would strand barriers on departed workers)"
            )
        self.n_workers = n_workers
        self.group_size = min(group_size, n_workers)
        self.seed = seed
        self.static = static
        self.active_of_round = active_of_round
        self._rounds: Dict[int, Tuple[Tuple[int, ...], ...]] = {}
        self._member_index: Dict[int, Dict[int, Tuple[int, ...]]] = {}

    def groups_for_round(self, k: int) -> Tuple[Tuple[int, ...], ...]:
        """The conflict-free partition used in round ``k``."""
        key = 0 if self.static else int(k)
        if key not in self._rounds:
            rng = np.random.default_rng([self.seed, 0x9E3779B9, key])
            size = self.group_size
            if self.active_of_round is None:
                perm = rng.permutation(self.n_workers)
                groups = tuple(
                    tuple(int(w) for w in perm[i : i + size])
                    for i in range(0, self.n_workers, size)
                )
            else:
                # Membership-aware rounds: partition the round's
                # members only (the draw stays seeded by (seed, k), so
                # churn runs are as deterministic as static ones).
                pool = self.active_of_round(key)
                perm = rng.permutation(len(pool))
                groups = tuple(
                    tuple(int(pool[p]) for p in perm[i : i + size])
                    for i in range(0, len(pool), size)
                )
            self._rounds[key] = groups
            self._member_index[key] = {
                wid: group for group in groups for wid in group
            }
        return self._rounds[key]

    def group_of(self, k: int, wid: int) -> Tuple[int, ...]:
        """The group worker ``wid`` joins in round ``k``."""
        self.groups_for_round(k)
        key = 0 if self.static else int(k)
        return self._member_index[key][wid]

    @staticmethod
    def validate_partition(
        groups: Tuple[Tuple[int, ...], ...],
        n_workers: int,
        members=None,
    ) -> None:
        """Raise if ``groups`` is not a conflict-free partition.

        ``members`` defaults to every worker; membership-aware rounds
        pass the round's member set instead.
        """
        expected = set(range(n_workers)) if members is None else set(members)
        seen: List[int] = [w for group in groups for w in group]
        if len(seen) != len(set(seen)):
            raise ValueError(f"worker scheduled into two groups: {groups}")
        if set(seen) != expected:
            raise ValueError(
                f"groups {groups} do not cover the {len(expected)} members"
            )


class _GroupBarrier:
    """Arrival barrier for one (round, group) partial all-reduce."""

    __slots__ = ("event", "arrived")

    def __init__(self, env: Environment) -> None:
        self.event = Event(env)
        self.arrived = 0


class PartialAllReduceCluster(ProtocolCluster):
    """Randomized partial all-reduce training (Prague).

    Args:
        n_workers: Cluster size.
        group_size: Members per partial all-reduce group.
        static_groups: Ablation — keep the round-0 partition forever.
        links: Link timing for the in-group rings.
        Remaining arguments: see
            :class:`~repro.protocols.base.ProtocolCluster`.
    """

    protocol = "partial-allreduce"
    elastic = True

    def __init__(
        self,
        n_workers: int,
        model_factory,
        dataset,
        optimizer: Optional[SGD] = None,
        group_size: int = 4,
        static_groups: bool = False,
        links: Optional[LinkModel] = None,
        compute_model=None,
        batch_size: int = 32,
        max_iter: int = 100,
        seed: int = 0,
        update_size: Optional[float] = None,
        evaluate: bool = True,
        trace_channels=None,
        churn=None,
        topology=None,
        compression=None,
    ) -> None:
        super().__init__(
            n_workers=n_workers,
            model_factory=model_factory,
            dataset=dataset,
            optimizer=optimizer,
            batch_size=batch_size,
            compute_model=compute_model,
            max_iter=max_iter,
            seed=seed,
            update_size=update_size,
            evaluate=evaluate,
            trace_channels=trace_channels,
            compression=compression,
        )
        self.links = links or uniform_links()
        if churn is not None and churn.empty:
            churn = None
        if churn is not None:
            if static_groups:
                raise ValueError(
                    "membership churn needs randomized regrouping; drop "
                    "static_groups"
                )
            churn = churn.clipped(max_iter)
            churn.validate_for(n_workers)
            if churn.empty:
                churn = None
        self.churn = churn
        #: Nominal communication graph (membership-event reporting
        #: only: partial all-reduce's real shape is its groups).
        self.topology = topology
        self._membership = None
        active_of_round = None
        if churn is not None:
            plan = churn

            def active_of_round(k: int) -> Tuple[int, ...]:
                return tuple(
                    w for w in range(n_workers) if plan.active_at(w, k)
                )

        self.schedule = GroupSchedule(
            n_workers,
            group_size,
            seed=seed,
            static=static_groups,
            active_of_round=active_of_round,
        )

    def group_comm_time(
        self, group: Tuple[int, ...], update_size: float
    ) -> float:
        """Chunked ring all-reduce time among ``group`` members."""
        g = len(group)
        if g < 2:
            return 0.0
        chunk = update_size / g
        slowest_hop = max(
            self.links.transfer_time(group[i], group[(i + 1) % g], chunk)
            for i in range(g)
        )
        return 2 * (g - 1) * slowest_hop

    # ------------------------------------------------------------------
    # Worker process
    # ------------------------------------------------------------------
    def _round_started(self, env: Environment, k: int) -> Event:
        """Event that fires when any member starts round ``k``."""
        event = self._round_events.get(k)
        if event is None:
            event = self._round_events[k] = Event(env)
        return event

    def _mark_round_started(self, env: Environment, k: int) -> None:
        event = self._round_events.get(k)
        if event is None:
            event = self._round_events[k] = Event(env)
        if not event.triggered:
            event.succeed()

    def _round(
        self,
        wid: int,
        k: int,
        runtime: ProtocolRuntime,
        params: Dict[int, np.ndarray],
        barriers: Dict[Tuple[int, Tuple[int, ...]], _GroupBarrier],
        model,
        optimizer: SGD,
        batcher,
    ):
        """Generator: one round — compute, local step, group barrier,
        in-group all-reduce (shared by the static and elastic loops,
        so the two can never drift apart)."""
        env = runtime.env
        start = env.now
        runtime.gap.record(wid, k)
        model.set_params(params[wid])
        xb, yb = batcher.next_batch()
        loss, grad = model.loss_and_grad(xb, yb)
        yield env.timeout(self.compute_model.duration(wid, k))
        params[wid] = params[wid] + optimizer.step(params[wid], grad, k)

        group = self.schedule.group_of(k, wid)
        if len(group) > 1:
            barrier = barriers.setdefault((k, group), _GroupBarrier(env))
            barrier.arrived += 1
            if barrier.arrived == len(group):
                # Last member in: perform the group's all-reduce.
                compressors = self._group_compressors
                if compressors[group[0]] is None:
                    mean = np.mean([params[m] for m in group], axis=0)
                    for member in group:
                        params[member] = mean.copy()
                else:
                    # CHOCO-style compressed group reduce: each member
                    # broadcasts its reference delta; everyone steps
                    # toward the mean of the *reconstructions*, keeping
                    # its own compression error local.
                    recons = {
                        m: compressors[m].encode_state(params[m])[1]
                        for m in group
                    }
                    mean = np.mean([recons[m] for m in group], axis=0)
                    for member in group:
                        params[member] = params[member] + (
                            mean - recons[member]
                        )
                g = len(group)
                runtime.count_traffic(
                    2 * (g - 1) * g,
                    2.0 * (g - 1) * self._wire_size(runtime),
                )
                barrier.event.succeed()
            yield barrier.event
            yield env.timeout(
                self.group_comm_time(group, self._wire_size(runtime))
            )

        runtime.tracer.log(f"loss/{wid}", env.now, loss)
        runtime.tracer.log(f"duration/{wid}", env.now, env.now - start)

    def _worker_elastic(
        self,
        wid: int,
        runtime: ProtocolRuntime,
        params: Dict[int, np.ndarray],
        barriers: Dict[Tuple[int, Tuple[int, ...]], _GroupBarrier],
        model,
        optimizer: SGD,
        batcher,
    ):
        """The partial all-reduce loop under membership churn.

        Rounds are the membership clock here: each round partitions
        only that round's members (see :class:`GroupSchedule`), so a
        group barrier can never wait on a departed worker.  Departure
        and (re)join follow the default lifecycle: drain, rewire
        (recorded against the nominal topology), re-sync from the
        sponsor.
        """
        env = runtime.env
        plan = self.churn
        membership = self._membership
        event = plan.event_for(wid)
        k = 0
        if event is not None and event.late_join:
            if event.join_at >= self.max_iter:
                # Clamped past the horizon: absent for the whole run.
                runtime.done[wid] = True
                return
            yield self._round_started(env, event.join_at)
            membership.enact_join(wid, env.now, start=event.join_at)
            yield from self._join_resync(runtime, wid, params)
            k = event.join_at
        while k < self.max_iter:
            if not plan.active_at(wid, k):
                if membership.is_active(wid):
                    membership.enact_leave(wid, env.now, k)
                if event.join_at is None:
                    runtime.done[wid] = True
                    return
                yield self._round_started(env, event.join_at)
                membership.enact_join(wid, env.now, start=event.join_at)
                yield from self._join_resync(runtime, wid, params)
                k = event.join_at
                continue
            self._mark_round_started(env, k)
            membership.on_iteration(wid, k, env.now)
            yield from self._round(
                wid, k, runtime, params, barriers, model, optimizer, batcher
            )
            self._completed[wid] = k + 1
            k += 1
        runtime.done[wid] = True

    def _worker(
        self,
        wid: int,
        runtime: ProtocolRuntime,
        params: Dict[int, np.ndarray],
        barriers: Dict[Tuple[int, Tuple[int, ...]], _GroupBarrier],
        model,
        optimizer: SGD,
        batcher,
    ):
        if self._membership is not None:
            return (
                yield from self._worker_elastic(
                    wid, runtime, params, barriers, model, optimizer, batcher
                )
            )
        for k in range(self.max_iter):
            yield from self._round(
                wid, k, runtime, params, barriers, model, optimizer, batcher
            )
        runtime.done[wid] = True

    # ------------------------------------------------------------------
    # ProtocolCluster hooks
    # ------------------------------------------------------------------
    def _start(self, runtime: ProtocolRuntime) -> None:
        env = runtime.env
        self._round_events: Dict[int, Event] = {}
        if self.churn is not None:
            from repro.graphs.builders import ring
            from repro.membership import MembershipRuntime, MembershipView

            # Rounds are the membership clock: joins are enacted by the
            # joiner at its round, not by frontier triggers.
            nominal = self.topology or ring(self.n_workers)
            view = MembershipView.founding(
                nominal,
                absent=self.churn.initially_absent(),
                policy=self.churn.policy,
            )
            self._membership = MembershipRuntime(
                env,
                view,
                self.churn,
                self.max_iter,
                gap=runtime.gap,
                auto_join_triggers=False,
            )
        self._params: Dict[int, np.ndarray] = {
            wid: runtime.models[wid].get_params()
            for wid in range(self.n_workers)
        }
        # One CHOCO reference channel per worker (None when dense).
        self._group_compressors = [
            self._stream_compressor(runtime, wid)
            for wid in range(self.n_workers)
        ]
        self._completed = [0] * self.n_workers
        barriers: Dict[Tuple[int, Tuple[int, ...]], _GroupBarrier] = {}
        for wid in range(self.n_workers):
            env.process(
                self._worker(
                    wid,
                    runtime,
                    self._params,
                    barriers,
                    runtime.models[wid],
                    self.optimizer_proto.clone(),
                    self._make_batcher(wid),
                ),
                name=f"partial-allreduce-{wid}",
            )

    def _iterations_completed(self, runtime: ProtocolRuntime) -> List[int]:
        if self._membership is not None:
            return list(self._completed)
        return super()._iterations_completed(runtime)

    def _final_param_stack(self, runtime: ProtocolRuntime) -> np.ndarray:
        return np.stack(
            [self._params[wid] for wid in range(self.n_workers)]
        )

    def _config_description(self) -> str:
        flavor = "static" if self.schedule.static else "randomized"
        return (
            f"partial all-reduce, {flavor} groups of "
            f"{self.schedule.group_size}"
        )

    def _topology_name(self) -> str:
        return (
            f"groups({self.n_workers}/{self.schedule.group_size}"
            f"{'*' if self.schedule.static else ''})"
        )


def _build_partial_allreduce(spec) -> PartialAllReduceCluster:
    return PartialAllReduceCluster(
        n_workers=spec.topology.n,
        group_size=spec.group_size,
        static_groups=spec.static_groups,
        links=spec.scenario_links(),
        churn=getattr(spec.built_scenario(), "churn", None),
        topology=spec.topology,
        **spec_common_kwargs(spec),
    )


register_protocol(
    "partial-allreduce",
    _build_partial_allreduce,
    summary="Prague-style partial all-reduce: randomized conflict-free "
    "groups, group-local barriers only",
    paper="Luo, He, Zhuo, Qian — arXiv:1909.08029",
    aliases=("prague",),
    elastic=True,  # rounds partition the live member set only
)
