"""Momentum-tracking gossip: heterogeneity-robust momentum for AD-PSGD.

Plain worker-local momentum amplifies heterogeneity in decentralized
training: each worker's momentum buffer accumulates its *own* biased
gradient direction, so replicas drift apart.  Two published corrections
are implemented here on top of the AD-PSGD active/passive gossip
pattern (:class:`~repro.baselines.adpsgd.ADPSGDCluster`):

* ``momentum_mode="tracking"`` — *Momentum Tracking* [Takezawa et al.,
  arXiv:2209.15505]: momentum buffers are gossip-averaged alongside the
  parameters, so every buffer tracks an estimate of the *global*
  average gradient direction rather than the worker-local one.  The
  gossip payload doubles (parameters + momentum), which the link model
  charges for — the accuracy/bandwidth trade-off the comparison figure
  shows.
* ``momentum_mode="quasi-global"`` — *Quasi-Global Momentum* [Lin et
  al., arXiv:2102.04761]: nothing extra is communicated; each worker
  re-estimates the global direction from its own parameter displacement
  across the gossip + local step and applies momentum to that.

Registered as protocol ``"momentum-tracking"``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.baselines.adpsgd import ADPSGDCluster
from repro.graphs.topology import Topology
from repro.ml.data import Batcher
from repro.ml.optim import SGD
from repro.protocols.base import ProtocolRuntime
from repro.protocols.registry import register_protocol, spec_common_kwargs
from repro.sim.resources import Resource

MOMENTUM_MODES = ("tracking", "quasi-global")


class MomentumTrackingCluster(ADPSGDCluster):
    """AD-PSGD gossip with heterogeneity-robust momentum.

    Args:
        topology: Bipartite gossip graph (same constraint as AD-PSGD).
        momentum_mode: ``"tracking"`` (gossip-averaged momentum buffers)
            or ``"quasi-global"`` (displacement-estimated momentum,
            no extra traffic).
        beta: Momentum coefficient; defaults to the optimizer
            prototype's momentum (the workload's 0.9).
        Remaining arguments: see
            :class:`~repro.baselines.adpsgd.ADPSGDCluster`.
    """

    protocol = "momentum-tracking"
    #: The momentum math plugs into ADPSGD's shared ``_round`` hook, so
    #: both its static and elastic (leave/join/rewire) loops drive it;
    #: momentum buffers are re-synced from the sponsor on join.
    elastic = True

    def __init__(
        self,
        topology: Topology,
        model_factory,
        dataset,
        optimizer: Optional[SGD] = None,
        momentum_mode: str = "tracking",
        beta: Optional[float] = None,
        links=None,
        compute_model=None,
        batch_size: int = 32,
        max_iter: int = 100,
        seed: int = 0,
        update_size: Optional[float] = None,
        evaluate: bool = True,
        trace_channels=None,
        churn=None,
        compression=None,
    ) -> None:
        if momentum_mode not in MOMENTUM_MODES:
            raise ValueError(
                f"unknown momentum_mode {momentum_mode!r}; choose from "
                f"{MOMENTUM_MODES}"
            )
        super().__init__(
            topology=topology,
            model_factory=model_factory,
            dataset=dataset,
            optimizer=optimizer,
            links=links,
            compute_model=compute_model,
            batch_size=batch_size,
            max_iter=max_iter,
            seed=seed,
            update_size=update_size,
            evaluate=evaluate,
            trace_channels=trace_channels,
            churn=churn,
            compression=compression,
        )
        self.momentum_mode = momentum_mode
        self.beta = (
            float(beta) if beta is not None else self.optimizer_proto.momentum
        )
        self.weight_decay = self.optimizer_proto.weight_decay
        self._lr = self.optimizer_proto.schedule

    def _gossip_vectors(self) -> float:
        """Tracking mode ships two vectors (parameters + momentum); the
        shared :func:`~repro.net.message.payload_bytes` pricing doubles
        the wire accordingly."""
        if self.momentum_mode == "tracking":
            return 2.0
        return 1.0

    def _average_state(
        self, wid: int, partner: int, params: Dict[int, np.ndarray]
    ) -> None:
        """Average parameters — and, in tracking mode, momentum too.

        Compressed runs ship the momentum buffer through its own
        CHOCO reference channel (stream ``"momentum"``): sharing the
        params channel would corrupt both references.
        """
        super()._average_state(wid, partner, params)
        if self.momentum_mode == "tracking":
            momentum = self._momentum
            compressors = getattr(self, "_momentum_compressors", None)
            if compressors is None or compressors[wid] is None:
                mean_u = 0.5 * (momentum[wid] + momentum[partner])
                momentum[wid] = mean_u.copy()
                momentum[partner] = mean_u.copy()
                return
            _, recon_wid = compressors[wid].encode_state(momentum[wid])
            _, recon_partner = compressors[partner].encode_state(
                momentum[partner]
            )
            momentum[wid] = 0.5 * (momentum[wid] + recon_partner)
            momentum[partner] = 0.5 * (recon_wid + momentum[partner])

    def _resync_joiner(
        self, params: Dict[int, np.ndarray], wid: int, active
    ) -> Optional[int]:
        """A joiner copies the sponsor's momentum buffer alongside its
        parameters: a stale (or zeroed) buffer would inject the joiner's
        dark-period direction estimate into the tracked global one.  In
        tracking mode the payload already doubles via
        :meth:`gossip_payload`, which prices the extra buffer."""
        sponsor = super()._resync_joiner(params, wid, active)
        if sponsor is not None:
            self._momentum[wid] = self._momentum[sponsor].copy()
        return sponsor

    # ------------------------------------------------------------------
    # The momentum round (plugs into ADPSGD's static + elastic loops)
    # ------------------------------------------------------------------
    def _round(
        self,
        wid: int,
        k: int,
        runtime: ProtocolRuntime,
        params: Dict[int, np.ndarray],
        locks: Dict[int, Resource],
        model,
        optimizer: SGD,
        batcher: Batcher,
        gossip_count: List[int],
        rng,
        is_active: bool,
        partners: List[int],
    ):
        """Generator: one momentum-gossip iteration.

        Overrides ADPSGD's plain-momentum round; because this is the
        shared per-iteration hook, the inherited static and elastic
        worker loops both drive it and cannot drift apart."""
        env = runtime.env
        beta = self.beta
        momentum = self._momentum
        tracking = self.momentum_mode == "tracking"

        start = env.now
        x_round_start = params[wid].copy()
        runtime.gap.record(wid, k)
        model.set_params(params[wid])
        xb, yb = batcher.next_batch()
        loss, grad = model.loss_and_grad(xb, yb)
        yield env.timeout(self.compute_model.duration(wid, k))
        grad = np.asarray(grad, dtype=np.float64)
        if self.weight_decay > 0.0:
            grad = grad + self.weight_decay * params[wid]

        if is_active and partners:
            # Atomic averaging with a random passive neighbor; in
            # tracking mode the momentum buffers ride along (see
            # _average_state), at double payload.  Under churn, a
            # partner that departed mid-compute is skipped.
            partner = int(partners[rng.integers(0, len(partners))])
            if self._membership is None or self._membership.is_active(
                partner
            ):
                yield from self._gossip(
                    runtime, wid, partner, params, locks, gossip_count
                )

        lr = self._lr(k)
        if tracking:
            # Momentum Tracking: buffers approximate the *global*
            # gradient direction because gossip keeps mixing them.
            momentum[wid] = beta * momentum[wid] + grad
            params[wid] = params[wid] - lr * momentum[wid]
        else:
            # Quasi-global: apply momentum from the previous global
            # direction estimate, then refresh the estimate from the
            # realized displacement (gossip + local step).
            params[wid] = params[wid] - lr * (grad + beta * momentum[wid])
            momentum[wid] = beta * momentum[wid] + (1.0 - beta) * (
                (x_round_start - params[wid]) / lr
            )

        runtime.tracer.log(f"loss/{wid}", env.now, loss)
        runtime.tracer.log(f"duration/{wid}", env.now, env.now - start)

    # ------------------------------------------------------------------
    # ProtocolCluster hooks
    # ------------------------------------------------------------------
    def _start(self, runtime: ProtocolRuntime) -> None:
        dim = runtime.models[0].get_params().shape
        self._momentum: Dict[int, np.ndarray] = {
            wid: np.zeros(dim) for wid in range(self.n_workers)
        }
        self._momentum_compressors = [
            self._stream_compressor(runtime, wid, stream="momentum")
            for wid in range(self.n_workers)
        ]
        super()._start(runtime)

    def _config_description(self) -> str:
        return (
            f"momentum-tracking gossip ({self.momentum_mode}, "
            f"beta={self.beta:g}), gossips={self._gossip_count[0]}"
        )


def _build_momentum_tracking(spec) -> MomentumTrackingCluster:
    return MomentumTrackingCluster(
        topology=spec.topology,
        links=spec.scenario_links(),
        momentum_mode=spec.momentum_mode,
        churn=getattr(spec.built_scenario(), "churn", None),
        **spec_common_kwargs(spec),
    )


register_protocol(
    "momentum-tracking",
    _build_momentum_tracking,
    summary="Gossip SGD with heterogeneity-robust momentum "
    "(momentum tracking or quasi-global)",
    paper="Takezawa et al. — arXiv:2209.15505; Lin et al. — "
    "arXiv:2102.04761",
    elastic=True,  # inherits ADPSGD's lifecycle; momentum re-synced on join
)
