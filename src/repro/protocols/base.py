"""Shared scaffolding every training protocol builds on.

A *protocol* in this repository is a way of coordinating ``n`` model
replicas that train on the same dataset: Hop's bounded-gap queues, a
parameter server, ring all-reduce, gossip variants, partial
all-reduce...  All of them share the same simulation skeleton:

1. build one deterministic model replica per worker (identical ``p0``),
2. wire protocol-specific coordination state (queues, locks, NICs),
3. spawn one simulated process per worker (plus any servers) in a
   :class:`~repro.sim.engine.Environment`,
4. run the event loop to completion,
5. average/evaluate the final parameters and package every measurement
   as a :class:`TrainingRun`.

:class:`ProtocolCluster` owns steps 1, 4 and 5 (and the metrics/run
summary conventions); subclasses implement step 2/3 in :meth:`_start`
and describe themselves through small hooks.  The
:mod:`repro.protocols.registry` maps protocol names to builders so the
harness and CLI can construct any registered cluster from an
:class:`~repro.harness.spec.ExperimentSpec`.

To add a new protocol, subclass :class:`ProtocolCluster`, implement
``_start`` (spawn processes that eventually set ``runtime.done``), the
description hooks, and register a builder — see
``docs/ARCHITECTURE.md`` for a worked example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.graphs.spectral import consensus_distance
from repro.hetero.compute import ComputeModel
from repro.ml.data import Batcher, Dataset
from repro.ml.metrics import smooth_series
from repro.ml.optim import SGD
from repro.net.message import params_message_size, payload_bytes
from repro.sim.engine import Environment
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - import-cycle guard for type hints
    from repro.core.gap import GapTracker


#: Tracer channels every TrainingRun consumer depends on: loss curves,
#: per-iteration durations (non-hop worker stats) and the crash
#: lifecycle.  Passing this as ``trace_channels`` keeps results intact
#: while the remaining per-iteration diagnostics (iter/, jump/,
#: finished/) become free no-ops.
LIGHT_TRACE = ("loss", "duration", "crashed", "resynced", "restarted")


class DeadlockError(RuntimeError):
    """The simulation ran out of events before all workers finished.

    Attributes:
        stuck: ``(worker_id, iteration)`` pairs for unfinished workers.
    """

    def __init__(self, message: str, stuck=None) -> None:
        super().__init__(message)
        self.stuck = list(stuck or [])


@dataclass
class TrainingRun:
    """Everything measured during one training run."""

    protocol: str
    config_description: str
    topology_name: str
    n_workers: int
    max_iter: int
    wall_time: float
    tracer: Tracer
    gap: GapTracker
    iterations_completed: List[int]
    iterations_skipped: List[int]
    messages_sent: int
    bytes_sent: float
    final_params: np.ndarray
    final_loss: Optional[float] = None
    final_accuracy: Optional[float] = None
    consensus: float = 0.0
    worker_stats: List[dict] = field(default_factory=list)
    #: Crash/recovery lifecycle events (scenario fault injection):
    #: ``{"kind": "crashed"|"restarted"|"resynced", "worker", "time",
    #: "iteration"}``, time-ordered.
    fault_events: List[dict] = field(default_factory=list)
    #: Messages lost (and retransmitted) by the network fault layer,
    #: plus in-flight messages dropped at departed membership members.
    messages_dropped: int = 0
    #: Payload bytes of in-flight messages dropped by membership
    #: departures.  ``bytes_sent`` counts *delivered* payload only;
    #: ``bytes_sent + bytes_dropped`` is everything launched.
    bytes_dropped: float = 0.0
    #: Control-plane bytes (ACKs, tokens, RPCs): charged for timing but
    #: kept out of the payload-volume stats.
    control_bytes: float = 0.0
    #: Extra bytes burned by lost-and-retransmitted attempts.
    bytes_retransmitted: float = 0.0
    #: Legacy aggregate: every byte offered to the fabric (payload and
    #: control, delivered or not), in launch order — the quantity the
    #: recorded golden-stats cells pin under their ``bytes_sent`` key.
    #: For protocols without a Network object this equals
    #: ``bytes_sent``.
    bytes_attempted: float = 0.0
    #: Membership-plane lifecycle (elastic runs under churn scenarios):
    #: ``{"kind": "join"|"leave"|"rewire", "worker", "time",
    #: "iteration", "epoch", ...}``, enactment-ordered; rewire records
    #: additionally carry ``edges_added`` / ``edges_removed`` /
    #: ``rewire_cost`` / ``spectral_gap`` / ``n_active``.
    membership_events: List[dict] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Convergence analysis
    # ------------------------------------------------------------------
    def loss_series(self) -> Tuple[np.ndarray, np.ndarray]:
        """All per-iteration training losses, merged and time-sorted."""
        pairs: List[Tuple[float, float]] = []
        for wid in range(self.n_workers):
            pairs.extend(self.tracer.raw(f"loss/{wid}"))
        pairs.sort(key=lambda tv: tv[0])
        if not pairs:
            return np.array([]), np.array([])
        times = np.array([t for t, _ in pairs])
        losses = np.array([v for _, v in pairs])
        return times, losses

    def smoothed_loss_series(
        self, window: int = 32
    ) -> Tuple[np.ndarray, np.ndarray]:
        times, losses = self.loss_series()
        return times, smooth_series(losses, window)

    def loss_vs_steps(self, window: int = 32) -> Tuple[np.ndarray, np.ndarray]:
        """Mean loss per global step index (Figure 15's x-axis)."""
        _, losses = self.loss_series()
        return np.arange(losses.size), smooth_series(losses, window)

    def time_to_loss(self, target: float, window: int = 32) -> float:
        """First time the smoothed training loss reaches ``target``."""
        times, losses = self.smoothed_loss_series(window)
        below = np.nonzero(losses <= target)[0]
        if below.size == 0:
            return float("inf")
        return float(times[below[0]])

    def iteration_rate(self) -> float:
        """Aggregate completed iterations per simulated second."""
        total = sum(self.iterations_completed)
        if self.wall_time <= 0:
            return 0.0
        return total / self.wall_time

    def mean_iteration_duration(self) -> float:
        """Average per-iteration wall time across workers."""
        durations = [
            stats["iteration_duration_mean"] for stats in self.worker_stats
        ]
        return float(np.mean(durations)) if durations else 0.0

    def summary(self) -> str:
        lines = [
            f"protocol={self.protocol} ({self.config_description})",
            f"topology={self.topology_name} workers={self.n_workers}",
            f"wall_time={self.wall_time:.3f}s "
            f"rate={self.iteration_rate():.2f} iter/s",
            f"max_gap={self.gap.max_observed():g} "
            f"messages={self.messages_sent}",
        ]
        if self.final_loss is not None:
            lines.append(
                f"final_loss={self.final_loss:.4f} "
                f"final_accuracy={self.final_accuracy:.3f}"
            )
        if self.fault_events:
            summarized = ", ".join(
                f"{event['kind']} w{event['worker']}@{event['iteration']}"
                for event in self.fault_events
            )
            lines.append(f"faults: {summarized}")
        if self.messages_dropped:
            lines.append(f"messages_dropped={self.messages_dropped}")
        if self.membership_events:
            transitions = [
                f"{event['kind']} w{event['worker']}@{event['iteration']}"
                for event in self.membership_events
                if event["kind"] != "rewire"
            ]
            epochs = max(event["epoch"] for event in self.membership_events)
            lines.append(
                f"membership: {', '.join(transitions)} "
                f"({epochs} rewire epoch(s))"
            )
        return "\n".join(lines)


@dataclass
class ProtocolRuntime:
    """Per-run mutable state shared between the base class and workers.

    Created fresh at the top of :meth:`ProtocolCluster.run`; protocol
    processes record progress here (``done``, message counters) and the
    base class packages it into the :class:`TrainingRun`.
    """

    env: Environment
    tracer: Tracer
    gap: GapTracker
    models: List[object]
    update_size: float
    done: np.ndarray
    #: ``[messages_sent, bytes_sent]`` — plain list so simulated
    #: processes can mutate it in place.
    traffic: List[float] = field(default_factory=lambda: [0, 0.0])

    def count_traffic(self, messages: int, bytes_sent: float) -> None:
        """Record protocol traffic (used when no Network object exists)."""
        self.traffic[0] += messages
        self.traffic[1] += bytes_sent


class ProtocolCluster:
    """Base class for build-and-run training deployments.

    Owns everything protocols share — deterministic model replication,
    per-worker data streams, final-model evaluation, worker statistics
    and :class:`TrainingRun` packaging — so a concrete protocol only
    implements its coordination logic.

    Args:
        n_workers: Number of model replicas / simulated workers.
        model_factory: ``f(rng) -> Model``; called once per worker with
            identically seeded streams so all replicas start from the
            same parameters (the paper's shared ``p0``).
        dataset: Train/test data; every worker samples the full training
            split with its own RNG stream.
        optimizer: SGD prototype; cloned per worker (worker-local
            state).
        batch_size: Minibatch size per worker per iteration.
        compute_model: Per-iteration compute-time oracle (heterogeneity
            lives here).
        max_iter: Iterations per worker.
        seed: Master seed for all randomness.
        update_size: Message size of one parameter update; derived from
            the model dimension when omitted.
        evaluate: Whether to evaluate the averaged final model on the
            test split.
        compression: Optional
            :class:`~repro.compression.CompressionSpec`.  When set,
            each worker compresses its outgoing updates through a
            per-(worker, stream) error-feedback compressor
            (:meth:`_stream_compressor`) and every send is priced at
            the compressed wire size (:meth:`_wire_size`).  ``None``
            keeps the dense fast path bit-identically.

    Subclass contract:

    * :meth:`_start` — build protocol state and spawn processes; every
      worker must set ``runtime.done[wid] = True`` when it finishes.
    * :meth:`_config_description` / :meth:`_topology_name` — labels for
      reports.
    * :meth:`_final_param_stack` — per-worker final parameter matrix
      (single-row for centralized protocols).
    * Optional overrides: :meth:`_message_totals`,
      :meth:`_collect_worker_stats`, :meth:`_iterations_completed`,
      :meth:`_iterations_skipped`, :meth:`_check_complete`.
    """

    #: Registry name reported in :attr:`TrainingRun.protocol`;
    #: subclasses override (or set per-instance for multi-mode
    #: protocols like the parameter server).
    protocol: str = "abstract"

    #: Whether this protocol survives membership churn (dynamic worker
    #: join/leave through :mod:`repro.membership`).  Elastic protocols
    #: accept a :class:`~repro.membership.ChurnPlan` and implement the
    #: join/leave lifecycle — the default being "drain, rewire, re-sync
    #: params from neighbors": the leaver stops participating and the
    #: membership runtime repairs the graph and any pending waits; a
    #: joiner copies parameters from a live member before its first
    #: iteration (:meth:`_resync_joiner` is the shared default).
    #: Non-elastic protocols (PS, global all-reduce: a barrier or a
    #: central server has no meaningful partial membership) keep their
    #: static behavior bit-identically and reject churn scenarios at
    #: build time.
    elastic: bool = False

    #: Sharded-engine hook points (``repro.harness.sharded`` sets these
    #: per instance between build and :meth:`run`).  ``_post_start_hook
    #: (runtime)`` runs after :meth:`_start` — before the first event —
    #: so a shard can repoint workers at the shared-memory parameter
    #: plane; ``_drive_hook(env)`` replaces the plain ``env.run()``
    #: with the windowed conservative drive.  Both default to ``None``:
    #: un-sharded runs take the exact historical path.
    _post_start_hook = None
    _drive_hook = None

    def __init__(
        self,
        n_workers: int,
        model_factory: Callable[[np.random.Generator], object],
        dataset: Dataset,
        optimizer: Optional[SGD] = None,
        batch_size: int = 32,
        compute_model: Optional[ComputeModel] = None,
        max_iter: int = 100,
        seed: int = 0,
        update_size: Optional[float] = None,
        evaluate: bool = True,
        trace_channels: Optional[Tuple[str, ...]] = None,
        compression=None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("need at least one worker")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        self.n_workers = n_workers
        self.model_factory = model_factory
        self.dataset = dataset
        self.optimizer_proto = optimizer or SGD(lr=0.1, momentum=0.9)
        self.batch_size = batch_size
        self.max_iter = max_iter
        self.seed = seed
        self.streams = RngStreams(seed)
        self.compute_model = compute_model or ComputeModel(
            base_time=0.1, n_workers=n_workers
        )
        self._update_size = update_size
        self.evaluate = evaluate
        self.trace_channels = (
            tuple(trace_channels) if trace_channels is not None else None
        )
        if compression is not None and compression.name == "none":
            # CompressionSpec("none") IS the dense path: normalizing
            # here keeps every `if self.compression is None` branch —
            # and therefore bitwise behavior — identical to no spec.
            compression = None
        self.compression = compression
        #: Per-(worker, stream) compressor instances; built lazily so
        #: the model dim/dtype are known (see :meth:`_stream_compressor`).
        self._compressors: Dict[tuple, object] = {}
        self._wire_ratio_cached: Optional[float] = None

    # ------------------------------------------------------------------
    # Construction helpers (shared by every protocol)
    # ------------------------------------------------------------------
    def _build_models(self) -> List[object]:
        """One model replica per worker, all starting from the same p0."""
        models = []
        for wid in range(self.n_workers):
            # Same derived stream -> identical initialization (p0).
            models.append(self.model_factory(self.streams.fresh("model-init")))
        p0 = models[0].get_params()
        for model in models[1:]:
            if not np.allclose(model.get_params(), p0):
                raise ValueError(
                    "model_factory must be deterministic given its rng; "
                    "worker replicas started from different parameters"
                )
        return models

    def _make_batcher(self, wid: int) -> Batcher:
        """Worker ``wid``'s private minibatch stream."""
        return Batcher(
            self.dataset.x_train,
            self.dataset.y_train,
            self.batch_size,
            self.streams.stream("data", wid),
        )

    def _resolve_update_size(self, models: List[object]) -> float:
        if self._update_size is not None:
            return self._update_size
        return params_message_size(models[0].dim)

    # ------------------------------------------------------------------
    # Compression plane (shared by every protocol)
    # ------------------------------------------------------------------
    def _stream_compressor(
        self, runtime: ProtocolRuntime, wid: int, stream: str = "params"
    ):
        """The (worker, stream) error-feedback compressor, or ``None``.

        One instance per logical vector stream: residual/reference
        state must never be shared across workers, and a protocol that
        ships two distinct vectors (momentum-tracking's momentum
        buffer) uses a second stream.  Seeded schemes derive their rng
        from ``(experiment seed, wid, stream)`` so same-seed runs
        replay bit-identically.
        """
        if self.compression is None:
            return None
        key = (wid, stream)
        compressor = self._compressors.get(key)
        if compressor is None:
            from repro.compression import build_compressor

            reference = runtime.models[0].get_params()
            compressor = build_compressor(
                self.compression,
                dim=reference.size,
                dtype=reference.dtype,
                seed=[self.seed, wid, *stream.encode()],
            )
            self._compressors[key] = compressor
        return compressor

    def _wire_ratio(self, runtime: ProtocolRuntime) -> float:
        """Compressed-over-dense byte ratio of one update (1.0 dense)."""
        if self.compression is None:
            return 1.0
        if self._wire_ratio_cached is None:
            # The ratio is a pure function of dim/dtype/knobs, so any
            # worker's instance reports it; worker 0's params stream
            # exists in every compressed protocol.
            self._wire_ratio_cached = self._stream_compressor(
                runtime, 0
            ).wire_ratio()
        return self._wire_ratio_cached

    def _wire_size(
        self, runtime: ProtocolRuntime, vectors: float = 1.0
    ) -> float:
        """Wire size of one update message — the shared pricing path.

        Every protocol's send path routes through this (and so through
        :func:`repro.net.message.payload_bytes`); with no compression
        and one vector the result is bitwise ``update_size``.
        """
        return payload_bytes(
            runtime.update_size, self._wire_ratio(runtime), vectors
        )

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _start(self, runtime: ProtocolRuntime) -> None:
        """Build coordination state and spawn all simulated processes."""
        raise NotImplementedError

    def _config_description(self) -> str:
        """Human-readable configuration summary for reports."""
        raise NotImplementedError

    def _topology_name(self) -> str:
        """Communication-shape label for reports."""
        raise NotImplementedError

    def _final_param_stack(self, runtime: ProtocolRuntime) -> np.ndarray:
        """``(n_replicas, dim)`` final parameters (may be single-row)."""
        raise NotImplementedError

    def _check_complete(self, runtime: ProtocolRuntime) -> None:
        """Raise :class:`DeadlockError` unless every worker finished."""
        if not runtime.done.all():
            stuck = [int(w) for w in np.nonzero(~runtime.done)[0]]
            raise DeadlockError(
                f"{self.protocol}: {len(stuck)} workers never finished "
                f"(wids {stuck}). This indicates a protocol deadlock or "
                "an unsatisfiable advance condition.",
                stuck=stuck,
            )

    def _message_totals(self, runtime: ProtocolRuntime) -> Tuple[int, float]:
        """``(messages_sent, bytes_sent)`` for the whole run."""
        return int(runtime.traffic[0]), float(runtime.traffic[1])

    def _byte_stats(
        self, runtime: ProtocolRuntime, bytes_sent: float
    ) -> Dict[str, float]:
        """The byte-accounting split beyond delivered payload bytes.

        Protocols that track traffic analytically (or through
        :meth:`ProtocolRuntime.count_traffic`) count only realized
        exchanges, so everything is delivered and ``bytes_attempted``
        collapses onto ``bytes_sent``.  Network-backed clusters
        override this with the fabric's real counters.
        """
        return {
            "bytes_dropped": 0.0,
            "control_bytes": 0.0,
            "bytes_retransmitted": 0.0,
            "bytes_attempted": bytes_sent,
        }

    def _messages_dropped(self, runtime: ProtocolRuntime) -> int:
        """Messages lost to fault injection (protocols with a Network)."""
        return 0

    #: Tracer-key prefixes surfaced as lifecycle fault events, in
    #: causal order (a restart completes *after* the re-sync it did) —
    #: the index breaks same-timestamp ties in the sorted event list.
    FAULT_EVENT_KINDS = ("crashed", "resynced", "restarted")

    def _collect_fault_events(self, runtime: ProtocolRuntime) -> List[dict]:
        """Crash/recovery events logged as ``<kind>/<wid>`` traces."""
        events = []
        for key in runtime.tracer.keys():
            kind, _, rest = key.partition("/")
            if kind not in self.FAULT_EVENT_KINDS or not rest.isdigit():
                continue
            for time, value in runtime.tracer.raw(key):
                events.append(
                    {
                        "kind": kind,
                        "worker": int(rest),
                        "time": float(time),
                        "iteration": int(value) if value is not None else -1,
                    }
                )
        events.sort(
            key=lambda event: (
                event["time"],
                event["worker"],
                self.FAULT_EVENT_KINDS.index(event["kind"]),
            )
        )
        return events

    def _collect_membership_events(self, runtime: ProtocolRuntime) -> List[dict]:
        """Join/leave/rewire records from the membership runtime."""
        membership = getattr(self, "_membership", None)
        return list(membership.events) if membership is not None else []

    def _resync_joiner(
        self, params: Dict[int, np.ndarray], wid: int, active
    ) -> Optional[int]:
        """Default join lifecycle: copy params from the lowest-id live
        member (the sponsor).  Returns the sponsor, or ``None`` when no
        other member exists (the joiner keeps its own state)."""
        sponsors = [w for w in sorted(active) if w != wid]
        if not sponsors:
            return None
        params[wid] = params[sponsors[0]].copy()
        return sponsors[0]

    def _resync_payload(self, update_size: float) -> float:
        """Bytes a joiner's re-sync transfers (protocols may enlarge)."""
        return update_size

    def _join_resync(
        self, runtime: ProtocolRuntime, wid: int, params: Dict[int, np.ndarray]
    ):
        """Generator: the default "re-sync params from neighbors" join
        step for elastic protocols with a params dict and a link model —
        copy the sponsor's parameters, paying one payload round trip."""
        sponsor = self._resync_joiner(
            params, wid, self._membership.view.active
        )
        if sponsor is not None:
            payload = self._resync_payload(runtime.update_size)
            yield runtime.env.timeout(
                self.links.round_trip(sponsor, wid, payload)
            )
            runtime.count_traffic(2, payload)

    def _iterations_completed(self, runtime: ProtocolRuntime) -> List[int]:
        return [self.max_iter] * self.n_workers

    def _iterations_skipped(self, runtime: ProtocolRuntime) -> List[int]:
        return [0] * self.n_workers

    def _consensus(self, final_stack: np.ndarray) -> float:
        return consensus_distance(final_stack)

    def _collect_worker_stats(self, runtime: ProtocolRuntime) -> List[dict]:
        """Default stats from the ``duration/<wid>`` trace series."""
        stats = []
        completed = self._iterations_completed(runtime)
        for wid in range(self.n_workers):
            values = [v for _, v in runtime.tracer.raw(f"duration/{wid}")]
            stats.append(
                {
                    "wid": wid,
                    "iterations_completed": completed[wid],
                    "iteration_duration_mean": (
                        float(np.mean(values)) if values else 0.0
                    ),
                    "iteration_duration_max": (
                        float(np.max(values)) if values else 0.0
                    ),
                    "recv_wait_mean": 0.0,
                    "loss_mean": 0.0,
                }
            )
        return stats

    # ------------------------------------------------------------------
    # The shared run loop
    # ------------------------------------------------------------------
    def run(self) -> TrainingRun:
        """Build the deployment, simulate it, and package the results."""
        # Imported here, not at module scope: repro.core.cluster subclasses
        # ProtocolCluster, so importing repro.core while this module loads
        # would close an import cycle.
        from repro.core.gap import GapTracker

        env = Environment()
        # Time-varying link models (scenario link flaps) need the
        # simulated clock; bind it before any process consults a link.
        links = getattr(self, "links", None)
        if callable(getattr(links, "bind_clock", None)):
            links.bind_clock(lambda: env.now)
        models = self._build_models()
        runtime = ProtocolRuntime(
            env=env,
            tracer=Tracer(channels=self.trace_channels),
            gap=GapTracker(self.n_workers),
            models=models,
            update_size=self._resolve_update_size(models),
            done=np.zeros(self.n_workers, dtype=bool),
        )
        self._start(runtime)
        if self._post_start_hook is not None:
            self._post_start_hook(runtime)
        if self._drive_hook is None:
            env.run()
        else:
            self._drive_hook(env)
        self._check_complete(runtime)

        final_stack = np.atleast_2d(self._final_param_stack(runtime))
        final_params = final_stack.mean(axis=0)
        final_loss = final_accuracy = None
        if self.evaluate:
            models[0].set_params(final_params)
            final_loss, final_accuracy = models[0].evaluate(
                self.dataset.x_test, self.dataset.y_test
            )

        messages_sent, bytes_sent = self._message_totals(runtime)
        byte_stats = self._byte_stats(runtime, bytes_sent)
        return TrainingRun(
            protocol=self.protocol,
            config_description=self._config_description(),
            topology_name=self._topology_name(),
            n_workers=self.n_workers,
            max_iter=self.max_iter,
            wall_time=env.now,
            tracer=runtime.tracer,
            gap=runtime.gap,
            iterations_completed=self._iterations_completed(runtime),
            iterations_skipped=self._iterations_skipped(runtime),
            messages_sent=messages_sent,
            bytes_sent=bytes_sent,
            final_params=final_params,
            final_loss=final_loss,
            final_accuracy=final_accuracy,
            consensus=self._consensus(final_stack),
            worker_stats=self._collect_worker_stats(runtime),
            fault_events=self._collect_fault_events(runtime),
            messages_dropped=self._messages_dropped(runtime),
            membership_events=self._collect_membership_events(runtime),
            **byte_stats,
        )
