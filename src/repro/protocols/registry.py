"""The protocol registry: name -> cluster builder.

Every training protocol in the repository registers itself here under a
stable name (``"hop"``, ``"adpsgd"``, ``"partial-allreduce"``, ...).
The harness (:func:`repro.harness.spec.run_spec`), the CLI
(``python -m repro train --protocol``) and the examples all resolve
protocols through this registry instead of hard-coding cluster classes,
so adding a protocol is: subclass
:class:`~repro.protocols.base.ProtocolCluster`, write a builder, call
:func:`register_protocol`.

Builders receive the full :class:`~repro.harness.spec.ExperimentSpec`
and return an un-run cluster; :func:`spec_common_kwargs` converts the
spec's workload/heterogeneity fields into the constructor arguments
every :class:`~repro.protocols.base.ProtocolCluster` accepts.

Registration of the built-in protocols is lazy: the concrete protocol
modules (``repro.core.cluster``, ``repro.baselines.*``,
``repro.protocols.partial_allreduce``, ...) register themselves when
imported, and :func:`_ensure_builtin_protocols` imports them on first
lookup.  This keeps ``import repro.protocols`` free of import cycles.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.harness.spec import ExperimentSpec
    from repro.protocols.base import ProtocolCluster


#: Modules that register the built-in protocols as an import side effect.
_BUILTIN_MODULES = (
    "repro.core.cluster",
    "repro.baselines.ps",
    "repro.baselines.allreduce",
    "repro.baselines.adpsgd",
    "repro.protocols.partial_allreduce",
    "repro.protocols.momentum_tracking",
)


@dataclass(frozen=True)
class ProtocolInfo:
    """One registered protocol.

    Attributes:
        name: Canonical registry name (the CLI / spec spelling).
        builder: ``f(spec) -> ProtocolCluster`` (un-run).
        summary: One-line description for ``--help`` and docs tables.
        paper: Citation for the protocol's source.
        aliases: Alternative names resolving to the same builder.
        native_faults: The builder wires scenario crash events into the
            cluster itself (workers enact crash/restart natively), so
            :func:`spec_common_kwargs` must NOT also fold the downtime
            into the compute model.  Set this on registration whenever
            the builder passes ``crash_events`` through — otherwise the
            outage is charged twice.
        elastic: The builder wires membership churn plans
            (:class:`~repro.membership.ChurnPlan`) into the cluster, so
            the protocol survives dynamic worker join/leave.
            Non-elastic protocols reject churn scenarios at build time
            (:func:`build_cluster`) and keep static behavior
            bit-identically.
    """

    name: str
    builder: Callable[["ExperimentSpec"], "ProtocolCluster"]
    summary: str = ""
    paper: str = ""
    aliases: tuple = ()
    native_faults: bool = False
    elastic: bool = False


_REGISTRY: Dict[str, ProtocolInfo] = {}
_ALIASES: Dict[str, str] = {}
_builtins_loaded = False


def register_protocol(
    name: str,
    builder: Callable[["ExperimentSpec"], "ProtocolCluster"],
    summary: str = "",
    paper: str = "",
    aliases: tuple = (),
    native_faults: bool = False,
    elastic: bool = False,
) -> ProtocolInfo:
    """Register (or re-register) a protocol builder under ``name``."""
    info = ProtocolInfo(
        name=name,
        builder=builder,
        summary=summary,
        paper=paper,
        aliases=tuple(aliases),
        native_faults=native_faults,
        elastic=elastic,
    )
    _REGISTRY[name] = info
    for alias in info.aliases:
        _ALIASES[alias] = name
    return info


def _ensure_builtin_protocols() -> None:
    """Import every module that registers a built-in protocol."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    # Only after every import succeeded: a transient failure above must
    # surface again on the next lookup, not leave a half-filled registry.
    _builtins_loaded = True


def registered_protocols(include_aliases: bool = False) -> List[str]:
    """Sorted names of every registered protocol."""
    _ensure_builtin_protocols()
    names = set(_REGISTRY)
    if include_aliases:
        names.update(_ALIASES)
    return sorted(names)


def get_protocol(name: str) -> ProtocolInfo:
    """Resolve ``name`` (or an alias) to its :class:`ProtocolInfo`.

    Raises:
        ValueError: naming every registered protocol, so callers (and
            CLI users) see what *is* available.
    """
    _ensure_builtin_protocols()
    canonical = _ALIASES.get(name, name)
    if canonical not in _REGISTRY:
        raise ValueError(
            f"unknown protocol {name!r}; registered protocols: "
            f"{', '.join(registered_protocols(include_aliases=True))}"
        )
    return _REGISTRY[canonical]


def protocol_table() -> List[dict]:
    """``[{name, summary, paper, elastic}, ...]`` rows for docs/CLI."""
    _ensure_builtin_protocols()
    return [
        {
            "name": info.name,
            "aliases": "/".join(info.aliases),
            "summary": info.summary,
            "paper": info.paper,
            "elastic": info.elastic,
        }
        for _, info in sorted(_REGISTRY.items())
    ]


def spec_common_kwargs(spec: "ExperimentSpec") -> dict:
    """Constructor kwargs shared by every :class:`ProtocolCluster`.

    Heterogeneity comes from the spec's *scenario* (the legacy
    ``slowdown`` field converts transparently).  Protocols registered
    with ``native_faults=True`` (hop: its workers enact crash/restart
    events themselves) get the pure slowdown model; for every other
    protocol the crash downtime is composed into the compute model as
    an equivalent stall, so fault scenarios run under the whole
    registry.
    """
    workload = spec.workload
    scenario = spec.built_scenario()
    native_faults = get_protocol(spec.protocol).native_faults

    from repro.hetero.compute import ComputeModel

    compute_model = ComputeModel(
        base_time=workload.base_compute_time,
        n_workers=spec.topology.n,
        slowdown=scenario.compute_slowdown(native_faults=native_faults),
    )
    return dict(
        model_factory=workload.model_factory,
        dataset=workload.dataset,
        optimizer=workload.optimizer_factory(),
        batch_size=workload.batch_size,
        compute_model=compute_model,
        max_iter=spec.max_iter,
        seed=spec.seed,
        update_size=workload.update_size,
        trace_channels=spec.trace_channels,
        compression=spec.compression,
    )


def build_cluster(spec: "ExperimentSpec") -> "ProtocolCluster":
    """Build the (un-run) cluster described by ``spec.protocol``.

    Raises:
        ValueError: When the scenario carries a membership churn plan
            and the protocol is not elastic — a barrier or a central
            server has no meaningful partial membership, so the gate
            fails loudly instead of silently running a static cluster.
    """
    info = get_protocol(spec.protocol)
    churn = getattr(spec.built_scenario(), "churn", None)
    if churn is not None and not churn.empty and not info.elastic:
        raise ValueError(
            f"protocol {spec.protocol!r} is not elastic and cannot run "
            "membership churn scenarios; elastic protocols: "
            f"{', '.join(n for n in registered_protocols() if _REGISTRY[n].elastic)}"
        )
    return info.builder(spec)
