"""Pluggable training protocols: shared scaffolding, registry, variants.

This package is the extension point of the repository.  A *protocol* is
one way of coordinating ``n`` model replicas during training; all of
them — Hop itself, the baselines it is compared against, and the
follow-up protocols — are built on the same base class and resolved by
name through one registry.

Layers:

* :mod:`repro.protocols.base` — :class:`ProtocolCluster` (the shared
  build/simulate/measure skeleton), :class:`TrainingRun` (the result
  record every protocol produces) and :class:`DeadlockError`.
* :mod:`repro.protocols.registry` — name -> builder mapping used by the
  harness, the CLI and the examples.
* :mod:`repro.protocols.partial_allreduce` — Prague-style randomized
  partial all-reduce [Luo et al., arXiv:1909.08029].
* :mod:`repro.protocols.momentum_tracking` — heterogeneity-robust
  momentum on the AD-PSGD gossip pattern [Takezawa et al.,
  arXiv:2209.15505; quasi-global variant: Lin et al., arXiv:2102.04761].

The Hop protocol itself lives in :mod:`repro.core.cluster`, the
parameter server / all-reduce / AD-PSGD baselines in
:mod:`repro.baselines`; each registers itself on import.

Public API::

    from repro.protocols import build_cluster, registered_protocols

    print(registered_protocols())
    # ['adpsgd', 'allreduce', 'hop', 'momentum-tracking', 'notify_ack',
    #  'partial-allreduce', 'ps-async', 'ps-bsp', 'ps-ssp']
    run = build_cluster(spec).run()   # spec: repro.harness.ExperimentSpec

To add a protocol, subclass :class:`ProtocolCluster`, implement
``_start`` plus the description hooks, and call
:func:`register_protocol` — ``docs/ARCHITECTURE.md`` walks through a
complete example.
"""

from repro.protocols.base import (
    DeadlockError,
    ProtocolCluster,
    ProtocolRuntime,
    TrainingRun,
)
from repro.protocols.registry import (
    ProtocolInfo,
    build_cluster,
    get_protocol,
    protocol_table,
    register_protocol,
    registered_protocols,
    spec_common_kwargs,
)

__all__ = [
    "DeadlockError",
    "ProtocolCluster",
    "ProtocolInfo",
    "ProtocolRuntime",
    "TrainingRun",
    "build_cluster",
    "get_protocol",
    "protocol_table",
    "register_protocol",
    "registered_protocols",
    "spec_common_kwargs",
]
