"""The NOTIFY-ACK protocol [Kadav & Kruus 2016], the paper's foil.

Serial computation graph (Figure 2a) plus the backward ACK edge: a
worker may not Send iteration ``k``'s update until every out-going
neighbor has ACKed consumption of iteration ``k-1``'s.  This solves
the mixed-version problem but over-restricts the iteration gap to

    Iter(i) - Iter(j) <= min(len(Path_{j->i}), 2 * len(Path_{i->j}))

(Section 3.3), which is what prevents backup workers and bounded
staleness from helping — the motivation for Hop's queue-based design.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.gap import GapTracker
from repro.core.queues import TokenQueue, UpdateQueue
from repro.core.reducers import mean_reduce
from repro.core.update import Update
from repro.hetero.compute import ComputeModel
from repro.net.message import CONTROL_SIZE
from repro.net.network import Network
from repro.sim.engine import Environment
from repro.sim.trace import StatAccumulator, Tracer


class NotifyAckWorker:
    """One worker running NOTIFY-ACK (serial graph + ACK gating)."""

    def __init__(
        self,
        wid: int,
        env: Environment,
        topology,
        model,
        optimizer,
        batcher,
        compute_model: ComputeModel,
        network: Network,
        update_queues: Dict[int, UpdateQueue],
        ack_queues: Dict[Tuple[int, int], TokenQueue],
        state,
        gap_tracker: GapTracker,
        tracer: Tracer,
        max_iter: int,
        update_size: float,
    ) -> None:
        self.wid = wid
        self.env = env
        self.topology = topology
        self.model = model
        self.optimizer = optimizer
        self.batcher = batcher
        self.compute_model = compute_model
        self.network = network
        self.update_queues = update_queues
        self.ack_queues = ack_queues
        self.state = state
        self.gap_tracker = gap_tracker
        self.tracer = tracer
        self.max_iter = max_iter
        self.update_size = update_size

        self.in_neighbors = topology.in_neighbors(wid, include_self=True)
        self.out_neighbors = topology.out_neighbors(wid, include_self=True)
        self.in_degree = len(self.in_neighbors)
        self._ack_sources = topology.out_neighbors(wid, include_self=False)
        self._ack_targets = topology.in_neighbors(wid, include_self=False)

        self.iterations_completed = 0
        self.iteration_durations = StatAccumulator()
        self.ack_wait = StatAccumulator()
        self.recv_wait = StatAccumulator()
        self.losses = StatAccumulator()
        self.final_params: np.ndarray = model.get_params_copy()
        #: Reusable reduce accumulator (see HopWorker.reduce_scratch).
        self.reduce_scratch = None

    @property
    def update_queue(self) -> UpdateQueue:
        return self.update_queues[self.wid]

    def _send_update(self, params: np.ndarray, iteration: int) -> None:
        # One shared Update for the whole fan-out (receivers only read
        # it; queues track entries by identity).
        update = Update(params.copy(), iteration, self.wid)
        for j in self.out_neighbors:
            if j == self.wid:
                self.update_queue.enqueue(update)
                continue
            self.network.push(
                self.wid,
                j,
                self.update_size,
                update,
                self.update_queues[j].enqueue,
            )

    def _send_acks(self, iteration: int) -> None:
        """NOTIFY consumed -> ACK to every in-coming neighbor."""
        for j in self._ack_targets:
            self.network.push(
                self.wid, j, CONTROL_SIZE, 1, self.ack_queues[(self.wid, j)].put
            )

    def run(self):
        x = self.model.get_params()
        for k in range(self.max_iter):
            start = self.env.now
            self.state.iterations[self.wid] = k
            self.gap_tracker.record(self.wid, k)
            self.tracer.log(f"iter/{self.wid}", start, k)

            # Compute and Apply (serial graph, Figure 2a).
            self.model.set_params(x)
            xb, yb = self.batcher.next_batch()
            loss, grad = self.model.loss_and_grad(xb, yb)
            yield self.env.timeout(self.compute_model.duration(self.wid, k))
            applied = x + self.optimizer.step(x, grad, k)

            # Wait for ACK(k-1) from all out-going neighbors before Send(k).
            ack_start = self.env.now
            acquires = [
                self.ack_queues[(j, self.wid)].acquire(1)
                for j in self._ack_sources
            ]
            if acquires:
                yield self.env.all_of(acquires)
            self.ack_wait.add(self.env.now - ack_start)

            self._send_update(applied, k)

            # Recv + Reduce, then notify consumption with ACK(k).
            recv_start = self.env.now
            updates = yield self.update_queue.dequeue(
                self.in_degree, iteration=k
            )
            self.recv_wait.add(self.env.now - recv_start)
            # In-place accumulate into the reusable scratch; every read
            # of the previous ``x`` (model write, optimizer step, send
            # payload) happened before this point.
            self.reduce_scratch = x = mean_reduce(
                updates, out=self.reduce_scratch
            )
            self._send_acks(k)

            self.tracer.log(f"loss/{self.wid}", self.env.now, loss)
            self.losses.add(loss)
            self.iterations_completed = k + 1
            duration = self.env.now - start
            self.iteration_durations.add(duration)
            self.tracer.log(f"duration/{self.wid}", self.env.now, duration)

        self.final_params = x
        self.state.done[self.wid] = True
        self.tracer.log(f"finished/{self.wid}", self.env.now, self.max_iter)
        return self.iterations_completed

    def __repr__(self) -> str:
        return f"<NotifyAckWorker {self.wid} completed={self.iterations_completed}>"


def build_ack_queues(
    env: Environment, topology
) -> Dict[Tuple[int, int], TokenQueue]:
    """One ACK channel per directed edge, primed so Send(0) proceeds.

    ``ack_queues[(receiver, sender)]`` holds ACKs from ``receiver``
    gating ``sender``'s next Send; the initial token stands for the
    implicit ACK(-1).
    """
    queues: Dict[Tuple[int, int], TokenQueue] = {}
    for sender, receiver in topology.edges:
        if sender == receiver:
            continue
        queues[(receiver, sender)] = TokenQueue(
            env, owner=receiver, consumer=sender, initial=1
        )
    return queues
