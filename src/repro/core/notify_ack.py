"""The NOTIFY-ACK protocol [Kadav & Kruus 2016], the paper's foil.

Serial computation graph (Figure 2a) plus the backward ACK edge: a
worker may not Send iteration ``k``'s update until every out-going
neighbor has ACKed consumption of iteration ``k-1``'s.  This solves
the mixed-version problem but over-restricts the iteration gap to

    Iter(i) - Iter(j) <= min(len(Path_{j->i}), 2 * len(Path_{i->j}))

(Section 3.3), which is what prevents backup workers and bounded
staleness from helping — the motivation for Hop's queue-based design.

Elasticity: NOTIFY-ACK inherits hop's membership lifecycle (drain /
rewire / re-sync, :class:`~repro.membership.NotifyAckMembership`).
The serial gating graph is repaired per directed edge: ACK channels
owned by departed workers are closed, added edges get their channel
re-primed with the implicit ACK(-1), and sends, receives and ACKs are
all gated by the edge's activation iteration so no worker ever blocks
on a message that predates an edge or postdates a departure.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.gap import GapTracker
from repro.core.queues import TokenQueue, UpdateQueue
from repro.core.reducers import mean_reduce
from repro.core.update import Update
from repro.hetero.compute import ComputeModel
from repro.net.message import CONTROL_SIZE
from repro.net.network import Network
from repro.sim.engine import Environment
from repro.sim.trace import StatAccumulator, Tracer


class NotifyAckWorker:
    """One worker running NOTIFY-ACK (serial graph + ACK gating)."""

    def __init__(
        self,
        wid: int,
        env: Environment,
        topology,
        model,
        optimizer,
        batcher,
        compute_model: ComputeModel,
        network: Network,
        update_queues: Dict[int, UpdateQueue],
        ack_queues: Dict[Tuple[int, int], TokenQueue],
        state,
        gap_tracker: GapTracker,
        tracer: Tracer,
        max_iter: int,
        update_size: float,
    ) -> None:
        self.wid = wid
        self.env = env
        self.topology = topology
        self.model = model
        self.optimizer = optimizer
        self.batcher = batcher
        self.compute_model = compute_model
        self.network = network
        self.update_queues = update_queues
        self.ack_queues = ack_queues
        self.state = state
        self.gap_tracker = gap_tracker
        self.tracer = tracer
        self.max_iter = max_iter
        self.update_size = update_size
        #: Wire size of one outgoing update (compressed pricing);
        #: equals ``update_size`` dense.  Set by the cluster.
        self.wire_size = update_size
        #: Per-worker error-feedback compressor (reference mode);
        #: ``None`` keeps the dense fast path.  Set by the cluster.
        self.compressor = None

        self.in_neighbors = topology.in_neighbors(wid, include_self=True)
        self.out_neighbors = topology.out_neighbors(wid, include_self=True)
        self.in_degree = len(self.in_neighbors)
        self._ack_sources = topology.out_neighbors(wid, include_self=False)
        self._ack_targets = topology.in_neighbors(wid, include_self=False)
        self._remote_in = tuple(j for j in self.in_neighbors if j != wid)

        #: Membership plane (elastic runs only; set by the cluster).
        #: ``None`` keeps every static path untouched.
        self.membership = None
        #: This worker's scripted churn event, if any (set by cluster).
        self.churn_event = None
        #: True while dark (membership departure or not-yet-joined late
        #: worker); peers must not re-sync from a dark worker.
        self.down = False
        #: True once this worker has left the membership (until rejoin).
        self.departed = False
        self.crashed = False  # notify_ack has no crash path; resync compat
        #: Other workers by wid; set by the cluster so a joiner can
        #: re-sync parameters from a live in-neighbor.
        self.peers: Dict[int, "NotifyAckWorker"] = {}
        #: Per-edge activation iterations (membership plane; empty and
        #: unread in static runs).
        self._in_activation: Dict[int, int] = {}
        self._out_activation: Dict[int, int] = {}
        self.iterations_skipped = 0

        self.iterations_completed = 0
        self.iteration_durations = StatAccumulator()
        self.ack_wait = StatAccumulator()
        self.recv_wait = StatAccumulator()
        self.losses = StatAccumulator()
        self.final_params: np.ndarray = model.get_params_copy()
        #: Latest parameter vector (snapshot joiners re-sync from).
        self.current_params: np.ndarray = model.get_params_copy()
        self.snapshot_params = False
        #: Reusable reduce accumulator (see HopWorker.reduce_scratch).
        self.reduce_scratch = None

    @property
    def update_queue(self) -> UpdateQueue:
        return self.update_queues[self.wid]

    # ------------------------------------------------------------------
    # Membership plane (elastic runs; all no-ops when membership is None)
    # ------------------------------------------------------------------
    def expected_in(self, iteration: int) -> int:
        """In-updates expected at ``iteration`` (the serial Recv count).

        Statically ``|Nin|`` (self included); under the membership
        plane it counts live in-neighbors whose edge is activated for
        ``iteration``, so the receiver never blocks on updates that
        predate an edge (or postdate a departure).
        """
        if self.membership is None:
            return self.in_degree
        activation = self._in_activation
        expected = 1  # the self-loop update always arrives
        for j in self._remote_in:
            if activation.get(j, 0) <= iteration:
                expected += 1
        return expected

    def apply_membership(self, membership) -> None:
        """Re-resolve neighbor bindings from the live membership view."""
        topology = membership.view.topology
        wid = self.wid
        self.topology = topology
        self.in_neighbors = topology.in_neighbors(wid, include_self=True)
        self.out_neighbors = topology.out_neighbors(wid, include_self=True)
        self.in_degree = len(self.in_neighbors)
        self._remote_in = tuple(j for j in self.in_neighbors if j != wid)
        self._ack_sources = topology.out_neighbors(wid, include_self=False)
        self._ack_targets = topology.in_neighbors(wid, include_self=False)
        self._in_activation = {
            j: membership.edge_activation(j, wid) for j in self._remote_in
        }
        self._out_activation = {
            j: membership.edge_activation(wid, j) for j in self._ack_sources
        }

    def repair_pending_recv(self, departed) -> None:
        """Re-count a pending blocking receive after a membership rewire.

        A request created before the rewire may wait for a departed
        in-neighbor's update that will never arrive; its count is
        lowered to the repaired neighborhood's expectation (never
        raised — edges added by a rewire only activate at future
        iterations).
        """
        queue = self.update_queue
        waiters = getattr(queue, "_waiters", None)
        if not waiters:
            return
        for request in list(waiters):
            if request.sender is not None:
                if request.sender in departed:
                    waiters.remove(request)
                    request.succeed([])
                continue
            need = self.expected_in(request.iteration)
            if need < request.count:
                request.count = need
        queue._dispatch()

    def _live_resync_source(self) -> Optional["NotifyAckWorker"]:
        """A live in-neighbor to copy parameters from after a (re)join."""
        for j in self.in_neighbors:
            peer = self.peers.get(j)
            if (
                peer is not None
                and peer.wid != self.wid
                and not peer.crashed
                and not peer.down
                and not peer.departed
            ):
                return peer
        return None

    def _sync_from_neighbor(self, x: np.ndarray, k: int, resync: bool = True):
        """Generator: pull a live in-neighbor's parameters on (re)join.

        One blocking parameter-sized transfer; with no live source (or
        ``resync=False``) the worker resumes from its own state.
        """
        if resync:
            source = self._live_resync_source()
            if source is not None:
                yield self.network.transfer(
                    source.wid, self.wid, self.update_size
                )
                x = source.current_params.copy()
                self.tracer.log(f"resynced/{self.wid}", self.env.now, k)
        return x

    def _churn_leave(self, x: np.ndarray, k: int, event):
        """Generator: enact this worker's scripted departure at ``k``.

        Same drain / rewire / re-sync lifecycle as hop's: the
        membership runtime closes our ACK channels and repairs peers'
        pending waits; on rejoin we re-sync parameters from a live
        in-neighbor.  Permanent leaves return ``None``; a rejoin
        returns ``(params, start_iteration)``.
        """
        membership = self.membership
        self.down = True
        self.departed = True
        self.final_params = x
        membership.enact_leave(self.wid, self.env.now, k)
        if event.join_at is None:
            self.state.done[self.wid] = True
            return None
        started = yield membership.rejoin_event(self.wid)
        if started is None:
            self.state.done[self.wid] = True
            return None
        self.departed = False
        self.down = False
        x = yield from self._sync_from_neighbor(
            x, started, resync=event.resync
        )
        self.iterations_skipped += max(0, started - k)
        return x, started

    # ------------------------------------------------------------------
    # Protocol steps
    # ------------------------------------------------------------------
    def _send_update(self, params: np.ndarray, iteration: int) -> None:
        # One shared Update for the whole fan-out (receivers only read
        # it; queues track entries by identity).
        if self.compressor is None:
            update = Update(params.copy(), iteration, self.wid)
            self_update = update
        else:
            # Compressed path: neighbors get the error-feedback
            # reconstruction, the local queue keeps the true params,
            # and the push prices the compressed wire size.
            _, reconstruction = self.compressor.encode_state(params)
            update = Update(reconstruction, iteration, self.wid)
            self_update = Update(params.copy(), iteration, self.wid)
        activation = (
            self._out_activation if self.membership is not None else None
        )
        for j in self.out_neighbors:
            if j == self.wid:
                self.update_queue.enqueue(self_update)
                continue
            if activation is not None and activation.get(j, 0) > iteration:
                # The edge starts carrying updates at a later iteration
                # (created by a rewire after the receiver's expectation
                # for this one was fixed).
                continue
            self.network.push(
                self.wid,
                j,
                self.wire_size,
                update,
                self.update_queues[j].enqueue,
            )

    def _send_acks(self, iteration: int) -> None:
        """NOTIFY consumed -> ACK to every in-coming neighbor."""
        activation = (
            self._in_activation if self.membership is not None else None
        )
        for j in self._ack_targets:
            if activation is not None and activation.get(j, 0) > iteration:
                continue
            self.network.push(
                self.wid,
                j,
                CONTROL_SIZE,
                1,
                self.ack_queues[(self.wid, j)].put,
                control=True,
            )

    def _ack_acquires(self, iteration: int):
        """The ACK(k-1) acquisitions gating Send(k), activation-gated."""
        if self.membership is None:
            return [
                self.ack_queues[(j, self.wid)].acquire(1)
                for j in self._ack_sources
            ]
        activation = self._out_activation
        return [
            self.ack_queues[(j, self.wid)].acquire(1)
            for j in self._ack_sources
            if activation.get(j, 0) <= iteration
        ]

    def run(self):
        env = self.env
        membership = self.membership
        elastic = membership is not None
        churn_event = self.churn_event if elastic else None
        x = self.model.get_params()
        k = 0
        if elastic and not membership.is_active(self.wid):
            # Late joiner: dark outside the cluster until the plan's
            # join trigger fires and the membership plane wires us in.
            started = yield membership.rejoin_event(self.wid)
            if started is None:
                self.final_params = x
                self.state.done[self.wid] = True
                return 0
            self.down = False
            x = yield from self._sync_from_neighbor(
                x,
                started,
                resync=churn_event.resync if churn_event is not None else True,
            )
            churn_event = None  # a late joiner has no leave scripted
            self.iterations_skipped += started
            k = started
        while k < self.max_iter:
            if elastic:
                if (
                    churn_event is not None
                    and churn_event.leave_at is not None
                    and k >= churn_event.leave_at
                ):
                    resumed = yield from self._churn_leave(x, k, churn_event)
                    churn_event = None
                    if resumed is None:
                        return self.iterations_completed
                    x, k = resumed
                    continue  # re-enter against the rejoin epoch
                membership.on_iteration(self.wid, k, env.now)
            start = env.now
            self.state.iterations[self.wid] = k
            self.gap_tracker.record(self.wid, k)
            self.tracer.log(f"iter/{self.wid}", start, k)

            # Compute and Apply (serial graph, Figure 2a).
            self.model.set_params(x)
            xb, yb = self.batcher.next_batch()
            loss, grad = self.model.loss_and_grad(xb, yb)
            yield env.timeout(self.compute_model.duration(self.wid, k))
            applied = x + self.optimizer.step(x, grad, k)

            # Wait for ACK(k-1) from all out-going neighbors before Send(k).
            ack_start = env.now
            acquires = self._ack_acquires(k)
            if acquires:
                yield env.all_of(acquires)
            self.ack_wait.add(env.now - ack_start)

            self._send_update(applied, k)

            # Recv + Reduce, then notify consumption with ACK(k).
            recv_start = env.now
            updates = yield self.update_queue.dequeue(
                self.expected_in(k), iteration=k
            )
            self.recv_wait.add(env.now - recv_start)
            # In-place accumulate into the reusable scratch; every read
            # of the previous ``x`` (model write, optimizer step, send
            # payload) happened before this point.
            self.reduce_scratch = x = mean_reduce(
                updates, out=self.reduce_scratch
            )
            self._send_acks(k)

            self.tracer.log(f"loss/{self.wid}", env.now, loss)
            self.losses.add(loss)
            self.iterations_completed = k + 1
            # Joiners re-sync from a peer's end-of-iteration snapshot.
            self.current_params = x.copy() if self.snapshot_params else x
            duration = env.now - start
            self.iteration_durations.add(duration)
            self.tracer.log(f"duration/{self.wid}", env.now, duration)
            k += 1

        self.final_params = x
        self.state.done[self.wid] = True
        self.tracer.log(f"finished/{self.wid}", self.env.now, self.max_iter)
        return self.iterations_completed

    def __repr__(self) -> str:
        return f"<NotifyAckWorker {self.wid} completed={self.iterations_completed}>"


def build_ack_queues(
    env: Environment, topology
) -> Dict[Tuple[int, int], TokenQueue]:
    """One ACK channel per directed edge, primed so Send(0) proceeds.

    ``ack_queues[(receiver, sender)]`` holds ACKs from ``receiver``
    gating ``sender``'s next Send; the initial token stands for the
    implicit ACK(-1).
    """
    queues: Dict[Tuple[int, int], TokenQueue] = {}
    for sender, receiver in topology.edges:
        if sender == receiver:
            continue
        queues[(receiver, sender)] = TokenQueue(
            env, owner=receiver, consumer=sender, initial=1
        )
    return queues
