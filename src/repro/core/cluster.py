"""HopCluster: builds and runs a decentralized training deployment.

The cluster wires together every substrate — topology, queues, token
queues, network, compute model, per-worker model replicas and data
streams — starts one worker process per node, runs the simulation to
completion, and packages the results as a :class:`TrainingRun`.

Protocols: ``"hop"`` (the paper's system, all modes of
:class:`~repro.core.config.HopConfig`) and ``"notify_ack"``
(the Section 3.3 baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import HopConfig
from repro.core.gap import GapTracker, update_queue_capacity_bound
from repro.core.notify_ack import NotifyAckWorker, build_ack_queues
from repro.core.queues import RotatingUpdateQueue, TokenQueue, UpdateQueue
from repro.core.skip import SkipPolicy
from repro.core.worker import ClusterState, HopWorker
from repro.graphs.spectral import consensus_distance
from repro.graphs.topology import Topology
from repro.hetero.compute import ComputeModel
from repro.ml.data import Batcher, Dataset
from repro.ml.metrics import smooth_series
from repro.ml.optim import SGD
from repro.net.links import Link, LinkModel, uniform_links
from repro.net.message import CONTROL_SIZE, params_message_size
from repro.net.network import Network, SharedNic
from repro.sim.engine import Environment
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer


class DeadlockError(RuntimeError):
    """The simulation ran out of events before all workers finished.

    Attributes:
        stuck: ``(worker_id, iteration)`` pairs for unfinished workers.
    """

    def __init__(self, message: str, stuck=None) -> None:
        super().__init__(message)
        self.stuck = list(stuck or [])


@dataclass
class TrainingRun:
    """Everything measured during one training run."""

    protocol: str
    config_description: str
    topology_name: str
    n_workers: int
    max_iter: int
    wall_time: float
    tracer: Tracer
    gap: GapTracker
    iterations_completed: List[int]
    iterations_skipped: List[int]
    messages_sent: int
    bytes_sent: float
    final_params: np.ndarray
    final_loss: Optional[float] = None
    final_accuracy: Optional[float] = None
    consensus: float = 0.0
    worker_stats: List[dict] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Convergence analysis
    # ------------------------------------------------------------------
    def loss_series(self) -> Tuple[np.ndarray, np.ndarray]:
        """All per-iteration training losses, merged and time-sorted."""
        pairs: List[Tuple[float, float]] = []
        for wid in range(self.n_workers):
            pairs.extend(self.tracer.raw(f"loss/{wid}"))
        pairs.sort(key=lambda tv: tv[0])
        if not pairs:
            return np.array([]), np.array([])
        times = np.array([t for t, _ in pairs])
        losses = np.array([v for _, v in pairs])
        return times, losses

    def smoothed_loss_series(
        self, window: int = 32
    ) -> Tuple[np.ndarray, np.ndarray]:
        times, losses = self.loss_series()
        return times, smooth_series(losses, window)

    def loss_vs_steps(self, window: int = 32) -> Tuple[np.ndarray, np.ndarray]:
        """Mean loss per global step index (Figure 15's x-axis)."""
        _, losses = self.loss_series()
        return np.arange(losses.size), smooth_series(losses, window)

    def time_to_loss(self, target: float, window: int = 32) -> float:
        """First time the smoothed training loss reaches ``target``."""
        times, losses = self.smoothed_loss_series(window)
        below = np.nonzero(losses <= target)[0]
        if below.size == 0:
            return float("inf")
        return float(times[below[0]])

    def iteration_rate(self) -> float:
        """Aggregate completed iterations per simulated second."""
        total = sum(self.iterations_completed)
        if self.wall_time <= 0:
            return 0.0
        return total / self.wall_time

    def mean_iteration_duration(self) -> float:
        """Average per-iteration wall time across workers."""
        durations = [
            stats["iteration_duration_mean"] for stats in self.worker_stats
        ]
        return float(np.mean(durations)) if durations else 0.0

    def summary(self) -> str:
        lines = [
            f"protocol={self.protocol} ({self.config_description})",
            f"topology={self.topology_name} workers={self.n_workers}",
            f"wall_time={self.wall_time:.3f}s "
            f"rate={self.iteration_rate():.2f} iter/s",
            f"max_gap={self.gap.max_observed():g} "
            f"messages={self.messages_sent}",
        ]
        if self.final_loss is not None:
            lines.append(
                f"final_loss={self.final_loss:.4f} "
                f"final_accuracy={self.final_accuracy:.3f}"
            )
        return "\n".join(lines)


class HopCluster:
    """Build-and-run facade for decentralized training experiments.

    Args:
        topology: Communication graph (validated on construction).
        config: Hop protocol configuration.
        model_factory: ``f(rng) -> Model``; called once per worker with
            identically seeded streams so all replicas start from the
            same parameters (the paper's shared ``p0``).
        dataset: Train/test data; every worker samples the full training
            split with its own RNG stream.
        optimizer: SGD prototype; cloned per worker (worker-local
            momentum).
        batch_size: Minibatch size per worker per iteration.
        compute_model: Per-iteration compute-time oracle (heterogeneity
            lives here).
        links: Network timing model.
        protocol: ``"hop"`` or ``"notify_ack"``.
        max_iter: Iterations per worker.
        seed: Master seed for all randomness.
        update_size: Message size of one parameter update; derived from
            the model dimension when omitted.
        token_rtt: Control round-trip charged per token acquisition
            round; derived from ``links`` when omitted.
        evaluate: Whether to evaluate the averaged final model on the
            test split.
    """

    def __init__(
        self,
        topology: Topology,
        config: HopConfig,
        model_factory: Callable[[np.random.Generator], object],
        dataset: Dataset,
        optimizer: Optional[SGD] = None,
        batch_size: int = 32,
        compute_model: Optional[ComputeModel] = None,
        links: Optional[LinkModel] = None,
        protocol: str = "hop",
        max_iter: int = 100,
        seed: int = 0,
        update_size: Optional[float] = None,
        token_rtt: Optional[float] = None,
        evaluate: bool = True,
        machines: Optional[Sequence[int]] = None,
        machine_uplink: Optional[Link] = None,
        crash_at: Optional[Dict[int, int]] = None,
    ) -> None:
        if protocol not in ("hop", "notify_ack"):
            raise ValueError(f"unknown protocol {protocol!r}")
        if max_iter < 1:
            raise ValueError("max_iter must be >= 1")
        topology.validate()
        if config.mode == "backup":
            min_in = min(
                topology.in_degree(i, include_self=True)
                for i in range(topology.n)
            )
            if config.n_backup >= min_in:
                raise ValueError(
                    f"n_backup={config.n_backup} >= minimum in-degree "
                    f"{min_in}; some worker would need zero updates"
                )
        self.topology = topology
        self.config = config
        self.model_factory = model_factory
        self.dataset = dataset
        self.optimizer_proto = optimizer or SGD(lr=0.1, momentum=0.9)
        self.batch_size = batch_size
        self.protocol = protocol
        self.max_iter = max_iter
        self.seed = seed
        self.streams = RngStreams(seed)
        self.compute_model = compute_model or ComputeModel(
            base_time=0.1, n_workers=topology.n
        )
        self.links = links or uniform_links()
        self._update_size = update_size
        self._token_rtt = token_rtt
        self.evaluate = evaluate
        if machines is not None and len(machines) != topology.n:
            raise ValueError(
                f"machines maps {len(machines)} workers, topology has "
                f"{topology.n}"
            )
        self.machines = list(machines) if machines is not None else None
        self.machine_uplink = machine_uplink or Link(
            latency=2e-4, bandwidth=125.0
        )
        if crash_at is not None and protocol != "hop":
            raise ValueError("crash injection is only supported for hop")
        self.crash_at = dict(crash_at or {})

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _build_models(self) -> List[object]:
        models = []
        for wid in range(self.topology.n):
            # Same derived stream -> identical initialization (p0).
            models.append(self.model_factory(self.streams.fresh("model-init")))
        p0 = models[0].get_params()
        for model in models[1:]:
            if not np.allclose(model.get_params(), p0):
                raise ValueError(
                    "model_factory must be deterministic given its rng; "
                    "worker replicas started from different parameters"
                )
        return models

    def _build_update_queue(self, env: Environment, wid: int):
        impl = self.config.effective_queue_impl
        if not self.config.use_token_queues:
            impl = "tagged"  # rotating slots need a bounded gap
        if impl == "rotating":
            return RotatingUpdateQueue(env, self.config.max_ig, owner=wid)
        capacity = None
        if self.config.bound_update_queues and self.config.use_token_queues:
            capacity = update_queue_capacity_bound(
                self.topology, wid, self.config.max_ig
            )
        return UpdateQueue(env, owner=wid, capacity=capacity)

    def _build_token_queues(
        self, env: Environment
    ) -> Dict[Tuple[int, int], TokenQueue]:
        queues: Dict[Tuple[int, int], TokenQueue] = {}
        if not (self.protocol == "hop" and self.config.use_token_queues):
            return queues
        for consumer, owner in self.topology.edges:
            if consumer == owner:
                continue
            # Edge consumer->owner means owner in Nout(consumer):
            # TokenQ(owner -> consumer) gates consumer's progress.
            queues[(owner, consumer)] = TokenQueue(
                env,
                owner=owner,
                consumer=consumer,
                initial=self.config.max_ig - 1,
            )
        return queues

    def _token_rtt_for(self, wid: int) -> float:
        if self._token_rtt is not None:
            return self._token_rtt
        providers = self.topology.out_neighbors(wid, include_self=False)
        if not providers:
            return 0.0
        return max(
            self.links.round_trip(wid, j, CONTROL_SIZE) for j in providers
        )

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------
    def _build_network(self, env: Environment) -> Network:
        if self.machines is None:
            return Network(env, self.links)
        # One shared uplink per machine: co-located workers contend for
        # their host's NIC on cross-machine sends.
        machine_nics: Dict[int, SharedNic] = {}
        for machine in sorted(set(self.machines)):
            machine_nics[machine] = SharedNic(
                env,
                bandwidth=self.machine_uplink.bandwidth,
                latency=self.machine_uplink.latency,
            )
        egress = {
            wid: machine_nics[self.machines[wid]]
            for wid in range(self.topology.n)
        }
        return Network(
            env, self.links, egress_nics=egress, machine_of=self.machines
        )

    def run(self) -> TrainingRun:
        env = Environment()
        n = self.topology.n
        network = self._build_network(env)
        tracer = Tracer()
        gap_tracker = GapTracker(n)
        state = ClusterState(n)
        models = self._build_models()
        update_size = (
            self._update_size
            if self._update_size is not None
            else params_message_size(models[0].dim)
        )
        update_queues = {
            wid: self._build_update_queue(env, wid) for wid in range(n)
        }

        workers: List[object] = []
        if self.protocol == "hop":
            token_queues = self._build_token_queues(env)
            for wid in range(n):
                skip_policy = (
                    SkipPolicy(self.config.skip, self.config.max_ig)
                    if self.config.skip is not None
                    else None
                )
                worker = HopWorker(
                    wid=wid,
                    env=env,
                    topology=self.topology,
                    config=self.config,
                    model=models[wid],
                    optimizer=self.optimizer_proto.clone(),
                    batcher=Batcher(
                        self.dataset.x_train,
                        self.dataset.y_train,
                        self.batch_size,
                        self.streams.stream("data", wid),
                    ),
                    compute_model=self.compute_model,
                    network=network,
                    update_queues=update_queues,
                    token_queues=token_queues,
                    state=state,
                    gap_tracker=gap_tracker,
                    tracer=tracer,
                    max_iter=self.max_iter,
                    update_size=update_size,
                    token_rtt=self._token_rtt_for(wid)
                    if self.config.use_token_queues
                    else 0.0,
                    skip_policy=skip_policy,
                    crash_at=self.crash_at.get(wid),
                )
                workers.append(worker)
        else:
            ack_queues = build_ack_queues(env, self.topology)
            for wid in range(n):
                worker = NotifyAckWorker(
                    wid=wid,
                    env=env,
                    topology=self.topology,
                    model=models[wid],
                    optimizer=self.optimizer_proto.clone(),
                    batcher=Batcher(
                        self.dataset.x_train,
                        self.dataset.y_train,
                        self.batch_size,
                        self.streams.stream("data", wid),
                    ),
                    compute_model=self.compute_model,
                    network=network,
                    update_queues=update_queues,
                    ack_queues=ack_queues,
                    state=state,
                    gap_tracker=gap_tracker,
                    tracer=tracer,
                    max_iter=self.max_iter,
                    update_size=update_size,
                )
                workers.append(worker)

        processes = [
            env.process(worker.run(), name=f"worker-{worker.wid}")
            for worker in workers
        ]
        env.run()

        if not state.all_done():
            stuck = [
                (w.wid, int(state.iterations[w.wid]))
                for w in workers
                if not state.done[w.wid]
            ]
            # Injected crashes legitimately strand the crashed worker
            # and (eventually) its dependents; only raise when nothing
            # explains the stall.
            if not self.crash_at:
                raise DeadlockError(
                    f"{len(stuck)} workers never finished; (wid, iter) = "
                    f"{stuck}. This indicates a protocol deadlock or an "
                    "unsatisfiable advance condition.",
                    stuck=stuck,
                )

        final_stack = np.stack([w.final_params for w in workers])
        final_params = final_stack.mean(axis=0)
        final_loss = final_accuracy = None
        if self.evaluate:
            models[0].set_params(final_params)
            final_loss, final_accuracy = models[0].evaluate(
                self.dataset.x_test, self.dataset.y_test
            )

        worker_stats = [self._worker_stats(w) for w in workers]
        return TrainingRun(
            protocol=self.protocol,
            config_description=self.config.describe()
            if self.protocol == "hop"
            else "serial + ACK gating",
            topology_name=self.topology.name,
            n_workers=n,
            max_iter=self.max_iter,
            wall_time=env.now,
            tracer=tracer,
            gap=gap_tracker,
            iterations_completed=[w.iterations_completed for w in workers],
            iterations_skipped=[
                getattr(w, "iterations_skipped", 0) for w in workers
            ],
            messages_sent=network.messages_sent,
            bytes_sent=network.bytes_sent.total,
            final_params=final_params,
            final_loss=final_loss,
            final_accuracy=final_accuracy,
            consensus=consensus_distance(final_stack),
            worker_stats=worker_stats,
        )

    @staticmethod
    def _worker_stats(worker) -> dict:
        stats = {
            "wid": worker.wid,
            "iterations_completed": worker.iterations_completed,
            "iteration_duration_mean": worker.iteration_durations.mean,
            "iteration_duration_max": worker.iteration_durations.max,
            "recv_wait_mean": worker.recv_wait.mean,
            "loss_mean": worker.losses.mean,
        }
        for attribute in (
            "iterations_skipped",
            "n_jumps",
            "n_suppressed_sends",
            "n_extra_updates",
            "n_staleness_blocks",
        ):
            if hasattr(worker, attribute):
                stats[attribute] = getattr(worker, attribute)
        if hasattr(worker, "token_wait"):
            stats["token_wait_mean"] = worker.token_wait.mean
        if hasattr(worker, "ack_wait"):
            stats["ack_wait_mean"] = worker.ack_wait.mean
        return stats
